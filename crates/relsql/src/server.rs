//! The server layer: thread-safe sessions over a shared engine, with a
//! per-table lock scheduler and a statement-plan cache.
//!
//! This plays the role of Sybase's Open Server / TDS stack: clients (and the
//! ECA Agent's internal threads) hold [`Session`]s that submit language
//! batches and get tabular results back. The [`SqlEndpoint`] trait is the
//! seam the agent's Gateway Open Server is generic over.
//!
//! ## Scheduling model
//!
//! Earlier versions serialized every batch through one `Mutex<Engine>`. The
//! server now schedules batches by their typed classification
//! ([`crate::footprint::BatchPlan`]):
//!
//! 1. Every batch first takes the global `schedule` lock in **read** mode,
//!    which freezes the catalog (DDL needs the write side), making the
//!    classification and the trigger set stable while the batch is admitted.
//! 2. **Read-pure** batches take the lock-free MVCC lane: they pin the
//!    *published* version of every table in their read set (an
//!    epoch-consistent [`DbSnapshot`] of `Arc`-shared versions — see
//!    `Table::pinned`), drop the schedule guard, and execute with zero
//!    lock-manager interaction. Writers publish new versions at batch end
//!    inside a seqlock-style epoch window (odd = swap in progress) that a
//!    dedicated mutex serializes — one publication window at a time, even
//!    for batches on disjoint tables — so a multi-table pin retries the
//!    nanoseconds-long window instead of ever observing half a
//!    publication. Sessions flagged
//!    [`SessionCtx::live_reads`] (agent internals reacting to mid-batch
//!    datagrams) opt out and read live rows under lock scheduling.
//! 3. **Effectful** batches acquire their `requirements ∪ effects` tables'
//!    locks from the [`LockManager`] in one atomic all-or-nothing step
//!    (no hold-and-wait, hence no deadlock) and run concurrently with any
//!    batch touching disjoint tables. Because a DML batch's write set
//!    includes every table its native triggers touch — the shadow
//!    `_inserted`/`_deleted` tables and the `_ver` version counters —
//!    same-event batches stay strictly serial, preserving Sybase trigger
//!    firing order and vNo sequencing. At batch end, still holding the
//!    table locks, the batch publishes new versions of its write set.
//! 4. **Barrier** batches — DDL, transaction control, anything the
//!    analysis cannot resolve — run under the **write** side of
//!    `schedule`: alone, after all in-flight readers drain — exactly the
//!    old fully-serialized behaviour — and republish every table on exit.
//!
//! ## Plan cache
//!
//! [`PlanCache`] memoizes `parse_script` output keyed on the batch's token
//! shape: literals are masked to parameters, so `insert t values (1)` and
//! `insert t values (2)` share one parsed plan and bind their literals at
//! execution time ([`crate::ast::Expr::Param`]). Batches containing
//! plan-shape-sensitive keywords (DDL, transactions, `ORDER BY` ordinals,
//! `SELECT INTO`) fall back to exact-text entries. The cache is invalidated
//! (epoch bump) whenever a batch mutates the catalog.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};

use crate::ast::Stmt;
use crate::catalog::Database;
use crate::clock::LogicalClock;
use crate::engine::{BatchResult, Engine, EngineConfig};
use crate::error::{Error, Result};
use crate::eval::SessionCtx;
use crate::exec::LoweredCache;
use crate::footprint::{BatchClass, BatchPlan};
use crate::lexer::{split_batches, tokenize, Token, TokenKind};
use crate::notify::NotificationSink;
use crate::parser::{parse_script, parse_script_with_tokens};
use crate::storage::{FsStorage, Storage};
use crate::value::Value;
use crate::wal::{
    decode_snapshot, encode_record, encode_snapshot, scan_wal, DurabilityConfig, Wal, WalTail,
    SNAPSHOT_FILE, WAL_FILE,
};

/// Anything that can execute SQL on behalf of a session: a real server, the
/// ECA Agent (which proxies to one), or a test double.
pub trait SqlEndpoint: Send + Sync {
    fn execute(&self, sql: &str, session: &SessionCtx) -> Result<BatchResult>;
}

// ---------------------------------------------------------------------------
// Per-table lock manager
// ---------------------------------------------------------------------------

/// Grants all-or-nothing groups of per-table locks.
///
/// A batch declares its full footprint up front and blocks until *every*
/// table in it is free, then takes them all under one mutex acquisition.
/// Because no waiter ever holds part of its group while waiting for the
/// rest, the classic hold-and-wait deadlock condition cannot arise,
/// regardless of acquisition order (the `BTreeSet` footprint additionally
/// gives a canonical order for anyone reasoning about the schedule).
struct LockManager {
    held: Mutex<HashSet<String>>,
    freed: Condvar,
    /// Number of acquisitions that had to block at least once.
    waits: AtomicU64,
}

impl LockManager {
    fn new() -> Arc<Self> {
        Arc::new(LockManager {
            held: Mutex::new(HashSet::new()),
            freed: Condvar::new(),
            waits: AtomicU64::new(0),
        })
    }

    fn acquire(self: &Arc<Self>, tables: BTreeSet<String>) -> TableLocks {
        let mut held = self.held.lock();
        let mut counted = false;
        while tables.iter().any(|t| held.contains(t)) {
            if !counted {
                self.waits.fetch_add(1, Ordering::Relaxed);
                counted = true;
            }
            self.freed.wait(&mut held);
        }
        for t in &tables {
            held.insert(t.clone());
        }
        drop(held);
        TableLocks {
            mgr: Arc::clone(self),
            tables,
        }
    }
}

/// RAII group of table locks; releasing wakes all waiters so they can
/// re-check their (possibly overlapping) footprints.
struct TableLocks {
    mgr: Arc<LockManager>,
    tables: BTreeSet<String>,
}

impl Drop for TableLocks {
    fn drop(&mut self) {
        let mut held = self.mgr.held.lock();
        for t in &self.tables {
            held.remove(t);
        }
        drop(held);
        self.mgr.freed.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Statement-plan cache
// ---------------------------------------------------------------------------

/// Keywords that make a batch's plan shape depend on literal values or on
/// the catalog in ways masking would corrupt: DDL bodies are sliced from the
/// source text, `varchar(N)` and `ORDER BY <ordinal>` consume integer
/// tokens structurally, and transaction control must never share a plan
/// entry with anything. Such batches are cached by exact text instead.
const BARRIER_KEYWORDS: &[&str] = &[
    "create", "drop", "alter", "truncate", "begin", "commit", "rollback", "order", "into",
];

struct CachedPlan {
    stmts: Arc<Vec<Stmt>>,
    /// Lowered physical plans for `stmts`, keyed by statement address —
    /// valid precisely as long as it travels with the same `Arc<Vec<Stmt>>`,
    /// which is why the two never separate.
    lowered: Arc<LoweredCache>,
    epoch: u64,
    last_used: u64,
}

/// LRU cache of parsed batch plans with epoch-based DDL invalidation.
struct PlanCache {
    entries: Mutex<HashMap<String, CachedPlan>>,
    epoch: AtomicU64,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

/// A planned batch: the (possibly shared) parsed statements plus the literal
/// values masked out of this particular batch text, to be bound as
/// parameters at execution time.
struct Planned {
    stmts: Arc<Vec<Stmt>>,
    params: Vec<Value>,
    /// The lowered-plan cache paired with `stmts` (fresh and unshared when
    /// the batch missed the plan cache).
    lowered: Arc<LoweredCache>,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            entries: Mutex::new(HashMap::new()),
            epoch: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
        }
    }

    /// Drop every cached plan (logically): entries from earlier epochs are
    /// treated as misses and replaced on next use.
    fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    fn lookup(&self, key: &str) -> Option<(Arc<Vec<Stmt>>, Arc<LoweredCache>)> {
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut entries = self.entries.lock();
        match entries.get_mut(key) {
            Some(e) if e.epoch == epoch => {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((Arc::clone(&e.stmts), Arc::clone(&e.lowered)))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: String, stmts: Arc<Vec<Stmt>>, lowered: Arc<LoweredCache>) {
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut entries = self.entries.lock();
        if entries.len() >= self.capacity && !entries.contains_key(&key) {
            // O(n) LRU eviction — the cache is small and eviction rare.
            if let Some(victim) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                entries.remove(&victim);
            }
        }
        entries.insert(
            key,
            CachedPlan {
                stmts,
                lowered,
                epoch,
                last_used: self.tick.fetch_add(1, Ordering::Relaxed),
            },
        );
    }

    /// Parse `batch` through the cache. Parse errors propagate and are never
    /// cached.
    fn plan(&self, batch: &str) -> Result<Planned> {
        let Ok(tokens) = tokenize(batch) else {
            // Let the parser surface the lexer's error uncached.
            return parse_script(batch).map(|s| Planned {
                stmts: Arc::new(s),
                params: Vec::new(),
                lowered: Arc::new(LoweredCache::default()),
            });
        };
        let barrier = tokens.iter().any(|t| {
            matches!(&t.kind, TokenKind::Ident(s)
                if BARRIER_KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)))
        });
        if !barrier {
            let (key, masked, params) = mask(batch, &tokens);
            if let Some((stmts, lowered)) = self.lookup(&key) {
                return Ok(Planned {
                    stmts,
                    params,
                    lowered,
                });
            }
            if let Ok(stmts) = parse_script_with_tokens(batch, masked) {
                let stmts = Arc::new(stmts);
                let lowered = Arc::new(LoweredCache::default());
                self.insert(key, Arc::clone(&stmts), Arc::clone(&lowered));
                return Ok(Planned {
                    stmts,
                    params,
                    lowered,
                });
            }
            // Masked parse failed (a literal was structural after all):
            // count the lookup back out and fall through to the exact path.
            self.misses.fetch_sub(1, Ordering::Relaxed);
        }
        let key = format!("={batch}");
        if let Some((stmts, lowered)) = self.lookup(&key) {
            return Ok(Planned {
                stmts,
                params: Vec::new(),
                lowered,
            });
        }
        let stmts = Arc::new(parse_script(batch)?);
        let lowered = Arc::new(LoweredCache::default());
        self.insert(key, Arc::clone(&stmts), Arc::clone(&lowered));
        Ok(Planned {
            stmts,
            params: Vec::new(),
            lowered,
        })
    }
}

/// Mask literal tokens to parameters, producing the cache key, the masked
/// token stream, and the extracted parameter values (in token order).
fn mask(batch: &str, tokens: &[Token]) -> (String, Vec<Token>, Vec<Value>) {
    let mut params = Vec::new();
    let mut masked = Vec::with_capacity(tokens.len());
    let mut key = String::with_capacity(batch.len().min(256) + 1);
    key.push('?'); // namespace masked keys away from "=<text>" exact keys
    for t in tokens {
        let kind = match &t.kind {
            TokenKind::Int(v) => {
                params.push(Value::Int(*v));
                TokenKind::Param(params.len() - 1)
            }
            TokenKind::Float(v) => {
                params.push(Value::Float(*v));
                TokenKind::Param(params.len() - 1)
            }
            TokenKind::Str(s) => {
                params.push(Value::Str(s.clone()));
                TokenKind::Param(params.len() - 1)
            }
            other => other.clone(),
        };
        push_key_fragment(&mut key, &kind);
        masked.push(Token { kind, pos: t.pos });
    }
    (key, masked, params)
}

fn push_key_fragment(key: &mut String, kind: &TokenKind) {
    match kind {
        TokenKind::Ident(s) => {
            for ch in s.chars() {
                key.push(ch.to_ascii_lowercase());
            }
        }
        TokenKind::Param(_) => key.push('?'),
        TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Str(_) => {
            unreachable!("literals are masked before key rendering")
        }
        TokenKind::LParen => key.push('('),
        TokenKind::RParen => key.push(')'),
        TokenKind::Comma => key.push(','),
        TokenKind::Dot => key.push('.'),
        TokenKind::Semi => key.push(';'),
        TokenKind::Star => key.push('*'),
        TokenKind::Plus => key.push('+'),
        TokenKind::Minus => key.push('-'),
        TokenKind::Slash => key.push('/'),
        TokenKind::Percent => key.push('%'),
        TokenKind::Eq => key.push('='),
        TokenKind::Neq => key.push_str("!="),
        TokenKind::Lt => key.push('<'),
        TokenKind::Le => key.push_str("<="),
        TokenKind::Gt => key.push('>'),
        TokenKind::Ge => key.push_str(">="),
        TokenKind::Caret => key.push('^'),
        TokenKind::Pipe => key.push('|'),
        TokenKind::LBracket => key.push('['),
        TokenKind::RBracket => key.push(']'),
        TokenKind::DoubleColon => key.push_str("::"),
        TokenKind::Colon => key.push(':'),
        TokenKind::Eof => {}
    }
    key.push(' ');
}

/// Does this batch mutate the catalog (or restore an older one), requiring
/// plan-cache invalidation?
fn mutates_catalog(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::CreateTable { .. }
        | Stmt::DropTable { .. }
        | Stmt::AlterTableAdd { .. }
        | Stmt::CreateTrigger { .. }
        | Stmt::DropTrigger { .. }
        | Stmt::CreateProcedure { .. }
        | Stmt::DropProcedure { .. }
        | Stmt::CreateIndex { .. }
        | Stmt::DropIndex { .. }
        | Stmt::Rollback => true,
        Stmt::Select(sel) => sel.into.is_some(),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            mutates_catalog(std::slice::from_ref(then_branch))
                || else_branch
                    .as_deref()
                    .is_some_and(|e| mutates_catalog(std::slice::from_ref(e)))
        }
        Stmt::While { body, .. } => mutates_catalog(std::slice::from_ref(body)),
        Stmt::Block(inner) => mutates_catalog(inner),
        _ => false,
    })
}

/// Can this batch change engine state? Only batches that can are logged to
/// the WAL (and forced through the exclusive schedule in durable mode).
/// Plain SELECTs and PRINT cannot; procedure calls are conservatively
/// treated as mutating because we don't analyze their bodies here.
fn is_readonly(stmts: &[Stmt]) -> bool {
    stmts.iter().all(|s| match s {
        Stmt::Select(sel) => sel.into.is_none(),
        Stmt::Print(_) => true,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            is_readonly(std::slice::from_ref(then_branch))
                && else_branch
                    .as_deref()
                    .is_none_or(|e| is_readonly(std::slice::from_ref(e)))
        }
        Stmt::While { body, .. } => is_readonly(std::slice::from_ref(body)),
        Stmt::Block(inner) => is_readonly(inner),
        _ => false,
    })
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A point-in-time, lock-free view of the database.
///
/// Obtained from [`SqlServer::snapshot`] (live rows, statement-consistent
/// per table — the replacement for read-only [`SqlServer::inspect`] use)
/// or pinned internally by the MVCC read lane (published versions,
/// batch-consistent). Holding one blocks nothing: tables inside share
/// `Arc`s with the server and stay valid indefinitely, simply growing
/// stale as writers move on.
pub struct DbSnapshot {
    db: Database,
    epoch: u64,
}

impl DbSnapshot {
    /// The pinned catalog: query tables, schemas, and procedures freely —
    /// no server locks are held.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The publish-epoch reading at pin time, rounded down to the last
    /// *closed* publication window (always even). Monotonic across the
    /// server's lifetime.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// A thread-safe SQL server wrapping one shared [`Engine`].
///
/// Read-pure batches execute lock-free against published MVCC versions;
/// batches on disjoint table footprints execute in parallel; DDL and
/// transactions run exclusively (see the module docs for the full
/// scheduling model).
pub struct SqlServer {
    engine: Engine,
    clock: Arc<LogicalClock>,
    /// Read side: a footprint-scheduled batch (stable catalog). Write side:
    /// an exclusive batch (DDL / transactions / unresolvable footprint).
    schedule: RwLock<()>,
    locks: Arc<LockManager>,
    plans: PlanCache,
    /// Seqlock-style publication epoch: odd while a writer is swapping
    /// published table versions, even otherwise. Snapshot pins retry the
    /// (nanoseconds-long) odd window so multi-table publication is atomic
    /// to readers.
    publish_epoch: AtomicU64,
    /// Serializes publication windows. A seqlock tolerates only one writer
    /// at a time, but two effectful batches on disjoint tables both hold
    /// the schedule *read* lock and reach publication concurrently — their
    /// interleaved epoch increments would sum to even while both windows
    /// were still open, letting a pin capture a torn multi-table state.
    /// Every `publish_epoch` transition happens under this mutex.
    publish_lock: Mutex<()>,
    /// Read-pure batches served from the MVCC snapshot lane.
    snapshot_reads: AtomicU64,
    /// Sessions handed out so far; doubles as the session id source.
    sessions_opened: AtomicU64,
    /// Statement batches executed (all sessions, including internal ones).
    statements: AtomicU64,
    batches_parallel: AtomicU64,
    batches_exclusive: AtomicU64,
    /// Footprint-scheduled batches currently inside the engine.
    inflight: AtomicU64,
    /// High-water mark of `inflight`.
    inflight_peak: AtomicU64,
    /// Present when the server was opened over storage ([`Self::open`]):
    /// mutating batches append to this log before results are acknowledged.
    wal: Option<Wal>,
}

/// Aggregate session-level counters for one [`SqlServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub sessions_opened: u64,
    pub statements: u64,
    /// Plan-cache hits (batch reused a memoized parse).
    pub plan_cache_hits: u64,
    /// Plan-cache misses (batch was parsed from scratch).
    pub plan_cache_misses: u64,
    /// Lock-group acquisitions that had to block on a busy table.
    pub lock_waits: u64,
    /// Effectful batches scheduled concurrently under per-table locks.
    /// Read-pure batches no longer count here (see `snapshot_reads`), so
    /// `batches_parallel` + `batches_exclusive` now means *writes* —
    /// except live-read batches from `SessionCtx::live_reads` sessions,
    /// which still lock-schedule by design.
    pub batches_parallel: u64,
    /// Batches that ran exclusively (DDL, transactions, unresolvable).
    pub batches_exclusive: u64,
    /// Read-pure batches served lock-free from pinned MVCC snapshots.
    pub snapshot_reads: u64,
    /// Publication-epoch reading: two ticks per version-publishing batch
    /// (window open / window close). Growth proves writers are publishing.
    /// The raw counter is sampled at an arbitrary instant — possibly while
    /// a publication window is open — so the sample is rounded down to the
    /// last *closed* window; consumers always see an even value.
    pub snapshot_epoch: u64,
    /// Highest number of footprint-scheduled batches observed executing
    /// simultaneously. Values ≥ 2 prove the scheduler genuinely overlapped
    /// disjoint-table work — evidence independent of wall-clock speedup,
    /// which a single-CPU host cannot express.
    pub batches_inflight_peak: u64,
    /// FROM-slot or DML table accesses served through a secondary index.
    pub index_hits: u64,
    /// FROM-slot or DML table accesses that fell back to a full scan.
    pub index_misses: u64,
    /// Candidate rows visited by scans and index probes combined. Flat
    /// growth under a growing table is the signature of indexed access.
    pub rows_scanned: u64,
    /// Statements executed through a compiled physical plan.
    pub exec_compiled: u64,
    /// Statements executed by the tree-walking interpreter.
    pub exec_interpreted: u64,
    /// Interpreter fallbacks because the statement used an unsupported
    /// shape (subqueries, EXISTS, non-lowerable expressions).
    pub exec_fallback_expr: u64,
    /// Interpreter fallbacks because the statement ran inside a trigger
    /// scope (`inserted`/`deleted` pseudo-tables, per-firing clones).
    pub exec_fallback_scope: u64,
    /// Interpreter fallbacks because compiled execution was disabled by
    /// [`EngineConfig::compiled_exec`].
    pub exec_fallback_disabled: u64,
    /// Vectorized batches executed (chunks of up to 1024 candidate tuples
    /// pushed through a compiled filter/aggregate program).
    pub batches_vectorized: u64,
    /// Candidate tuples processed through vectorized batches.
    pub rows_batched: u64,
    /// Lowered-plan cache hits (statement reused its compiled program).
    pub plan_lowered_hits: u64,
    /// Lowered-plan cache misses (statement was lowered from scratch).
    pub plan_lowered_misses: u64,
    /// WAL records appended this process lifetime (0 without a data dir).
    pub wal_records: u64,
    /// WAL bytes appended this process lifetime.
    pub wal_bytes: u64,
    /// fsyncs issued by the commit path.
    pub wal_fsyncs: u64,
    /// Commit waits satisfied by a neighbouring batch's fsync (or one fsync
    /// covering several queued commits) — the group-commit win.
    pub wal_group_commits: u64,
    /// Checkpoints taken (snapshot written, WAL truncated).
    pub wal_checkpoints: u64,
    /// Records replayed during recovery at open time.
    pub wal_records_replayed: u64,
    /// 1 if recovery found (and trimmed) a torn tail — the signature of a
    /// mid-write crash.
    pub wal_torn_tail: u64,
}

impl SqlServer {
    pub fn new() -> Arc<Self> {
        Self::with_config(EngineConfig::default())
    }

    pub fn with_config(config: EngineConfig) -> Arc<Self> {
        let engine = Engine::with_config(config);
        let clock = engine.clock();
        Arc::new(SqlServer {
            engine,
            clock,
            schedule: RwLock::new(()),
            locks: LockManager::new(),
            plans: PlanCache::new(1024),
            publish_epoch: AtomicU64::new(0),
            publish_lock: Mutex::new(()),
            snapshot_reads: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            statements: AtomicU64::new(0),
            batches_parallel: AtomicU64::new(0),
            batches_exclusive: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            inflight_peak: AtomicU64::new(0),
            wal: None,
        })
    }

    /// Open (or create) a durable server rooted at `dir`: recover from the
    /// newest snapshot + WAL, then log every mutating batch before
    /// acknowledging it.
    pub fn open(
        dir: impl AsRef<std::path::Path>,
        durability: DurabilityConfig,
    ) -> Result<Arc<Self>> {
        let storage = FsStorage::open(dir.as_ref().to_path_buf())?;
        Self::open_with_storage(storage, durability, EngineConfig::default())
    }

    /// [`Self::open`] over an arbitrary [`Storage`] — the seam the
    /// fault-injection tests use (`FaultyStorage`).
    ///
    /// Recovery: restore the snapshot (if any), scan the WAL accepting the
    /// longest valid prefix, replay it, and trim a torn tail back to the
    /// crash boundary. Damage *before* the last valid record fails the open
    /// loudly — silently dropping committed work is never an option.
    pub fn open_with_storage(
        storage: Arc<dyn Storage>,
        durability: DurabilityConfig,
        config: EngineConfig,
    ) -> Result<Arc<Self>> {
        let engine = Engine::with_config(config);
        let clock = engine.clock();

        let mut snap_seq = 0u64;
        if let Some(bytes) = storage.load(SNAPSHOT_FILE)? {
            let (db, snap_clock, last_seq) = decode_snapshot(&bytes)?;
            engine.restore_database(db);
            clock.set(snap_clock);
            snap_seq = last_seq;
        }

        let wal_bytes = storage.load(WAL_FILE)?.unwrap_or_default();
        let scan = scan_wal(&wal_bytes);
        if let WalTail::Corrupt { at } = scan.tail {
            return Err(Error::Io {
                msg: format!(
                    "WAL corrupt at byte {at}: valid records follow a damaged one; \
                     refusing to silently drop committed work"
                ),
            });
        }
        // Records at or below the snapshot's high-water mark are already in
        // the restored state: a crash between the checkpoint's snapshot
        // replace and its WAL truncation leaves them on disk, and replaying
        // them would apply every batch twice.
        let mut replayed = 0u64;
        for r in &scan.records {
            if r.seq <= snap_seq {
                continue;
            }
            // Re-seed the clock so getdate() reproduces the original
            // timestamps, then replay the batch verbatim. Errors are
            // deliberately ignored: a batch that failed live fails replaying
            // with the same partial effects (no implicit transaction).
            clock.set(r.clock);
            let _ = engine.execute(&r.sql, &SessionCtx::new(&r.db, &r.user));
            replayed += 1;
        }
        if engine.in_tx() {
            // The crash implicitly rolled back whatever transaction was open.
            let ctx = scan
                .records
                .last()
                .map(|r| SessionCtx::new(&r.db, &r.user))
                .unwrap_or_else(|| SessionCtx::new("master", "recovery"));
            engine.execute("rollback", &ctx)?;
        }

        let torn = matches!(scan.tail, WalTail::Torn { .. });
        let skipped = scan.records.len() as u64 - replayed;
        let mut wal_len = wal_bytes.len() as u64;
        if torn || scan.duplicates_skipped > 0 || skipped > 0 {
            // Rewrite the log as the canonical accepted suffix so the next
            // append lands after well-formed bytes. Dropping snapshot-covered
            // records also finishes the truncation an interrupted checkpoint
            // never got to.
            let mut canonical = Vec::with_capacity(scan.valid_len as usize);
            for r in scan.records.iter().filter(|r| r.seq > snap_seq) {
                canonical.extend(encode_record(
                    r.seq,
                    r.clock,
                    &SessionCtx::new(&r.db, &r.user),
                    &r.sql,
                ));
            }
            storage.replace(WAL_FILE, &canonical)?;
            wal_len = canonical.len() as u64;
        }
        let next_seq = scan
            .records
            .last()
            .map(|r| r.seq + 1)
            .unwrap_or(1)
            .max(snap_seq + 1);

        let wal = Wal::new(storage, durability, next_seq, wal_len);
        wal.counters.replayed.store(replayed, Ordering::Relaxed);
        wal.counters.torn_tail.store(torn as u64, Ordering::Relaxed);

        let server = SqlServer {
            engine,
            clock,
            schedule: RwLock::new(()),
            locks: LockManager::new(),
            plans: PlanCache::new(1024),
            publish_epoch: AtomicU64::new(0),
            publish_lock: Mutex::new(()),
            snapshot_reads: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            statements: AtomicU64::new(0),
            batches_parallel: AtomicU64::new(0),
            batches_exclusive: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            inflight_peak: AtomicU64::new(0),
            wal: Some(wal),
        };
        // Recovery replayed through the raw engine, which never publishes;
        // seed the MVCC read lane with the recovered state before any
        // session can pin a snapshot.
        server.publish_all_tables();
        Ok(Arc::new(server))
    }

    /// True when the server logs to a WAL (opened via [`Self::open`]).
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// True when a storage failure has degraded the server to read-only.
    pub fn is_read_only(&self) -> bool {
        self.wal.as_ref().is_some_and(|w| w.is_read_only())
    }

    /// Snapshot the engine and truncate the WAL. Errors inside an open
    /// transaction (the snapshot would capture uncommitted state) and on
    /// non-durable servers.
    pub fn checkpoint(&self) -> Result<()> {
        let wal = self.wal.as_ref().ok_or_else(|| {
            Error::exec("checkpoint requires a durable server (opened with a data dir)")
        })?;
        let _excl = self.schedule.write();
        if self.engine.in_tx() {
            return Err(Error::Transaction {
                msg: "cannot checkpoint inside an open transaction".into(),
            });
        }
        self.checkpoint_locked(wal)
    }

    /// Write the snapshot + truncate the log. Caller holds the exclusive
    /// schedule lock and has verified no transaction is open.
    fn checkpoint_locked(&self, wal: &Wal) -> Result<()> {
        // Stamp the snapshot with the WAL high-water mark so recovery can
        // skip records the snapshot already contains — the crash window
        // between the snapshot replace and the WAL truncation (or a
        // truncation that fails outright) must not double-replay.
        let snapshot = {
            let db = self.engine.database();
            encode_snapshot(&db, self.clock.peek(), wal.last_seq())
        };
        wal.checkpoint(&snapshot)
    }

    /// Register the notification sink used by `syb_sendmsg()`.
    pub fn set_sink(&self, sink: Arc<dyn NotificationSink>) {
        self.engine.set_sink(sink);
    }

    /// The engine's logical clock (shared, lock-free).
    pub fn clock(&self) -> Arc<LogicalClock> {
        Arc::clone(&self.clock)
    }

    /// Open a session with the given database/user identity. Each session
    /// gets a server-unique id, usable as a wire-protocol session handle.
    pub fn session(self: &Arc<Self>, database: &str, user: &str) -> Session {
        let id = self.sessions_opened.fetch_add(1, Ordering::Relaxed) + 1;
        Session {
            server: Arc::clone(self),
            ctx: SessionCtx::new(database, user),
            id,
        }
    }

    /// Aggregate session counters.
    pub fn server_stats(&self) -> ServerStats {
        ServerStats {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            statements: self.statements.load(Ordering::Relaxed),
            plan_cache_hits: self.plans.hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plans.misses.load(Ordering::Relaxed),
            lock_waits: self.locks.waits.load(Ordering::Relaxed),
            batches_parallel: self.batches_parallel.load(Ordering::Relaxed),
            batches_exclusive: self.batches_exclusive.load(Ordering::Relaxed),
            snapshot_reads: self.snapshot_reads.load(Ordering::Relaxed),
            // Racy sample: round an in-window (odd) reading down to the
            // last closed window so parity stays meaningful downstream.
            snapshot_epoch: self.publish_epoch.load(Ordering::Relaxed) & !1,
            batches_inflight_peak: self.inflight_peak.load(Ordering::Relaxed),
            index_hits: self.engine.scan_stats().hits(),
            index_misses: self.engine.scan_stats().misses(),
            rows_scanned: self.engine.scan_stats().scanned(),
            exec_compiled: self.engine.scan_stats().compiled(),
            exec_interpreted: self.engine.scan_stats().interpreted(),
            exec_fallback_expr: self.engine.scan_stats().fallback_expr(),
            exec_fallback_scope: self.engine.scan_stats().fallback_scope(),
            exec_fallback_disabled: self.engine.scan_stats().fallback_disabled(),
            batches_vectorized: self.engine.scan_stats().batches(),
            rows_batched: self.engine.scan_stats().batched_rows(),
            plan_lowered_hits: self.engine.scan_stats().lowered_hits(),
            plan_lowered_misses: self.engine.scan_stats().lowered_misses(),
            wal_records: self.wal_counter(|c| &c.records),
            wal_bytes: self.wal_counter(|c| &c.bytes),
            wal_fsyncs: self.wal_counter(|c| &c.fsyncs),
            wal_group_commits: self.wal_counter(|c| &c.group_commits),
            wal_checkpoints: self.wal_counter(|c| &c.checkpoints),
            wal_records_replayed: self.wal_counter(|c| &c.replayed),
            wal_torn_tail: self.wal_counter(|c| &c.torn_tail),
        }
    }

    fn wal_counter(&self, f: impl Fn(&crate::wal::WalCounters) -> &AtomicU64) -> u64 {
        self.wal
            .as_ref()
            .map_or(0, |w| f(&w.counters).load(Ordering::Relaxed))
    }

    /// Run a closure over one live table's row store under its row
    /// write-lock. Returns `None` when the table does not exist.
    ///
    /// This is the narrow seam that replaced write-side `inspect` uses: the
    /// write guard republishes the table's MVCC version when it drops, so
    /// snapshot readers observe the edit. It bypasses the WAL — durable
    /// servers must route writes through SQL instead — and the scheduler,
    /// so callers must own the table exclusively (the agent's watermark
    /// store does) or tolerate racing batches.
    pub fn with_table_rows_mut<R>(
        &self,
        table: &str,
        f: impl FnOnce(&mut Vec<crate::table::Row>) -> R,
    ) -> Option<R> {
        let db = self.engine.database();
        let t = db.table(table)?;
        let mut rows = t.rows_mut();
        Some(f(&mut rows))
    }

    /// Read-only companion to [`Self::with_table_rows_mut`]: run a closure
    /// over one live table's rows under its recursive read lock. Returns
    /// `None` when the table does not exist.
    ///
    /// Unlike [`Self::snapshot`] this sees *live* (unpublished) rows and
    /// takes no clones, so it is safe from notification sinks running on
    /// the emitting session's thread — the recursive read lock cannot
    /// self-deadlock against row guards that thread already holds.
    pub fn with_table_rows<R>(
        &self,
        table: &str,
        f: impl FnOnce(&[crate::table::Row]) -> R,
    ) -> Option<R> {
        let db = self.engine.database();
        let t = db.table(table)?;
        let rows = t.rows();
        Some(f(&rows))
    }

    /// A point-in-time snapshot of the **live** database: every table is
    /// cloned copy-on-write (O(1) per table, `Arc` bumps only) under the
    /// catalog read guard, then all locks are released. This is the public
    /// read API replacing read-only [`SqlServer::inspect`] uses.
    ///
    /// Live, not published: the snapshot includes rows written by batches
    /// that have executed but not yet published their versions. Agent
    /// internals depend on that — a durable `_ver` counter read here is
    /// never behind a datagram the engine has already emitted, which is
    /// what keeps exactly-once reconciliation from mistaking publication
    /// lag for a rollback. Each table is statement-consistent; the set as
    /// a whole is not a serialization point (same contract `inspect` had).
    pub fn snapshot(&self) -> DbSnapshot {
        let db = self.engine.database().clone();
        DbSnapshot {
            db,
            // Racy sample (this pin does not synchronize with publication);
            // round down so the reported epoch is always a closed window.
            epoch: self.publish_epoch.load(Ordering::Acquire) & !1,
        }
    }

    /// Number of `ROLLBACK` statements that restored a database snapshot
    /// (see [`Engine::rollback_count`]) — the agent's loss signal.
    pub fn rollback_count(&self) -> u64 {
        self.engine.rollback_count()
    }

    /// Pin an epoch-consistent snapshot of a read-pure plan's footprint:
    /// published table versions plus the procedure definitions the batch
    /// executes. Retries while a publication window is open (odd epoch) or
    /// a publication landed mid-pin, so the pinned set is always a single
    /// moment's published state.
    ///
    /// `None` means either a table or procedure vanished since
    /// classification — impossible while the caller holds the schedule
    /// read guard (DDL needs the write side) — or the retry bound was
    /// exhausted because publications kept landing mid-pin (or a
    /// publisher sat preempted inside its window). Both degrade to lock
    /// scheduling, which is always correct.
    fn pin_published(&self, plan: &BatchPlan) -> Option<DbSnapshot> {
        // Windows are nanoseconds long, so a handful of spins normally
        // suffices; past that the publisher was likely descheduled, so
        // yield the core to it instead of burning a full CPU under the
        // schedule read lock — and past the hard bound, give up.
        const SPINS_BEFORE_YIELD: u32 = 64;
        const MAX_TRIES: u32 = 4096;
        let mut tries = 0u32;
        let backoff = |tries: u32| {
            if tries < SPINS_BEFORE_YIELD {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        };
        loop {
            let e1 = self.publish_epoch.load(Ordering::Acquire);
            if e1 & 1 == 1 {
                tries += 1;
                if tries >= MAX_TRIES {
                    return None;
                }
                backoff(tries);
                continue;
            }
            let snap = {
                let db = self.engine.database();
                db.pin_published(&plan.requirements.tables, &plan.procedures)?
            };
            let e2 = self.publish_epoch.load(Ordering::Acquire);
            if e1 == e2 {
                return Some(DbSnapshot {
                    db: snap,
                    epoch: e2,
                });
            }
            // A publication landed mid-pin; counts toward the bound too.
            tries += 1;
            if tries >= MAX_TRIES {
                return None;
            }
            backoff(tries);
        }
    }

    /// Publish new versions of `tables` inside one epoch window. Called at
    /// effectful-batch end while the batch still holds its table locks, so
    /// the captured states are batch-consistent and no concurrent writer
    /// of the same tables can republish them mid-window. Concurrent
    /// batches on *disjoint* tables do reach here simultaneously, so the
    /// whole window runs under `publish_lock` — the seqlock epoch needs a
    /// single writer for its parity to mean "window open".
    fn publish_tables(&self, tables: &BTreeSet<String>) {
        if tables.is_empty() {
            return;
        }
        let db = self.engine.database();
        let _window = self.publish_lock.lock();
        self.publish_epoch.fetch_add(1, Ordering::AcqRel);
        for key in tables {
            if let Some(t) = db.table(key) {
                t.publish();
            }
        }
        self.publish_epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Publish every table — barrier-batch exit (DDL, transaction end,
    /// recovery), where the precise write set is unknown. Caller holds the
    /// exclusive schedule lock (or is pre-service, during open); the
    /// window still takes `publish_lock` so epoch parity stays
    /// single-writer everywhere.
    fn publish_all_tables(&self) {
        let db = self.engine.database();
        let _window = self.publish_lock.lock();
        self.publish_epoch.fetch_add(1, Ordering::AcqRel);
        db.publish_all();
        self.publish_epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Schedule and run one planned batch.
    fn run_batch(
        &self,
        batch: &str,
        planned: &Planned,
        session: &SessionCtx,
        out: &mut BatchResult,
    ) -> Result<()> {
        // Durable servers force every loggable batch through the exclusive
        // schedule: WAL order then *is* execution order, which is what makes
        // serial replay reproduce concurrent history (and lets each record
        // stamp the logical-clock reading its batch actually saw).
        let log_durably = self.wal.is_some() && !is_readonly(&planned.stmts);
        let sched = self.schedule.read();
        // An open transaction owns the whole database snapshot, so anything
        // running inside it — reads included, which must see the
        // uncommitted state — serializes; classification otherwise decides.
        // `in_tx` cannot flip under us: BEGIN TRAN is a barrier and needs
        // the schedule write lock we are blocking.
        let plan = if self.engine.in_tx() {
            None
        } else {
            let db = self.engine.database();
            Some(BatchPlan::derive(&db, &planned.stmts, session))
        };
        match plan {
            // MVCC read lane: pin the published versions of the read set
            // under the schedule guard (so no DDL is mid-flight), then drop
            // it — execution holds no server locks at all and blocks
            // neither writers nor DDL. A read-pure batch is never WAL-
            // logged even on a durable server: it has no effects to replay.
            Some(plan) if plan.class == BatchClass::ReadPure && !session.live_reads => {
                if let Some(snap) = self.pin_published(&plan) {
                    drop(sched);
                    self.snapshot_reads.fetch_add(1, Ordering::Relaxed);
                    return self.engine.run_snapshot_stmts_with(
                        snap.database(),
                        &planned.stmts,
                        &planned.params,
                        session,
                        out,
                        Some(&planned.lowered),
                    );
                }
                // A missed pin means the catalog changed since
                // classification (which the schedule guard rules out) or
                // publication churn exhausted the retry bound — either
                // way, degrade to lock scheduling rather than spin or
                // panic.
                self.run_under_table_locks(&plan, planned, session, out)
            }
            Some(plan) if plan.class != BatchClass::Barrier && !log_durably => {
                self.run_under_table_locks(&plan, planned, session, out)
            }
            // Barrier, open transaction, or durable write: exclusive lane.
            _ => {
                drop(sched);
                let excl = self.schedule.write();
                // The admission plan was derived under the read guard we
                // just released; another barrier batch (say CREATE TRIGGER
                // on one of our targets) can run in that gap and grow the
                // write set our triggers touch. Re-derive now that the
                // catalog is frozen by the write lock, so the publication
                // below covers what this batch actually writes.
                let plan = if self.engine.in_tx() {
                    None
                } else {
                    let db = self.engine.database();
                    Some(BatchPlan::derive(&db, &planned.stmts, session))
                };
                self.batches_exclusive.fetch_add(1, Ordering::Relaxed);
                let mut commit_seq = None;
                if log_durably {
                    let wal = self.wal.as_ref().expect("log_durably implies wal");
                    // Log before executing: if the append fails (read-only
                    // degradation) no state changes and the client sees Io.
                    commit_seq = Some(wal.append(self.clock.peek(), session, batch)?);
                }
                let r = self.engine.run_stmts_with(
                    &planned.stmts,
                    &planned.params,
                    session,
                    out,
                    Some(&planned.lowered),
                );
                if mutates_catalog(&planned.stmts) {
                    self.plans.invalidate();
                }
                if let Some(wal) = &self.wal {
                    if wal.wants_checkpoint() && !self.engine.in_tx() {
                        // Best-effort: a failure poisons the WAL (read-only)
                        // but the batch itself already executed and is
                        // covered by the log it was appended to.
                        let _ = self.checkpoint_locked(wal);
                    }
                }
                // Publish before releasing the schedule lock — a later
                // exclusive batch must not be able to interleave its own
                // mid-execution state into what we capture. Never publish
                // while a transaction is open: uncommitted state must stay
                // invisible to the snapshot lane until COMMIT (or be
                // discarded by ROLLBACK), whose own batch republishes.
                if !self.engine.in_tx() {
                    match &plan {
                        Some(p) if p.class != BatchClass::Barrier => {
                            self.publish_tables(&p.effects.tables)
                        }
                        _ => self.publish_all_tables(),
                    }
                }
                drop(excl);
                if let Some(seq) = commit_seq {
                    // Wait for durability *after* releasing the schedule so
                    // queued batches can share the fsync (group commit). A
                    // sync failure outranks an execution error: the client
                    // must not treat unsynced state as acknowledged.
                    self.wal
                        .as_ref()
                        .expect("commit_seq implies wal")
                        .commit(seq)?;
                }
                r
            }
        }
    }

    /// The effectful lane: all-or-nothing per-table lock group over
    /// `requirements ∪ effects`, then publication of the write set while
    /// the locks are still held.
    fn run_under_table_locks(
        &self,
        plan: &BatchPlan,
        planned: &Planned,
        session: &SessionCtx,
        out: &mut BatchResult,
    ) -> Result<()> {
        self.batches_parallel.fetch_add(1, Ordering::Relaxed);
        let _locks = self.locks.acquire(plan.lock_tables());
        let now = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.inflight_peak.fetch_max(now, Ordering::Relaxed);
        let r = self.engine.run_stmts_with(
            &planned.stmts,
            &planned.params,
            session,
            out,
            Some(&planned.lowered),
        );
        // Publish even when `r` is an error: without an explicit
        // transaction, earlier statements' effects persist (real-server
        // semantics), and the snapshot lane must see them.
        self.publish_tables(&plan.effects.tables);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        r
    }
}

impl SqlEndpoint for SqlServer {
    fn execute(&self, sql: &str, session: &SessionCtx) -> Result<BatchResult> {
        self.statements.fetch_add(1, Ordering::Relaxed);
        let mut out = BatchResult::default();
        for batch in split_batches(sql) {
            let planned = self.plans.plan(batch)?;
            if planned.stmts.is_empty() {
                continue;
            }
            self.run_batch(batch, &planned, session, &mut out)?;
        }
        Ok(out)
    }
}

/// A client connection bound to a database/user identity.
#[derive(Clone)]
pub struct Session {
    server: Arc<SqlServer>,
    ctx: SessionCtx,
    id: u64,
}

impl Session {
    pub fn execute(&self, sql: &str) -> Result<BatchResult> {
        self.server.execute(sql, &self.ctx)
    }

    /// Opt this session out of the MVCC snapshot lane: its read-pure
    /// batches execute against live rows under table locks instead of a
    /// published version. Required for sessions whose reads must observe
    /// effects of batches that have executed but not yet published — the
    /// active agent's internal sessions, whose event datagrams are enqueued
    /// mid-batch, before the triggering batch publishes at its end.
    pub fn with_live_reads(mut self) -> Self {
        self.ctx.live_reads = true;
        self
    }

    pub fn ctx(&self) -> &SessionCtx {
        &self.ctx
    }

    /// Server-unique session id (1-based, in open order).
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn server(&self) -> &Arc<SqlServer> {
        &self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn sessions_share_one_engine() {
        let server = SqlServer::new();
        let s1 = server.session("db", "alice");
        let s2 = server.session("db", "bob");
        s1.execute("create table t (a int)").unwrap();
        s2.execute("insert t values (42)").unwrap();
        let r = s1.execute("select a from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(42)));
    }

    #[test]
    fn sessions_have_distinct_identity() {
        let server = SqlServer::new();
        let s1 = server.session("db", "alice");
        let r = s1.execute("select user_name()").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Str("alice".into())));
    }

    #[test]
    fn concurrent_sessions_are_serialized_safely() {
        let server = SqlServer::new();
        server
            .session("db", "u")
            .execute("create table t (a int)")
            .unwrap();
        let mut handles = Vec::new();
        for i in 0..8 {
            let session = server.session("db", &format!("u{i}"));
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    session.execute("insert t values (1)").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let r = server
            .session("db", "u")
            .execute("select count(*) from t")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(400)));
    }

    #[test]
    fn session_ids_and_stats_track_usage() {
        let server = SqlServer::new();
        let s1 = server.session("db", "a");
        let s2 = server.session("db", "b");
        assert_eq!(s1.id(), 1);
        assert_eq!(s2.id(), 2);
        s1.execute("create table t (a int)").unwrap();
        s2.execute("insert t values (1)").unwrap();
        let stats = server.server_stats();
        assert_eq!(stats.sessions_opened, 2);
        assert_eq!(stats.statements, 2);
    }

    #[test]
    fn snapshot_gives_catalog_access() {
        let server = SqlServer::new();
        server
            .session("db", "u")
            .execute("create table t (a int)")
            .unwrap();
        // The lock-free snapshot sees the full catalog.
        assert_eq!(server.snapshot().database().table_count(), 1);
    }

    #[test]
    fn with_table_rows_mut_edits_live_and_published_rows() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (1)").unwrap();
        let hit = server.with_table_rows_mut("t", |rows| {
            rows[0][0] = Value::Int(42);
        });
        assert!(hit.is_some());
        assert!(server.with_table_rows_mut("missing", |_| ()).is_none());
        // Both the live read path and the MVCC snapshot lane see the edit.
        let r = s.execute("select a from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(42)));
        let snap = server.snapshot();
        let t = snap.database().table("t").unwrap();
        assert_eq!(t.rows()[0][0], Value::Int(42));
    }

    #[test]
    fn plan_cache_hits_on_repeated_statement_shapes() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (k int, v varchar(10))").unwrap();
        let before = server.server_stats();
        for i in 0..20 {
            s.execute(&format!("insert t values ({i}, 'v{i}')"))
                .unwrap();
            s.execute(&format!("select v from t where k = {i}"))
                .unwrap();
        }
        let after = server.server_stats();
        // First insert and first select miss; the remaining 38 hit.
        assert_eq!(after.plan_cache_misses - before.plan_cache_misses, 2);
        assert_eq!(after.plan_cache_hits - before.plan_cache_hits, 38);
        // Literals were rebound per execution, not frozen into the plan.
        let r = s.execute("select v from t where k = 17").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Str("v17".into())));
        let r = s.execute("select count(*) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(20)));
    }

    #[test]
    fn plan_cache_invalidated_by_ddl() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (1)").unwrap();
        s.execute("insert t values (2)").unwrap();
        // DDL bumps the epoch: the previously hot plan must re-parse.
        s.execute("create table t2 (a int)").unwrap();
        let warm = server.server_stats();
        s.execute("insert t values (3)").unwrap();
        let cold = server.server_stats();
        assert_eq!(cold.plan_cache_misses - warm.plan_cache_misses, 1);
        assert_eq!(cold.plan_cache_hits, warm.plan_cache_hits);
        // And the re-parsed plan still binds fresh literals.
        s.execute("insert t values (4)").unwrap();
        let r = s.execute("select sum(a) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(10)));
    }

    #[test]
    fn scheduler_classifies_parallel_and_exclusive_batches() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        let after_ddl = server.server_stats();
        assert_eq!(after_ddl.batches_exclusive, 1);
        assert_eq!(after_ddl.batches_parallel, 0);
        s.execute("insert t values (1)").unwrap();
        s.execute("select a from t").unwrap();
        let after_dml = server.server_stats();
        assert_eq!(after_dml.batches_exclusive, 1);
        // The insert takes table locks; the pure select rides the MVCC
        // snapshot lane and touches no lock state at all.
        assert_eq!(after_dml.batches_parallel, 1);
        assert_eq!(after_dml.snapshot_reads, 1);
    }

    #[test]
    fn snapshot_reads_see_every_completed_write() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        for i in 0..10i64 {
            s.execute(&format!("insert t values ({i})")).unwrap();
            let r = s.execute("select count(*) from t").unwrap();
            assert_eq!(r.scalar(), Some(&Value::Int(i + 1)));
        }
        let stats = server.server_stats();
        assert_eq!(stats.snapshot_reads, 10);
        // Seqlock parity: even outside a publication window, and advanced
        // by two per publishing batch (1 DDL + 10 inserts).
        assert_eq!(stats.snapshot_epoch % 2, 0);
        assert_eq!(stats.snapshot_epoch, 22);
    }

    #[test]
    fn snapshot_readers_complete_while_a_writer_holds_table_locks() {
        use crate::notify::{Datagram, NotificationSink};
        use std::sync::mpsc;

        struct ParkSink {
            entered: mpsc::Sender<()>,
            release: Mutex<mpsc::Receiver<()>>,
        }
        impl NotificationSink for ParkSink {
            fn send(&self, _d: Datagram) {
                self.entered.send(()).unwrap();
                self.release.lock().recv().unwrap();
            }
        }

        let server = SqlServer::new();
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        server.set_sink(Arc::new(ParkSink {
            entered: entered_tx,
            release: Mutex::new(release_rx),
        }));
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (1)").unwrap();
        s.execute(
            "create trigger trt on t for insert as \
             select syb_sendmsg('10.0.0.1', 10011, 'parked') from t",
        )
        .unwrap();
        let writer = {
            let session = server.session("db", "u");
            std::thread::spawn(move || session.execute("insert t values (2)").unwrap())
        };
        entered_rx.recv().unwrap(); // writer is inside the engine, lock held on `t`
                                    // The reader would deadlock this single-threaded test if it touched
                                    // the writer's lock; instead it pins the last *published* version —
                                    // which does not yet contain the writer's in-flight row.
        let r = s.execute("select count(*) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
        assert_eq!(server.server_stats().lock_waits, 0);
        // The trigger scans two rows, so the sink parks once per row.
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        writer.join().unwrap();
        // Once the writer's batch ends it publishes; the next read sees it.
        let r = s.execute("select count(*) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
        assert_eq!(server.server_stats().snapshot_reads, 2);
    }

    #[test]
    fn live_reads_sessions_stay_on_lock_scheduling() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (1)").unwrap();
        let live = server.session("master", "eca_agent").with_live_reads();
        let before = server.server_stats();
        let r = live.execute("select a from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
        let after = server.server_stats();
        assert_eq!(after.snapshot_reads, before.snapshot_reads);
        assert_eq!(after.batches_parallel - before.batches_parallel, 1);
    }

    #[test]
    fn snapshot_api_pins_an_immutable_catalog() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (1)").unwrap();
        let snap = server.snapshot();
        let epoch = snap.epoch();
        s.execute("insert t values (2)").unwrap();
        // The pin is CoW: later writes do not leak into it.
        assert_eq!(snap.database().table("t").unwrap().rows().len(), 1);
        assert!(server.snapshot().epoch() > epoch);
    }

    #[test]
    fn reads_inside_a_transaction_see_uncommitted_state() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (1)").unwrap();
        s.execute("begin tran").unwrap();
        s.execute("insert t values (2)").unwrap();
        let before = server.server_stats();
        // Inside the transaction even a pure select runs exclusively: it
        // must observe the uncommitted row, which no snapshot contains.
        let r = s.execute("select count(*) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
        let after = server.server_stats();
        assert_eq!(after.snapshot_reads, before.snapshot_reads);
        assert_eq!(after.batches_exclusive - before.batches_exclusive, 1);
        s.execute("rollback").unwrap();
        // Rollback republishes the surviving (pre-transaction) state.
        let r = s.execute("select count(*) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
        assert_eq!(
            server.server_stats().snapshot_reads,
            before.snapshot_reads + 1
        );
    }

    #[test]
    fn transactions_escalate_to_exclusive() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (1)").unwrap();
        s.execute("begin tran").unwrap();
        // Inside the transaction even plain DML runs exclusively.
        let before = server.server_stats();
        s.execute("insert t values (2)").unwrap();
        let after = server.server_stats();
        assert_eq!(after.batches_exclusive - before.batches_exclusive, 1);
        assert_eq!(after.batches_parallel, before.batches_parallel);
        s.execute("rollback").unwrap();
        let r = s.execute("select count(*) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn disjoint_tables_make_progress_concurrently() {
        let server = SqlServer::new();
        let setup = server.session("db", "u");
        for i in 0..4 {
            setup
                .execute(&format!("create table t{i} (a int)"))
                .unwrap();
        }
        let mut handles = Vec::new();
        for i in 0..4 {
            let session = server.session("db", "u");
            handles.push(std::thread::spawn(move || {
                for j in 0..50 {
                    session
                        .execute(&format!("insert t{i} values ({j})"))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4 {
            let r = setup
                .execute(&format!("select count(*) from t{i}"))
                .unwrap();
            assert_eq!(r.scalar(), Some(&Value::Int(50)), "table t{i}");
        }
        let stats = server.server_stats();
        // The 200 inserts lock their tables; the 4 verification counts are
        // read-pure and went through the snapshot lane instead.
        assert_eq!(stats.batches_parallel, 4 * 50);
        assert_eq!(stats.snapshot_reads, 4);
    }

    #[test]
    fn inflight_peak_proves_batches_overlap_inside_the_engine() {
        use crate::notify::{Datagram, NotificationSink};
        use std::sync::mpsc;

        // A sink that parks the sending batch mid-execution until released,
        // holding it *inside* the engine while another disjoint batch runs —
        // deterministic overlap evidence even on a single-CPU host.
        struct ParkSink {
            entered: mpsc::Sender<()>,
            release: Mutex<mpsc::Receiver<()>>,
        }
        impl NotificationSink for ParkSink {
            fn send(&self, _d: Datagram) {
                self.entered.send(()).unwrap();
                self.release.lock().recv().unwrap();
            }
        }

        let server = SqlServer::new();
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        server.set_sink(Arc::new(ParkSink {
            entered: entered_tx,
            release: Mutex::new(release_rx),
        }));
        let s = server.session("db", "u");
        s.execute("create table a (n int)").unwrap();
        s.execute("create table b (n int)").unwrap();
        s.execute(
            "create trigger tra on a for insert as \
             select syb_sendmsg('10.0.0.1', 10011, 'parked') from a",
        )
        .unwrap();
        let parked = {
            let session = server.session("db", "u");
            std::thread::spawn(move || session.execute("insert a values (1)").unwrap())
        };
        entered_rx.recv().unwrap(); // batch on `a` is now inside the engine
        s.execute("insert b values (2)").unwrap();
        release_tx.send(()).unwrap();
        parked.join().unwrap();
        assert!(
            server.server_stats().batches_inflight_peak >= 2,
            "disjoint batch on b should have run while the batch on a was parked"
        );
    }

    #[test]
    fn durable_server_survives_reopen() {
        use crate::storage::FaultyStorage;
        use crate::wal::{DurabilityConfig, FsyncPolicy};
        let storage = FaultyStorage::new();
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_bytes: 0,
        };
        {
            let server =
                SqlServer::open_with_storage(storage.clone(), cfg, EngineConfig::default())
                    .unwrap();
            let s = server.session("db", "u");
            s.execute("create table t (a int)").unwrap();
            s.execute("insert t values (1)").unwrap();
            s.execute("insert t values (2)").unwrap();
            let stats = server.server_stats();
            assert_eq!(stats.wal_records, 3);
            assert!(stats.wal_bytes > 0);
            assert!(stats.wal_fsyncs >= 1);
        }
        let server = SqlServer::open_with_storage(storage, cfg, EngineConfig::default()).unwrap();
        let r = server
            .session("db", "u")
            .execute("select sum(a) from t")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
        assert_eq!(server.server_stats().wal_records_replayed, 3);
    }

    #[test]
    fn checkpoint_truncates_wal_and_restores_from_snapshot() {
        use crate::storage::FaultyStorage;
        use crate::wal::{DurabilityConfig, FsyncPolicy, WAL_FILE};
        let storage = FaultyStorage::new();
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_bytes: 0,
        };
        let server =
            SqlServer::open_with_storage(storage.clone(), cfg, EngineConfig::default()).unwrap();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (7)").unwrap();
        server.checkpoint().unwrap();
        assert_eq!(storage.visible_len(WAL_FILE), 0);
        assert_eq!(server.server_stats().wal_checkpoints, 1);
        s.execute("insert t values (8)").unwrap();
        drop(s);
        drop(server);
        let server = SqlServer::open_with_storage(storage, cfg, EngineConfig::default()).unwrap();
        let r = server
            .session("db", "u")
            .execute("select sum(a) from t")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(15)));
        // Only the post-checkpoint suffix replayed.
        assert_eq!(server.server_stats().wal_records_replayed, 1);
    }

    #[test]
    fn wal_failure_degrades_to_read_only() {
        use crate::storage::{DiskFaultPlan, FaultyStorage};
        use crate::wal::{DurabilityConfig, FsyncPolicy};
        let storage = FaultyStorage::with_plan(DiskFaultPlan {
            fail_appends_after: Some(3),
            ..DiskFaultPlan::default()
        });
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_bytes: 0,
        };
        let server = SqlServer::open_with_storage(storage, cfg, EngineConfig::default()).unwrap();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (1)").unwrap();
        s.execute("insert t values (2)").unwrap();
        // Fourth append fails: the batch is rejected before executing.
        let err = s.execute("insert t values (3)").unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{err}");
        assert!(server.is_read_only());
        // Reads still work and see only the committed state.
        let r = s.execute("select count(*) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
        // Further writes keep failing fast.
        assert!(matches!(
            s.execute("insert t values (4)").unwrap_err(),
            Error::Io { .. }
        ));
    }

    #[test]
    fn non_durable_server_reports_zero_wal_stats() {
        let server = SqlServer::new();
        assert!(!server.is_durable());
        server
            .session("db", "u")
            .execute("create table t (a int)")
            .unwrap();
        let stats = server.server_stats();
        assert_eq!(stats.wal_records, 0);
        assert_eq!(stats.wal_bytes, 0);
        assert!(server.checkpoint().is_err());
    }

    #[test]
    fn same_table_batches_serialize_on_table_locks() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (0)").unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let session = server.session("db", "u");
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    session.execute("update t set a = a + 1").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every update saw a consistent row: increments never lost.
        let r = s.execute("select max(a) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(100)));
    }
}
