//! The server layer: thread-safe sessions over a shared engine.
//!
//! This plays the role of Sybase's Open Server / TDS stack: clients (and the
//! ECA Agent's internal threads) hold [`Session`]s that submit language
//! batches and get tabular results back. The [`SqlEndpoint`] trait is the
//! seam the agent's Gateway Open Server is generic over.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::LogicalClock;
use crate::engine::{BatchResult, Engine, EngineConfig};
use crate::error::Result;
use crate::eval::SessionCtx;
use crate::notify::NotificationSink;

/// Anything that can execute SQL on behalf of a session: a real server, the
/// ECA Agent (which proxies to one), or a test double.
pub trait SqlEndpoint: Send + Sync {
    fn execute(&self, sql: &str, session: &SessionCtx) -> Result<BatchResult>;
}

/// A thread-safe SQL server wrapping one [`Engine`].
///
/// Statements are serialized through a mutex — the engine is a
/// single-writer system, which is all the paper's architecture requires
/// (the agent funnels everything through the Gateway Open Server anyway).
pub struct SqlServer {
    engine: Mutex<Engine>,
    clock: Arc<LogicalClock>,
    /// Sessions handed out so far; doubles as the session id source.
    sessions_opened: AtomicU64,
    /// Statement batches executed (all sessions, including internal ones).
    statements: AtomicU64,
}

/// Aggregate session-level counters for one [`SqlServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub sessions_opened: u64,
    pub statements: u64,
}

impl SqlServer {
    pub fn new() -> Arc<Self> {
        Self::with_config(EngineConfig::default())
    }

    pub fn with_config(config: EngineConfig) -> Arc<Self> {
        let engine = Engine::with_config(config);
        let clock = engine.clock();
        Arc::new(SqlServer {
            engine: Mutex::new(engine),
            clock,
            sessions_opened: AtomicU64::new(0),
            statements: AtomicU64::new(0),
        })
    }

    /// Register the notification sink used by `syb_sendmsg()`.
    pub fn set_sink(&self, sink: Arc<dyn NotificationSink>) {
        self.engine.lock().set_sink(sink);
    }

    /// The engine's logical clock (shared, lock-free).
    pub fn clock(&self) -> Arc<LogicalClock> {
        Arc::clone(&self.clock)
    }

    /// Open a session with the given database/user identity. Each session
    /// gets a server-unique id, usable as a wire-protocol session handle.
    pub fn session(self: &Arc<Self>, database: &str, user: &str) -> Session {
        let id = self.sessions_opened.fetch_add(1, Ordering::Relaxed) + 1;
        Session {
            server: Arc::clone(self),
            ctx: SessionCtx::new(database, user),
            id,
        }
    }

    /// Aggregate session counters.
    pub fn server_stats(&self) -> ServerStats {
        ServerStats {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            statements: self.statements.load(Ordering::Relaxed),
        }
    }

    /// Run a closure with read access to the engine (for introspection).
    pub fn inspect<R>(&self, f: impl FnOnce(&Engine) -> R) -> R {
        f(&self.engine.lock())
    }
}

impl SqlEndpoint for SqlServer {
    fn execute(&self, sql: &str, session: &SessionCtx) -> Result<BatchResult> {
        self.statements.fetch_add(1, Ordering::Relaxed);
        self.engine.lock().execute(sql, session)
    }
}

/// A client connection bound to a database/user identity.
#[derive(Clone)]
pub struct Session {
    server: Arc<SqlServer>,
    ctx: SessionCtx,
    id: u64,
}

impl Session {
    pub fn execute(&self, sql: &str) -> Result<BatchResult> {
        self.server.execute(sql, &self.ctx)
    }

    pub fn ctx(&self) -> &SessionCtx {
        &self.ctx
    }

    /// Server-unique session id (1-based, in open order).
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn server(&self) -> &Arc<SqlServer> {
        &self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn sessions_share_one_engine() {
        let server = SqlServer::new();
        let s1 = server.session("db", "alice");
        let s2 = server.session("db", "bob");
        s1.execute("create table t (a int)").unwrap();
        s2.execute("insert t values (42)").unwrap();
        let r = s1.execute("select a from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(42)));
    }

    #[test]
    fn sessions_have_distinct_identity() {
        let server = SqlServer::new();
        let s1 = server.session("db", "alice");
        let r = s1.execute("select user_name()").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Str("alice".into())));
    }

    #[test]
    fn concurrent_sessions_are_serialized_safely() {
        let server = SqlServer::new();
        server
            .session("db", "u")
            .execute("create table t (a int)")
            .unwrap();
        let mut handles = Vec::new();
        for i in 0..8 {
            let session = server.session("db", &format!("u{i}"));
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    session.execute("insert t values (1)").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let r = server
            .session("db", "u")
            .execute("select count(*) from t")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(400)));
    }

    #[test]
    fn session_ids_and_stats_track_usage() {
        let server = SqlServer::new();
        let s1 = server.session("db", "a");
        let s2 = server.session("db", "b");
        assert_eq!(s1.id(), 1);
        assert_eq!(s2.id(), 2);
        s1.execute("create table t (a int)").unwrap();
        s2.execute("insert t values (1)").unwrap();
        let stats = server.server_stats();
        assert_eq!(stats.sessions_opened, 2);
        assert_eq!(stats.statements, 2);
    }

    #[test]
    fn inspect_gives_catalog_access() {
        let server = SqlServer::new();
        server
            .session("db", "u")
            .execute("create table t (a int)")
            .unwrap();
        let n = server.inspect(|e| e.database().table_count());
        assert_eq!(n, 1);
    }
}
