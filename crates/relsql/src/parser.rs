//! Recursive-descent parser for the Transact-SQL subset.
//!
//! Mirrors Sybase conventions the paper's generated code relies on
//! (Figures 11 and 14): no statement terminators, `CREATE TRIGGER`/`CREATE
//! PROCEDURE` bodies extending to the end of the batch, `SELECT ... INTO`,
//! comma joins, and double-quoted string literals.

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::value::{DataType, Value};

/// Words that can never be a table alias or column name in this dialect.
const RESERVED: &[&str] = &[
    "select",
    "insert",
    "update",
    "delete",
    "create",
    "drop",
    "alter",
    "print",
    "execute",
    "exec",
    "begin",
    "commit",
    "rollback",
    "if",
    "while",
    "end",
    "else",
    "truncate",
    "where",
    "group",
    "order",
    "having",
    "from",
    "into",
    "set",
    "values",
    "on",
    "as",
    "union",
    "go",
    "and",
    "or",
    "not",
    "in",
    "between",
    "like",
    "is",
    "null",
    "exists",
    "distinct",
    "tran",
    "transaction",
    "desc",
    "asc",
    "by",
    "add",
    "table",
    "trigger",
    "procedure",
    "proc",
    "for",
    "join",
    "inner",
];

fn is_reserved(word: &str) -> bool {
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

/// Parse a full batch into statements.
pub fn parse_script(src: &str) -> Result<Vec<Stmt>> {
    parse_script_with_tokens(src, tokenize(src)?)
}

/// Parse a batch from a pre-built token stream. The statement-plan cache
/// uses this with literal tokens masked to `TokenKind::Param` so that
/// batches differing only in literals parse to one shared plan. `src` must
/// be the original text the tokens were lexed from (body slices for
/// trigger/procedure definitions come from it).
pub fn parse_script_with_tokens(src: &str, tokens: Vec<Token>) -> Result<Vec<Stmt>> {
    let mut p = Parser {
        src,
        tokens,
        pos: 0,
    };
    let mut stmts = Vec::new();
    loop {
        p.skip_semis();
        if p.at_eof() {
            break;
        }
        stmts.push(p.parse_stmt()?);
    }
    Ok(stmts)
}

/// Parse a single expression (used by tests and the ECA condition evaluator).
pub fn parse_expr_str(src: &str) -> Result<Expr> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        src,
        tokens,
        pos: 0,
    };
    let e = p.parse_expr()?;
    if !p.at_eof() {
        return Err(Error::parse(format!(
            "trailing input after expression near '{}'",
            p.peek_text()
        )));
    }
    Ok(e)
}

struct Parser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn peek_text(&self) -> String {
        match self.peek() {
            TokenKind::Ident(s) => s.clone(),
            TokenKind::Str(s) => format!("'{s}'"),
            TokenKind::Int(i) => i.to_string(),
            TokenKind::Float(f) => f.to_string(),
            TokenKind::Eof => "<end of input>".into(),
            k => format!("{k:?}"),
        }
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn skip_semis(&mut self) {
        while matches!(self.peek(), TokenKind::Semi) {
            self.advance();
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected '{kw}', found '{}'",
                self.peek_text()
            )))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected {what}, found '{}'",
                self.peek_text()
            )))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(Error::parse(format!(
                "expected {what}, found '{}'",
                self.peek_text()
            ))),
        }
    }

    /// Parse a possibly dotted object name: `a`, `a.b`, `a.b.c`, ...
    fn parse_object_name(&mut self) -> Result<String> {
        let mut name = self.expect_ident("object name")?;
        while matches!(self.peek(), TokenKind::Dot) {
            // Only continue if the next token is an identifier.
            if let TokenKind::Ident(_) = self.peek_at(1) {
                self.advance(); // dot
                let part = self.expect_ident("name part")?;
                name.push('.');
                name.push_str(&part);
            } else {
                break;
            }
        }
        Ok(name)
    }

    // ---------------------------------------------------------- statements

    fn parse_stmt(&mut self) -> Result<Stmt> {
        let kw = match self.peek() {
            TokenKind::Ident(s) => s.to_ascii_lowercase(),
            _ => {
                return Err(Error::parse(format!(
                    "expected statement, found '{}'",
                    self.peek_text()
                )))
            }
        };
        match kw.as_str() {
            "select" => Ok(Stmt::Select(self.parse_select()?)),
            "insert" => self.parse_insert(),
            "update" => self.parse_update(),
            "delete" => self.parse_delete(),
            "create" => self.parse_create(),
            "drop" => self.parse_drop(),
            "alter" => self.parse_alter(),
            "print" => {
                self.advance();
                let e = self.parse_expr()?;
                Ok(Stmt::Print(e))
            }
            "execute" | "exec" => {
                self.advance();
                let name = self.parse_object_name()?;
                Ok(Stmt::Execute { name })
            }
            "truncate" => {
                self.advance();
                self.expect_kw("table")?;
                let table = self.parse_object_name()?;
                Ok(Stmt::Truncate { table })
            }
            "begin" => {
                self.advance();
                if self.eat_kw("tran") || self.eat_kw("transaction") {
                    Ok(Stmt::BeginTran)
                } else {
                    // BEGIN ... END block.
                    let mut body = Vec::new();
                    loop {
                        self.skip_semis();
                        if self.eat_kw("end") {
                            break;
                        }
                        if self.at_eof() {
                            return Err(Error::parse("unterminated BEGIN block"));
                        }
                        body.push(self.parse_stmt()?);
                    }
                    Ok(Stmt::Block(body))
                }
            }
            "commit" => {
                self.advance();
                let _ = self.eat_kw("tran") || self.eat_kw("transaction");
                Ok(Stmt::Commit)
            }
            "rollback" => {
                self.advance();
                let _ = self.eat_kw("tran") || self.eat_kw("transaction");
                Ok(Stmt::Rollback)
            }
            "if" => {
                self.advance();
                let cond = self.parse_expr()?;
                let then_branch = Box::new(self.parse_stmt()?);
                let else_branch = if self.eat_kw("else") {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            "while" => {
                self.advance();
                let cond = self.parse_expr()?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt::While { cond, body })
            }
            other => Err(Error::parse(format!("unknown statement '{other}'"))),
        }
    }

    fn parse_create(&mut self) -> Result<Stmt> {
        self.expect_kw("create")?;
        if self.eat_kw("table") {
            let name = self.parse_object_name()?;
            self.expect(&TokenKind::LParen, "'('")?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.parse_column_def()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "')'")?;
            Ok(Stmt::CreateTable { name, columns })
        } else if self.eat_kw("trigger") {
            let name = self.parse_object_name()?;
            self.expect_kw("on")?;
            let table = self.parse_object_name()?;
            self.expect_kw("for")?;
            let op_word = self.expect_ident("trigger operation")?;
            let operation = TriggerOp::parse(&op_word)
                .ok_or_else(|| Error::parse(format!("bad trigger operation '{op_word}'")))?;
            self.expect_kw("as")?;
            let (body, body_src) = self.parse_body_to_eof()?;
            Ok(Stmt::CreateTrigger {
                name,
                table,
                operation,
                body,
                body_src,
            })
        } else if self.eat_kw("procedure") || self.eat_kw("proc") {
            let name = self.parse_object_name()?;
            self.expect_kw("as")?;
            let (body, body_src) = self.parse_body_to_eof()?;
            Ok(Stmt::CreateProcedure {
                name,
                body,
                body_src,
            })
        } else if self.peek().is_kw("unique")
            || self.peek().is_kw("hash")
            || self.peek().is_kw("index")
        {
            let unique = self.eat_kw("unique");
            let hash = self.eat_kw("hash");
            self.expect_kw("index")?;
            let name = self.parse_object_name()?;
            self.expect_kw("on")?;
            let table = self.parse_object_name()?;
            self.expect(&TokenKind::LParen, "'('")?;
            let column = self.expect_ident("index column")?;
            self.expect(&TokenKind::RParen, "')'")?;
            Ok(Stmt::CreateIndex {
                name,
                table,
                column,
                unique,
                hash,
            })
        } else {
            Err(Error::parse(format!(
                "expected TABLE, TRIGGER, PROCEDURE or INDEX after CREATE, found '{}'",
                self.peek_text()
            )))
        }
    }

    /// Trigger / procedure bodies run to the end of the batch (Sybase rule).
    fn parse_body_to_eof(&mut self) -> Result<(Vec<Stmt>, String)> {
        let start = self.tokens[self.pos].pos;
        let mut body = Vec::new();
        loop {
            self.skip_semis();
            if self.at_eof() {
                break;
            }
            body.push(self.parse_stmt()?);
        }
        let src = self.src[start..].trim().to_string();
        Ok((body, src))
    }

    fn parse_drop(&mut self) -> Result<Stmt> {
        self.expect_kw("drop")?;
        if self.eat_kw("table") {
            Ok(Stmt::DropTable {
                name: self.parse_object_name()?,
            })
        } else if self.eat_kw("trigger") {
            Ok(Stmt::DropTrigger {
                name: self.parse_object_name()?,
            })
        } else if self.eat_kw("procedure") || self.eat_kw("proc") {
            Ok(Stmt::DropProcedure {
                name: self.parse_object_name()?,
            })
        } else if self.eat_kw("index") {
            Ok(Stmt::DropIndex {
                name: self.parse_object_name()?,
            })
        } else {
            Err(Error::parse(format!(
                "expected TABLE, TRIGGER, PROCEDURE or INDEX after DROP, found '{}'",
                self.peek_text()
            )))
        }
    }

    fn parse_alter(&mut self) -> Result<Stmt> {
        self.expect_kw("alter")?;
        self.expect_kw("table")?;
        let table = self.parse_object_name()?;
        self.expect_kw("add")?;
        let column = self.parse_column_def()?;
        Ok(Stmt::AlterTableAdd { table, column })
    }

    fn parse_column_def(&mut self) -> Result<ColumnDef> {
        let name = self.expect_ident("column name")?;
        let ty_word = self.expect_ident("column type")?;
        let data_type = match ty_word.to_ascii_lowercase().as_str() {
            "int" | "integer" | "bigint" | "smallint" | "tinyint" => DataType::Int,
            "float" | "real" | "double" | "numeric" | "decimal" | "money" => DataType::Float,
            "text" => DataType::Text,
            "datetime" => DataType::DateTime,
            "varchar" | "char" | "nvarchar" | "nchar" => {
                let n = if self.eat(&TokenKind::LParen) {
                    let n = match self.advance() {
                        TokenKind::Int(n) if n > 0 => n as usize,
                        _ => return Err(Error::parse("expected length in varchar(n)")),
                    };
                    self.expect(&TokenKind::RParen, "')'")?;
                    n
                } else {
                    // Sybase char defaults to length 1; we allow a generous
                    // default to keep generated DDL simple.
                    255
                };
                DataType::Varchar(n)
            }
            other => return Err(Error::parse(format!("unknown column type '{other}'"))),
        };
        let nullable = if self.eat_kw("not") {
            self.expect_kw("null")?;
            false
        } else {
            let _ = self.eat_kw("null");
            true
        };
        Ok(ColumnDef {
            name,
            data_type,
            nullable,
        })
    }

    fn parse_insert(&mut self) -> Result<Stmt> {
        self.expect_kw("insert")?;
        let _ = self.eat_kw("into");
        let table = self.parse_object_name()?;
        // Optional column list: disambiguate from VALUES by lookahead.
        let mut columns = None;
        if matches!(self.peek(), TokenKind::LParen) {
            // `insert t (a, b) values ...` — a paren directly after the table
            // name is always a column list in this dialect.
            self.advance();
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident("column name")?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "')'")?;
            columns = Some(cols);
        }
        let source = if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect(&TokenKind::LParen, "'('")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen, "')'")?;
                rows.push(row);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.peek().is_kw("select") {
            InsertSource::Select(Box::new(self.parse_select()?))
        } else {
            return Err(Error::parse(format!(
                "expected VALUES or SELECT in INSERT, found '{}'",
                self.peek_text()
            )));
        };
        Ok(Stmt::Insert {
            table,
            columns,
            source,
        })
    }

    fn parse_update(&mut self) -> Result<Stmt> {
        self.expect_kw("update")?;
        let table = self.parse_object_name()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident("column name")?;
            self.expect(&TokenKind::Eq, "'='")?;
            let e = self.parse_expr()?;
            assignments.push((col, e));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let selection = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            assignments,
            selection,
        })
    }

    fn parse_delete(&mut self) -> Result<Stmt> {
        self.expect_kw("delete")?;
        let _ = self.eat_kw("from");
        let table = self.parse_object_name()?;
        let selection = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete { table, selection })
    }

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut projection = Vec::new();
        loop {
            projection.push(self.parse_select_item()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let into = if self.eat_kw("into") {
            Some(self.parse_object_name()?)
        } else {
            None
        };
        let mut from = Vec::new();
        // `[INNER] JOIN ... ON ...` desugars to a comma join whose ON
        // predicates are conjoined into the WHERE clause.
        let mut join_conditions: Vec<Expr> = Vec::new();
        if self.eat_kw("from") {
            let name = self.parse_object_name()?;
            let alias = self.maybe_alias();
            from.push(TableRef { name, alias });
            loop {
                if self.eat(&TokenKind::Comma) {
                    let name = self.parse_object_name()?;
                    let alias = self.maybe_alias();
                    from.push(TableRef { name, alias });
                    continue;
                }
                if self.peek().is_kw("inner") || self.peek().is_kw("join") {
                    let _ = self.eat_kw("inner");
                    self.expect_kw("join")?;
                    let name = self.parse_object_name()?;
                    let alias = self.maybe_alias();
                    from.push(TableRef { name, alias });
                    self.expect_kw("on")?;
                    join_conditions.push(self.parse_expr()?);
                    continue;
                }
                break;
            }
        }
        let mut selection = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        for cond in join_conditions {
            selection = Some(match selection {
                Some(existing) => Expr::Binary {
                    op: BinaryOp::And,
                    left: Box::new(cond),
                    right: Box::new(existing),
                },
                None => cond,
            });
        }
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    let _ = self.eat_kw("asc");
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(SelectStmt {
            distinct,
            projection,
            into,
            from,
            selection,
            group_by,
            having,
            order_by,
        })
    }

    fn maybe_alias(&mut self) -> Option<String> {
        if self.eat_kw("as") {
            return self.expect_ident("alias").ok();
        }
        if let TokenKind::Ident(s) = self.peek() {
            if !is_reserved(s) {
                let alias = s.clone();
                self.advance();
                return Some(alias);
            }
        }
        None
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Qualified wildcard `t.*` (qualifier may be dotted).
        if let TokenKind::Ident(_) = self.peek() {
            let save = self.pos;
            let name = self.parse_object_name()?;
            if matches!(self.peek(), TokenKind::Dot) && matches!(self.peek_at(1), TokenKind::Star) {
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
            self.pos = save;
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident("alias")?)
        } else if let TokenKind::Ident(s) = self.peek() {
            if !is_reserved(s) {
                let a = s.clone();
                self.advance();
                Some(a)
            } else {
                None
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // --------------------------------------------------------- expressions

    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.peek().is_kw("or") {
            self.advance();
            let right = self.parse_and()?;
            left = Expr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.peek().is_kw("and") {
            self.advance();
            let right = self.parse_not()?;
            left = Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.peek().is_kw("not") {
            self.advance();
            let operand = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.peek().is_kw("is") {
            self.advance();
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                operand: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = if self.peek().is_kw("not")
            && (self.peek_at(1).is_kw("in")
                || self.peek_at(1).is_kw("between")
                || self.peek_at(1).is_kw("like"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.peek().is_kw("in") {
            self.advance();
            self.expect(&TokenKind::LParen, "'('")?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(Expr::InList {
                operand: Box::new(left),
                list,
                negated,
            });
        }
        if self.peek().is_kw("between") {
            self.advance();
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                operand: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.peek().is_kw("like") {
            self.advance();
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                operand: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        let op = match self.peek() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::Neq => BinaryOp::Neq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::Le => BinaryOp::Le,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::Ge => BinaryOp::Ge,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_additive()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let operand = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(f) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::Param(i) => {
                self.advance();
                Ok(Expr::Param(i))
            }
            TokenKind::LParen => {
                self.advance();
                if self.peek().is_kw("select") {
                    let sub = self.parse_select()?;
                    self.expect(&TokenKind::RParen, "')'")?;
                    return Ok(Expr::Subquery(Box::new(sub)));
                }
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Ident(word) => {
                if word.eq_ignore_ascii_case("null") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Null));
                }
                if word.eq_ignore_ascii_case("exists") {
                    self.advance();
                    self.expect(&TokenKind::LParen, "'('")?;
                    let sub = self.parse_select()?;
                    self.expect(&TokenKind::RParen, "')'")?;
                    return Ok(Expr::Exists(Box::new(sub)));
                }
                // Reserved words cannot start an operand; this catches
                // malformed statements like `select from t` early.
                if is_reserved(&word) {
                    return Err(Error::parse(format!(
                        "expected expression, found reserved word '{word}'"
                    )));
                }
                // Function call?
                if matches!(self.peek_at(1), TokenKind::LParen) {
                    self.advance();
                    self.advance();
                    let mut args = Vec::new();
                    let mut star = false;
                    // `count(distinct col)` — the keyword is reserved, so it
                    // can never be an expression head here.
                    let distinct = self.eat_kw("distinct");
                    if self.eat(&TokenKind::Star) {
                        star = true;
                    } else if !matches!(self.peek(), TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "')'")?;
                    // T-SQL datepart keywords are bare identifiers:
                    // `datediff(day, a, b)`. Rewrite the first argument
                    // into a string literal at parse time so both
                    // execution paths (and the masked-literal plan
                    // cache) see a plain constant.
                    if (word.eq_ignore_ascii_case("datediff")
                        || word.eq_ignore_ascii_case("dateadd")
                        || word.eq_ignore_ascii_case("datepart")
                        || word.eq_ignore_ascii_case("datename"))
                        && !args.is_empty()
                    {
                        if let Expr::Column {
                            qualifier: None,
                            name,
                        } = &args[0]
                        {
                            if crate::eval::datepart_from_name(name).is_some() {
                                args[0] = Expr::Literal(Value::Str(name.to_ascii_lowercase()));
                            }
                        }
                    }
                    return Ok(Expr::Function {
                        name: word,
                        args,
                        star,
                        distinct,
                    });
                }
                // Column reference, possibly with a dotted qualifier.
                let chain = self.parse_object_name()?;
                match chain.rsplit_once('.') {
                    Some((qual, col)) => Ok(Expr::Column {
                        qualifier: Some(qual.to_string()),
                        name: col.to_string(),
                    }),
                    None => Ok(Expr::Column {
                        qualifier: None,
                        name: chain,
                    }),
                }
            }
            other => Err(Error::parse(format!(
                "expected expression, found '{other:?}'"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Stmt {
        let stmts = parse_script(src).unwrap();
        assert_eq!(stmts.len(), 1, "expected one statement in {src:?}");
        stmts.into_iter().next().unwrap()
    }

    #[test]
    fn create_table() {
        let s =
            one("create table stock (symbol varchar(10) not null, price float, ts datetime null)");
        match s {
            Stmt::CreateTable { name, columns } => {
                assert_eq!(name, "stock");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0].data_type, DataType::Varchar(10));
                assert!(!columns[0].nullable);
                assert!(columns[1].nullable);
                assert_eq!(columns[2].data_type, DataType::DateTime);
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn dotted_table_names() {
        let s = one("create table sentineldb.sharma.stock_inserted (a int)");
        match s {
            Stmt::CreateTable { name, .. } => {
                assert_eq!(name, "sentineldb.sharma.stock_inserted")
            }
            _ => panic!(),
        }
    }

    #[test]
    fn insert_values_multi_row() {
        let s = one("insert into t (a, b) values (1, 'x'), (2, 'y')");
        match s {
            Stmt::Insert {
                table,
                columns,
                source: InsertSource::Values(rows),
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns, Some(vec!["a".to_string(), "b".to_string()]));
                assert_eq!(rows.len(), 2);
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn insert_select_no_into_keyword() {
        // Fig 11: `insert sentineldb.sharma.stock_inserted select * from inserted,Version`
        let s = one("insert sentineldb.sharma.stock_inserted select * from inserted, Version");
        match s {
            Stmt::Insert {
                table,
                source: InsertSource::Select(sel),
                ..
            } => {
                assert_eq!(table, "sentineldb.sharma.stock_inserted");
                assert_eq!(sel.from.len(), 2);
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn select_into_where_1_eq_2() {
        let s = one("select * into shadow from stock where 1=2");
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.into.as_deref(), Some("shadow"));
                assert!(sel.selection.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn multiple_statements_without_separators() {
        // Fig 11 runs statements together with no semicolons.
        let stmts = parse_script(
            "update SysPrimitiveEvent set vNo=vNo+1 where eventName = 'e1'\n\
             delete Version insert Version select vNo from SysPrimitiveEvent where eventName = 'e1'",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], Stmt::Update { .. }));
        assert!(matches!(stmts[1], Stmt::Delete { .. }));
        assert!(matches!(stmts[2], Stmt::Insert { .. }));
    }

    #[test]
    fn trigger_body_extends_to_end_of_batch() {
        let s = one("create trigger t_addstk on stock for insert as\n\
             insert shadow select * from inserted\n\
             print 'fired'");
        match s {
            Stmt::CreateTrigger {
                name,
                table,
                operation,
                body,
                body_src,
            } => {
                assert_eq!(name, "t_addstk");
                assert_eq!(table, "stock");
                assert_eq!(operation, TriggerOp::Insert);
                assert_eq!(body.len(), 2);
                assert!(body_src.contains("print"));
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn procedure_parse() {
        let s = one("create procedure p1 as select * from t");
        match s {
            Stmt::CreateProcedure { name, body, .. } => {
                assert_eq!(name, "p1");
                assert_eq!(body.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn execute_forms() {
        assert!(matches!(one("execute p1"), Stmt::Execute { .. }));
        assert!(matches!(one("exec db.u.p1"), Stmt::Execute { .. }));
    }

    #[test]
    fn update_with_qualified_where() {
        let s = one("update t set a = a + 1, b = 'x' where t.a > 3 and b <> 'y'");
        match s {
            Stmt::Update {
                assignments,
                selection,
                ..
            } => {
                assert_eq!(assignments.len(), 2);
                assert!(selection.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn delete_without_from() {
        let s = one("delete Version");
        assert!(
            matches!(s, Stmt::Delete { ref table, .. } if table == "version" || table == "Version")
        );
    }

    #[test]
    fn qualified_column_with_dotted_table() {
        // Fig 14 joins on `sentineldb.sharma.stock_inserted.vNo = sysContext.vNo`
        let e = parse_expr_str("sentineldb.sharma.stock_inserted.vNo = sysContext.vNo").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Eq,
                left,
                right,
            } => {
                match *left {
                    Expr::Column { qualifier, name } => {
                        assert_eq!(
                            qualifier.as_deref(),
                            Some("sentineldb.sharma.stock_inserted")
                        );
                        assert_eq!(name, "vNo");
                    }
                    _ => panic!(),
                }
                match *right {
                    Expr::Column { qualifier, name } => {
                        assert_eq!(qualifier.as_deref(), Some("sysContext"));
                        assert_eq!(name, "vNo");
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn operator_precedence() {
        let e = parse_expr_str("1 + 2 * 3 = 7 and not 0 > 1").unwrap();
        // Just check the top is AND.
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn in_between_like_isnull() {
        assert!(matches!(
            parse_expr_str("a in (1, 2, 3)").unwrap(),
            Expr::InList { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr_str("a not in (1)").unwrap(),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr_str("a between 1 and 10").unwrap(),
            Expr::Between { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr_str("a like 'x%'").unwrap(),
            Expr::Like { .. }
        ));
        assert!(matches!(
            parse_expr_str("a is not null").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn function_calls() {
        let e = parse_expr_str("syb_sendmsg('128.227.205.215', 10006, 'msg')").unwrap();
        match e {
            Expr::Function {
                name, args, star, ..
            } => {
                assert_eq!(name, "syb_sendmsg");
                assert_eq!(args.len(), 3);
                assert!(!star);
            }
            _ => panic!(),
        }
        assert!(matches!(
            parse_expr_str("count(*)").unwrap(),
            Expr::Function { star: true, .. }
        ));
        assert!(matches!(
            parse_expr_str("getdate()").unwrap(),
            Expr::Function { .. }
        ));
        match parse_expr_str("count(distinct sym)").unwrap() {
            Expr::Function {
                name,
                args,
                star,
                distinct,
            } => {
                assert_eq!(name, "count");
                assert_eq!(args.len(), 1);
                assert!(!star);
                assert!(distinct);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn group_by_having_order_by() {
        let s = one(
            "select symbol, count(*) n from trades group by symbol having count(*) > 2 order by n desc, symbol",
        );
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.group_by.len(), 1);
                assert!(sel.having.is_some());
                assert_eq!(sel.order_by.len(), 2);
                assert!(sel.order_by[0].desc);
                assert!(!sel.order_by[1].desc);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn join_on_desugars_to_comma_join_plus_where() {
        let a = parse_script("select * from a join b on a.x = b.x where a.y > 1").unwrap();
        let b = parse_script("select * from a, b where a.x = b.x and a.y > 1").unwrap();
        assert_eq!(a, b);
        // INNER keyword accepted; multiple joins chain.
        let c =
            parse_script("select * from a inner join b on a.x = b.x join c on b.z = c.z").unwrap();
        match &c[0] {
            Stmt::Select(sel) => {
                assert_eq!(sel.from.len(), 3);
                assert!(sel.selection.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn join_requires_on() {
        assert!(parse_script("select * from a join b").is_err());
    }

    #[test]
    fn table_alias_does_not_swallow_keywords() {
        let stmts = parse_script("select * from inserted, Version select getdate()").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn if_else_and_blocks() {
        let s = one("if a > 1 begin print 'big' delete t end else print 'small'");
        match s {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                assert!(matches!(*then_branch, Stmt::Block(ref b) if b.len() == 2));
                assert!(else_branch.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn while_loop() {
        let s = one("while (select count(*) from t) < 5 insert t values (1)");
        assert!(matches!(s, Stmt::While { .. }));
    }

    #[test]
    fn transactions() {
        let stmts = parse_script("begin tran insert t values (1) commit").unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], Stmt::BeginTran));
        assert!(matches!(stmts[2], Stmt::Commit));
    }

    #[test]
    fn exists_subquery() {
        let e = parse_expr_str("exists (select * from t where a = 1)").unwrap();
        assert!(matches!(e, Expr::Exists(_)));
    }

    #[test]
    fn scalar_subquery_in_comparison() {
        let e = parse_expr_str("(select count(*) from t) > 5").unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::Gt,
                ..
            }
        ));
    }

    #[test]
    fn double_quoted_strings_are_literals() {
        // Fig 11 uses double quotes for string literals.
        let s = one(
            r#"update SysPrimitiveEvent set vNo=vNo+1 where eventName ="sentineldb.sharma.addStk""#,
        );
        assert!(matches!(s, Stmt::Update { .. }));
    }

    #[test]
    fn qualified_wildcard() {
        let s = one("select t.* from t");
        match s {
            Stmt::Select(sel) => {
                assert!(
                    matches!(sel.projection[0], SelectItem::QualifiedWildcard(ref q) if q == "t")
                )
            }
            _ => panic!(),
        }
    }

    #[test]
    fn truncate_table() {
        assert!(matches!(one("truncate table t"), Stmt::Truncate { .. }));
    }

    #[test]
    fn drop_statements() {
        assert!(matches!(one("drop table t"), Stmt::DropTable { .. }));
        assert!(matches!(one("drop trigger tr"), Stmt::DropTrigger { .. }));
        assert!(matches!(
            one("drop procedure p"),
            Stmt::DropProcedure { .. }
        ));
    }

    #[test]
    fn parse_error_messages() {
        assert!(parse_script("create frobnicate x").is_err());
        assert!(parse_script("insert t frobnicate").is_err());
        assert!(parse_script("select from").is_err());
        assert!(parse_expr_str("1 +").is_err());
        assert!(parse_expr_str("1 2").is_err());
    }

    #[test]
    fn select_expr_alias() {
        let s = one("select price * 2 as double_price from stock");
        match s {
            Stmt::Select(sel) => match &sel.projection[0] {
                SelectItem::Expr { alias, .. } => {
                    assert_eq!(alias.as_deref(), Some("double_price"))
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn negative_numbers_and_unary() {
        let e = parse_expr_str("-3 + +2").unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::Add,
                ..
            }
        ));
    }
}
