//! Secondary indexes: hash (equality) and ordered/BTree (equality + range).
//!
//! An index maps a **key** — a normalized, totally-ordered image of a column
//! value — to the positions of the rows holding that value. Indexes are used
//! only to *pre-narrow* the candidate rows of a statement; the full WHERE
//! predicate is always re-evaluated against every candidate, so an index
//! probe only has to produce a **superset** of the matching rows and never
//! affects visible semantics.
//!
//! ## Key normalization
//!
//! [`IndexKey`] collapses the cross-type equalities of
//! [`Value::sql_cmp`](crate::value::Value::sql_cmp) so that any two values
//! that compare `Equal` map to the same key:
//!
//! - `Int(i)`, `DateTime(i)` and whole `Float`s (`5`, `dt:5`, `5.0`) all map
//!   to `IndexKey::Int`.
//! - fractional/non-finite floats map to `IndexKey::Frac` via a monotone
//!   bit transform, so `BTreeMap` range scans see the numeric order.
//! - strings map to `IndexKey::Str` (byte order, same as `sql_cmp`).
//! - `NULL` and `NaN` map to **no key at all**: `sql_cmp` returns `None` for
//!   them, so no sargable conjunct can ever be satisfied by such a row, and
//!   leaving them out keeps unique indexes Sybase-style NULL-tolerant.
//!
//! Whole floats outside the exact `i64` range saturate to `i64::MIN/MAX`;
//! that can only *merge* distinct keys (more candidates, filtered later),
//! never separate equal ones — see `key_of` for the argument. Range probes
//! treat such bounds as unbounded to stay on the superset side.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;

use crate::error::{Error, ObjectKind, Result};
use crate::table::{Row, Schema};
use crate::value::Value;

/// Monotone map from `f64` to `u64`: preserves `<` for all non-NaN floats.
fn frac_bits(f: f64) -> u64 {
    let b = f.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

fn frac_val(bits: u64) -> f64 {
    if bits >> 63 == 1 {
        f64::from_bits(bits & !(1 << 63))
    } else {
        f64::from_bits(!bits)
    }
}

/// Normalized index key. Ordering is consistent with `Value::sql_cmp` on
/// every comparable pair; incomparable pairs (numeric vs string) get an
/// arbitrary but fixed order (numerics first) so they can share a BTree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexKey {
    Int(i64),
    /// Monotone bits of a float that is not exactly representable as `i64`
    /// (fractional or ±inf) — never `Equal` to any `Int` key.
    Frac(u64),
    Str(String),
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use IndexKey::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Frac(a), Frac(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // A Frac value is never an exact integer, and any non-integral
            // float has |f| < 2^53, where f64 comparison with a casted i64
            // is exact — so this is a total order and never returns Equal.
            (Int(a), Frac(b)) => (*a as f64).partial_cmp(&frac_val(*b)).unwrap_or_else(|| {
                unreachable!("Frac keys are never NaN");
            }),
            (Frac(a), Int(b)) => frac_val(*a).partial_cmp(&(*b as f64)).unwrap_or_else(|| {
                unreachable!("Frac keys are never NaN");
            }),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }
}

/// Map a value to its index key; `None` for values no sargable conjunct can
/// match (`NULL`, `NaN`). A probe literal that maps to `None` makes the
/// conjunct unusable for index routing (it stays in the residual WHERE).
pub fn key_of(v: &Value) -> Option<IndexKey> {
    match v {
        Value::Null => None,
        Value::Int(i) | Value::DateTime(i) => Some(IndexKey::Int(*i)),
        Value::Float(f) if f.is_nan() => None,
        Value::Float(f) if f.fract() == 0.0 && f.is_finite() => {
            // Saturating cast: whole floats beyond i64 merge into the edge
            // keys. Equal values still collide (superset preserved) because
            // sql_cmp can only call `f == g` Equal when f and g are the
            // same float, which maps to the same saturated key.
            Some(IndexKey::Int(*f as i64))
        }
        Value::Float(f) => Some(IndexKey::Frac(frac_bits(*f))),
        Value::Str(s) => Some(IndexKey::Str(s.clone())),
    }
}

/// True when a whole float saturates in `key_of` — range probes must widen
/// such a bound to "unbounded" to keep the candidate set a superset.
fn saturates(v: &Value) -> bool {
    match v {
        Value::Float(f) => {
            f.fract() == 0.0 && f.is_finite() && (*f < i64::MIN as f64 || *f > i64::MAX as f64)
        }
        _ => false,
    }
}

/// Index flavor: hash serves equality only; ordered also serves ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Hash,
    Ordered,
}

/// Catalog definition of one single-column index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDef {
    pub name: String,
    pub column: String,
    pub unique: bool,
    pub kind: IndexKind,
}

#[derive(Debug, Clone)]
enum IndexMap {
    Hash(HashMap<IndexKey, Vec<usize>>),
    Ordered(BTreeMap<IndexKey, Vec<usize>>),
}

impl IndexMap {
    fn new(kind: IndexKind) -> Self {
        match kind {
            IndexKind::Hash => IndexMap::Hash(HashMap::new()),
            IndexKind::Ordered => IndexMap::Ordered(BTreeMap::new()),
        }
    }

    fn get(&self, key: &IndexKey) -> Option<&Vec<usize>> {
        match self {
            IndexMap::Hash(m) => m.get(key),
            IndexMap::Ordered(m) => m.get(key),
        }
    }

    fn entry_push(&mut self, key: IndexKey, pos: usize) {
        match self {
            IndexMap::Hash(m) => m.entry(key).or_default().push(pos),
            IndexMap::Ordered(m) => m.entry(key).or_default().push(pos),
        }
    }

    fn remove_pos(&mut self, key: &IndexKey, pos: usize) {
        let bucket = match self {
            IndexMap::Hash(m) => m.get_mut(key),
            IndexMap::Ordered(m) => m.get_mut(key),
        };
        if let Some(b) = bucket {
            b.retain(|p| *p != pos);
            if b.is_empty() {
                match self {
                    IndexMap::Hash(m) => {
                        m.remove(key);
                    }
                    IndexMap::Ordered(m) => {
                        m.remove(key);
                    }
                }
            }
        }
    }
}

/// One built index: definition + resolved column position + key map.
#[derive(Debug, Clone)]
pub struct Index {
    pub def: IndexDef,
    pub col: usize,
    map: IndexMap,
}

impl Index {
    fn key_at(&self, row: &Row) -> Option<IndexKey> {
        row.get(self.col).and_then(key_of)
    }

    /// Row positions whose key equals `key` (empty slice if none).
    pub fn probe_eq(&self, key: &IndexKey) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row positions within `[lo, hi]` key bounds. Requires an ordered map;
    /// hash indexes return `None` (caller falls back to scan).
    pub fn probe_range(
        &self,
        lo: Bound<&IndexKey>,
        hi: Bound<&IndexKey>,
        out: &mut Vec<usize>,
    ) -> bool {
        let m = match &self.map {
            IndexMap::Ordered(m) => m,
            IndexMap::Hash(_) => return false,
        };
        // An inverted range (lo > hi) panics in BTreeMap::range; it also
        // matches nothing, so detect it and return an empty candidate set.
        let lo_k = match lo {
            Bound::Included(k) | Bound::Excluded(k) => Some(k),
            Bound::Unbounded => None,
        };
        let hi_k = match hi {
            Bound::Included(k) | Bound::Excluded(k) => Some(k),
            Bound::Unbounded => None,
        };
        if let (Some(l), Some(h)) = (lo_k, hi_k) {
            if l > h
                || (l == h
                    && (matches!(lo, Bound::Excluded(_)) || matches!(hi, Bound::Excluded(_))))
            {
                return true;
            }
        }
        for (_, bucket) in m.range((lo, hi)) {
            out.extend_from_slice(bucket);
        }
        true
    }

    fn build(&mut self, rows: &[Row]) -> Result<()> {
        self.map = IndexMap::new(self.def.kind);
        for (pos, row) in rows.iter().enumerate() {
            if let Some(key) = self.key_at(row) {
                if self.def.unique && self.map.get(&key).is_some() {
                    return Err(self.violation(&key));
                }
                self.map.entry_push(key, pos);
            }
        }
        Ok(())
    }

    fn violation(&self, key: &IndexKey) -> Error {
        let shown = match key {
            IndexKey::Int(i) => i.to_string(),
            IndexKey::Frac(b) => frac_val(*b).to_string(),
            IndexKey::Str(s) => format!("'{s}'"),
        };
        Error::Constraint {
            msg: format!(
                "unique index '{}' on column '{}' violated by duplicate key {}",
                self.def.name, self.def.column, shown
            ),
        }
    }
}

/// All indexes of one table. Cloning is cheap relative to rebuilds but still
/// O(rows); tables share built sets via `Arc<IndexSet>` and copy-on-write.
#[derive(Debug, Clone, Default)]
pub struct IndexSet {
    indexes: Vec<Index>,
}

impl IndexSet {
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    pub fn defs(&self) -> impl Iterator<Item = &IndexDef> {
        self.indexes.iter().map(|ix| &ix.def)
    }

    pub fn by_name(&self, name: &str) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.def.name.eq_ignore_ascii_case(name))
    }

    /// Best index for an access: any index serves equality, only ordered
    /// indexes serve ranges. Unique indexes win ties (smallest buckets).
    pub fn best_for(&self, col: usize, range: bool) -> Option<&Index> {
        self.indexes
            .iter()
            .filter(|ix| ix.col == col && (!range || ix.def.kind == IndexKind::Ordered))
            .max_by_key(|ix| ix.def.unique as u8)
    }

    /// Create and build a new index over the current rows. Fails on a
    /// duplicate index name, unknown column, or (for unique) existing dupes.
    pub fn create(&mut self, def: IndexDef, schema: &Schema, rows: &[Row]) -> Result<()> {
        if self.by_name(&def.name).is_some() {
            return Err(Error::AlreadyExists {
                kind: ObjectKind::Index,
                name: def.name,
            });
        }
        let col = schema
            .index_of(&def.column)
            .ok_or_else(|| Error::NotFound {
                kind: ObjectKind::Column,
                name: def.column.clone(),
            })?;
        let mut ix = Index {
            map: IndexMap::new(def.kind),
            def,
            col,
        };
        ix.build(rows)?;
        self.indexes.push(ix);
        Ok(())
    }

    /// Drop an index by name; `false` if it does not exist.
    pub fn drop(&mut self, name: &str) -> bool {
        let before = self.indexes.len();
        self.indexes
            .retain(|ix| !ix.def.name.eq_ignore_ascii_case(name));
        self.indexes.len() != before
    }

    /// Rebuild every index from scratch (post-DDL / foreign-mutation path).
    /// Unique violations cannot occur here: the rows were admitted by the
    /// incremental checks, so `build` errors are impossible and ignored in
    /// favor of keeping a usable (if partial) map.
    pub fn rebuild(&mut self, rows: &[Row]) {
        for ix in &mut self.indexes {
            let _ = ix.build(rows);
        }
    }

    /// Check that appending `new_rows` after `base` violates no unique
    /// index. Must be called before `append` (statement atomicity).
    pub fn check_append(&self, new_rows: &[Row]) -> Result<()> {
        for ix in &self.indexes {
            if !ix.def.unique {
                continue;
            }
            let mut batch: HashMap<IndexKey, ()> = HashMap::new();
            for row in new_rows {
                if let Some(key) = ix.key_at(row) {
                    if ix.map.get(&key).is_some() || batch.insert(key.clone(), ()).is_some() {
                        return Err(ix.violation(&key));
                    }
                }
            }
        }
        Ok(())
    }

    /// Incrementally register `new_rows` appended at position `base`.
    pub fn append(&mut self, base: usize, new_rows: &[Row]) {
        for ix in &mut self.indexes {
            for (off, row) in new_rows.iter().enumerate() {
                if let Some(key) = ix.key_at(row) {
                    ix.map.entry_push(key, base + off);
                }
            }
        }
    }

    /// Check that replacing the rows at `updates` positions violates no
    /// unique index. `rows` is the pre-update storage.
    pub fn check_updates(&self, rows: &[Row], updates: &[(usize, Row)]) -> Result<()> {
        for ix in &self.indexes {
            if !ix.def.unique {
                continue;
            }
            let touched: HashMap<usize, ()> = updates.iter().map(|(p, _)| (*p, ())).collect();
            let mut batch: HashMap<IndexKey, ()> = HashMap::new();
            for (_, new_row) in updates {
                if let Some(key) = ix.key_at(new_row) {
                    let clashes_existing =
                        ix.probe_eq(&key).iter().any(|p| !touched.contains_key(p));
                    if clashes_existing || batch.insert(key.clone(), ()).is_some() {
                        return Err(ix.violation(&key));
                    }
                }
            }
        }
        let _ = rows;
        Ok(())
    }

    /// Incrementally re-key updated positions. `old_rows[i]` is the prior
    /// content of position `updates[i].0`.
    pub fn apply_updates(&mut self, old_rows: &[Row], updates: &[(usize, Row)]) {
        for ix in &mut self.indexes {
            for (old, (pos, new_row)) in old_rows.iter().zip(updates) {
                let old_key = ix.key_at(old);
                let new_key = ix.key_at(new_row);
                if old_key == new_key {
                    continue;
                }
                if let Some(k) = old_key {
                    ix.map.remove_pos(&k, *pos);
                }
                if let Some(k) = new_key {
                    ix.map.entry_push(k, *pos);
                }
            }
        }
    }

    /// Forget everything (TRUNCATE): definitions survive, maps empty.
    pub fn clear(&mut self) {
        for ix in &mut self.indexes {
            ix.map = IndexMap::new(ix.def.kind);
        }
    }
}

/// Shared index state of a table: the built set plus a dirty flag. The flag
/// lives *outside* the `Arc` so foreign mutators (`rows_mut`) can mark the
/// set stale without cloning it; the next probe rebuilds lazily.
#[derive(Debug, Clone, Default)]
pub struct IndexState {
    pub set: Arc<IndexSet>,
    pub dirty: bool,
}

/// Range-bound normalization for the planner: `None` means "the bound must
/// be treated as unbounded on this side" (saturating whole float).
pub fn range_key_of(v: &Value) -> Option<Option<IndexKey>> {
    if saturates(v) {
        return Some(None);
    }
    key_of(v).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column {
                name: "id".into(),
                data_type: DataType::Int,
                nullable: true,
            },
            Column {
                name: "x".into(),
                data_type: DataType::Float,
                nullable: true,
            },
        ])
    }

    fn def(name: &str, column: &str, unique: bool, kind: IndexKind) -> IndexDef {
        IndexDef {
            name: name.into(),
            column: column.into(),
            unique,
            kind,
        }
    }

    #[test]
    fn key_normalization_collapses_sql_equal_values() {
        assert_eq!(key_of(&Value::Int(5)), key_of(&Value::Float(5.0)));
        assert_eq!(key_of(&Value::Int(5)), key_of(&Value::DateTime(5)));
        assert_ne!(key_of(&Value::Int(5)), key_of(&Value::Float(5.5)));
        assert_eq!(key_of(&Value::Null), None);
        assert_eq!(key_of(&Value::Float(f64::NAN)), None);
        assert!(key_of(&Value::Float(f64::INFINITY)).is_some());
    }

    #[test]
    fn key_order_matches_sql_cmp() {
        let vals = [
            Value::Float(f64::NEG_INFINITY),
            Value::Float(-2.5),
            Value::Int(-1),
            Value::Float(0.0),
            Value::Int(0),
            Value::Float(0.5),
            Value::Int(3),
            Value::Float(3.25),
            Value::Float(f64::INFINITY),
            Value::Str("".into()),
            Value::Str("abc".into()),
        ];
        for a in &vals {
            for b in &vals {
                let (ka, kb) = (key_of(a).unwrap(), key_of(b).unwrap());
                if let Some(ord) = a.sql_cmp(b) {
                    assert_eq!(ka.cmp(&kb), ord, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn frac_bits_is_monotone() {
        let xs = [f64::NEG_INFINITY, -1.5, -0.25, 0.25, 1.5, f64::INFINITY];
        for w in xs.windows(2) {
            assert!(frac_bits(w[0]) < frac_bits(w[1]));
            assert_eq!(frac_val(frac_bits(w[0])), w[0]);
        }
    }

    #[test]
    fn hash_index_probes_equality() {
        let mut set = IndexSet::default();
        let rows = vec![
            vec![Value::Int(1), Value::Float(1.0)],
            vec![Value::Int(2), Value::Float(2.0)],
            vec![Value::Int(1), Value::Float(3.0)],
            vec![Value::Null, Value::Float(4.0)],
        ];
        set.create(def("i1", "id", false, IndexKind::Hash), &schema(), &rows)
            .unwrap();
        let ix = set.best_for(0, false).unwrap();
        assert_eq!(ix.probe_eq(&IndexKey::Int(1)), &[0, 2]);
        assert_eq!(ix.probe_eq(&IndexKey::Int(9)), &[] as &[usize]);
        assert!(set.best_for(0, true).is_none(), "hash cannot serve ranges");
    }

    #[test]
    fn ordered_index_probes_ranges_across_types() {
        let mut set = IndexSet::default();
        let rows = vec![
            vec![Value::Int(10), Value::Null],
            vec![Value::Float(2.5), Value::Null],
            vec![Value::Int(5), Value::Null],
            vec![Value::Str("zzz".into()), Value::Null],
            vec![Value::Null, Value::Null],
        ];
        set.create(def("i1", "id", false, IndexKind::Ordered), &schema(), &rows)
            .unwrap();
        let ix = set.best_for(0, true).unwrap();
        let mut out = Vec::new();
        assert!(ix.probe_range(
            Bound::Included(&IndexKey::Int(3)),
            Bound::Excluded(&IndexKey::Int(10)),
            &mut out,
        ));
        out.sort_unstable();
        assert_eq!(out, vec![2], "5 in [3,10); 2.5, 10, 'zzz', NULL out");
        out.clear();
        assert!(ix.probe_range(
            Bound::Included(&IndexKey::Int(10)),
            Bound::Included(&IndexKey::Int(3)),
            &mut out,
        ));
        assert!(out.is_empty(), "inverted range matches nothing");
    }

    #[test]
    fn unique_index_rejects_dupes_everywhere() {
        let mut set = IndexSet::default();
        let rows = vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(1), Value::Null],
        ];
        assert!(set
            .create(def("u", "id", true, IndexKind::Hash), &schema(), &rows)
            .is_err());
        let rows = vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Null, Value::Null],
        ];
        set.create(def("u", "id", true, IndexKind::Hash), &schema(), &rows)
            .unwrap();
        // NULLs never conflict; Int(1) does, including against Float(1.0).
        assert!(set.check_append(&[vec![Value::Null, Value::Null]]).is_ok());
        assert!(set
            .check_append(&[vec![Value::Float(1.0), Value::Null]])
            .is_err());
        assert!(set
            .check_append(&[
                vec![Value::Int(7), Value::Null],
                vec![Value::Int(7), Value::Null]
            ])
            .is_err());
        // Updates may swap keys among themselves.
        let updates = vec![(0usize, vec![Value::Int(2), Value::Null])];
        assert!(set.check_updates(&rows, &updates).is_ok());
        let clash = vec![(1usize, vec![Value::Int(1), Value::Null])];
        assert!(set.check_updates(&rows, &clash).is_err());
    }

    #[test]
    fn incremental_maintenance_matches_rebuild() {
        let mut set = IndexSet::default();
        let mut rows = vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Null],
        ];
        set.create(def("i", "id", false, IndexKind::Ordered), &schema(), &rows)
            .unwrap();
        // Append.
        let fresh = vec![vec![Value::Int(2), Value::Null]];
        set.check_append(&fresh).unwrap();
        set.append(rows.len(), &fresh);
        rows.extend(fresh);
        // Update position 0: 1 -> 2.
        let updates = vec![(0usize, vec![Value::Int(2), Value::Null])];
        let old = vec![rows[0].clone()];
        set.check_updates(&rows, &updates).unwrap();
        set.apply_updates(&old, &updates);
        rows[0] = vec![Value::Int(2), Value::Null];
        let ix = set.best_for(0, false).unwrap();
        let mut got = ix.probe_eq(&IndexKey::Int(2)).to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(ix.probe_eq(&IndexKey::Int(1)), &[] as &[usize]);
        // A rebuild from the same rows agrees.
        let mut set2 = set.clone();
        set2.rebuild(&rows);
        let ix2 = set2.best_for(0, false).unwrap();
        let mut got2 = ix2.probe_eq(&IndexKey::Int(2)).to_vec();
        got2.sort_unstable();
        assert_eq!(got2, got);
    }

    #[test]
    fn saturating_bounds_detected() {
        assert!(saturates(&Value::Float(1e300)));
        assert!(!saturates(&Value::Float(5.0)));
        assert!(!saturates(&Value::Float(f64::INFINITY)));
        assert!(!saturates(&Value::Int(i64::MAX)));
    }
}
