//! Static checks over parsed event expressions.

use crate::ast::{EventExpr, EventName};
use crate::error::{Error, Result};

/// Validate an expression: durations must be positive, and every referenced
/// name must be present in `known_events` (pass an empty closure-answer to
/// skip the existence check).
pub fn validate(expr: &EventExpr, mut event_exists: impl FnMut(&EventName) -> bool) -> Result<()> {
    let mut problem: Option<String> = None;
    expr.walk(&mut |e| {
        if problem.is_some() {
            return;
        }
        match e {
            EventExpr::Named(n) if !event_exists(n) => {
                problem = Some(format!("unknown event '{}'", n.key()));
            }
            EventExpr::Periodic { period, .. } | EventExpr::PeriodicStar { period, .. }
                if period.micros <= 0 =>
            {
                problem = Some("periodic interval must be positive".into());
            }
            EventExpr::Plus { delta, .. } if delta.micros <= 0 => {
                problem = Some("PLUS offset must be positive".into());
            }
            _ => {}
        }
    });
    match problem {
        Some(msg) => Err(Error { pos: 0, msg }),
        None => Ok(()),
    }
}

/// The distinct event names an expression depends on, in first-seen order.
pub fn constituent_names(expr: &EventExpr) -> Vec<String> {
    let mut seen = Vec::new();
    for n in expr.references() {
        let k = n.key();
        if !seen.contains(&k) {
            seen.push(k);
        }
    }
    seen
}

/// Whether the expression needs clock/timer support (temporal operators).
pub fn is_temporal(expr: &EventExpr) -> bool {
    let mut temporal = false;
    expr.walk(&mut |e| {
        if matches!(
            e,
            EventExpr::Periodic { .. }
                | EventExpr::PeriodicStar { .. }
                | EventExpr::Plus { .. }
                | EventExpr::Temporal(_)
        ) {
            temporal = true;
        }
    });
    temporal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn validate_checks_existence() {
        let e = parse("a ^ b").unwrap();
        assert!(validate(&e, |_| true).is_ok());
        let err = validate(&e, |n| n.key() == "a").unwrap_err();
        assert!(err.msg.contains("unknown event 'b'"));
    }

    #[test]
    fn validate_accepts_positive_durations() {
        let e = parse("P(a, [5 sec], b)").unwrap();
        assert!(validate(&e, |_| true).is_ok());
    }

    #[test]
    fn constituents_deduplicated_in_order() {
        let e = parse("a ; b ; a ; c").unwrap();
        assert_eq!(constituent_names(&e), vec!["a", "b", "c"]);
    }

    #[test]
    fn temporal_detection() {
        assert!(!is_temporal(&parse("a ^ b").unwrap()));
        assert!(is_temporal(&parse("a PLUS [1 sec]").unwrap()));
        assert!(is_temporal(&parse("P(a, [1 sec], b)").unwrap()));
        assert!(is_temporal(&parse("[@ 5]").unwrap()));
        assert!(!is_temporal(&parse("NOT(a, b, c)").unwrap()));
    }
}
