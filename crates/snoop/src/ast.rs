//! Abstract syntax for Snoop event expressions (paper §2.1).
//!
//! Operator conventions follow the Snoop papers: in the ternary operators
//! `NOT(E1, E2, E3)`, `A(E1, E2, E3)` and `A*(E1, E2, E3)`, **E1 is the
//! initiator, E2 the "middle" event, E3 the terminator**. `A` detects each
//! occurrence of E2 inside the window `[E1, E3]`; `NOT` detects at E3 when
//! no E2 occurred inside the window; `A*` accumulates E2 occurrences and
//! detects once at E3.

use std::fmt;

/// A (possibly qualified) event name: `name`, `name:Object`, `name::AppId`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EventName {
    pub name: String,
    /// `Eventname:Objectname` — per-object event restriction.
    pub object: Option<String>,
    /// `Eventname::AppId` — event raised in another application.
    pub app: Option<String>,
}

impl EventName {
    pub fn simple(name: impl Into<String>) -> Self {
        EventName {
            name: name.into(),
            object: None,
            app: None,
        }
    }

    /// The flat registry key for this name.
    pub fn key(&self) -> String {
        match (&self.object, &self.app) {
            (Some(o), _) => format!("{}:{}", self.name, o),
            (None, Some(a)) => format!("{}::{}", self.name, a),
            (None, None) => self.name.clone(),
        }
    }
}

impl fmt::Display for EventName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

/// A relative duration (the bracketed `[time string]` of the BNF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Duration {
    pub micros: i64,
}

impl Duration {
    pub const fn from_micros(micros: i64) -> Self {
        Duration { micros }
    }

    pub const fn from_secs(secs: i64) -> Self {
        Duration {
            micros: secs * 1_000_000,
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.micros;
        if us % 3_600_000_000 == 0 && us != 0 {
            write!(f, "[{} hour]", us / 3_600_000_000)
        } else if us % 60_000_000 == 0 && us != 0 {
            write!(f, "[{} min]", us / 60_000_000)
        } else if us % 1_000_000 == 0 && us != 0 {
            write!(f, "[{} sec]", us / 1_000_000)
        } else if us % 1_000 == 0 && us != 0 {
            write!(f, "[{} msec]", us / 1_000)
        } else {
            write!(f, "[{us} usec]")
        }
    }
}

/// A time point or duration used by the standalone temporal event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeSpec {
    /// Absolute timestamp in clock microseconds: `[@ 12345]`.
    Absolute(i64),
    /// Relative offset from "now": `[5 sec]`.
    Relative(Duration),
}

/// A Snoop event expression.
#[derive(Debug, Clone, PartialEq)]
pub enum EventExpr {
    /// Reference to a previously defined (primitive or composite) event.
    Named(EventName),
    /// `E1 OR E2` / `E1 | E2` — disjunction.
    Or(Box<EventExpr>, Box<EventExpr>),
    /// `E1 AND E2` / `E1 ^ E2` — conjunction in any order.
    And(Box<EventExpr>, Box<EventExpr>),
    /// `E1 SEQ E2` / `E1 ; E2` — E1 strictly before E2.
    Seq(Box<EventExpr>, Box<EventExpr>),
    /// `NOT(E1, E2, E3)` — E2 does not occur in the window `[E1, E3]`.
    Not {
        start: Box<EventExpr>,
        mid: Box<EventExpr>,
        end: Box<EventExpr>,
    },
    /// `A(E1, E2, E3)` — each E2 inside the window `[E1, E3]`.
    Aperiodic {
        start: Box<EventExpr>,
        mid: Box<EventExpr>,
        end: Box<EventExpr>,
    },
    /// `A*(E1, E2, E3)` — all E2s inside the window, detected at E3.
    AperiodicStar {
        start: Box<EventExpr>,
        mid: Box<EventExpr>,
        end: Box<EventExpr>,
    },
    /// `P(E1, [t], E3)` — fires every `t` inside the window `[E1, E3]`.
    Periodic {
        start: Box<EventExpr>,
        period: Duration,
        /// Optional `[t]:param` collector name from the BNF.
        param: Option<String>,
        end: Box<EventExpr>,
    },
    /// `P*(E1, [t], E3)` — accumulates the periodic points, detected at E3.
    PeriodicStar {
        start: Box<EventExpr>,
        period: Duration,
        param: Option<String>,
        end: Box<EventExpr>,
    },
    /// `E1 PLUS [t]` — fires `t` after each E1.
    Plus {
        event: Box<EventExpr>,
        delta: Duration,
    },
    /// `[time string]` alone — a temporal (clock) event.
    Temporal(TimeSpec),
}

impl EventExpr {
    pub fn named(name: impl Into<String>) -> Self {
        EventExpr::Named(EventName::simple(name))
    }

    /// All event-name references in the expression, in left-to-right order
    /// (with duplicates).
    pub fn references(&self) -> Vec<&EventName> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let EventExpr::Named(n) = e {
                out.push(n);
            }
        });
        out
    }

    /// Depth-first pre-order traversal.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a EventExpr)) {
        f(self);
        match self {
            EventExpr::Named(_) | EventExpr::Temporal(_) => {}
            EventExpr::Or(l, r) | EventExpr::And(l, r) | EventExpr::Seq(l, r) => {
                l.walk(f);
                r.walk(f);
            }
            EventExpr::Not { start, mid, end }
            | EventExpr::Aperiodic { start, mid, end }
            | EventExpr::AperiodicStar { start, mid, end } => {
                start.walk(f);
                mid.walk(f);
                end.walk(f);
            }
            EventExpr::Periodic { start, end, .. } | EventExpr::PeriodicStar { start, end, .. } => {
                start.walk(f);
                end.walk(f);
            }
            EventExpr::Plus { event, .. } => event.walk(f),
        }
    }

    /// Rebuild the expression with every event name transformed by `f` —
    /// used by the ECA Agent to expand user names to internal
    /// `db.user.name` form (§5.1 of the agent paper).
    pub fn map_names(&self, f: &mut impl FnMut(&EventName) -> EventName) -> EventExpr {
        match self {
            EventExpr::Named(n) => EventExpr::Named(f(n)),
            EventExpr::Or(l, r) => {
                EventExpr::Or(Box::new(l.map_names(f)), Box::new(r.map_names(f)))
            }
            EventExpr::And(l, r) => {
                EventExpr::And(Box::new(l.map_names(f)), Box::new(r.map_names(f)))
            }
            EventExpr::Seq(l, r) => {
                EventExpr::Seq(Box::new(l.map_names(f)), Box::new(r.map_names(f)))
            }
            EventExpr::Not { start, mid, end } => EventExpr::Not {
                start: Box::new(start.map_names(f)),
                mid: Box::new(mid.map_names(f)),
                end: Box::new(end.map_names(f)),
            },
            EventExpr::Aperiodic { start, mid, end } => EventExpr::Aperiodic {
                start: Box::new(start.map_names(f)),
                mid: Box::new(mid.map_names(f)),
                end: Box::new(end.map_names(f)),
            },
            EventExpr::AperiodicStar { start, mid, end } => EventExpr::AperiodicStar {
                start: Box::new(start.map_names(f)),
                mid: Box::new(mid.map_names(f)),
                end: Box::new(end.map_names(f)),
            },
            EventExpr::Periodic {
                start,
                period,
                param,
                end,
            } => EventExpr::Periodic {
                start: Box::new(start.map_names(f)),
                period: *period,
                param: param.clone(),
                end: Box::new(end.map_names(f)),
            },
            EventExpr::PeriodicStar {
                start,
                period,
                param,
                end,
            } => EventExpr::PeriodicStar {
                start: Box::new(start.map_names(f)),
                period: *period,
                param: param.clone(),
                end: Box::new(end.map_names(f)),
            },
            EventExpr::Plus { event, delta } => EventExpr::Plus {
                event: Box::new(event.map_names(f)),
                delta: *delta,
            },
            EventExpr::Temporal(spec) => EventExpr::Temporal(*spec),
        }
    }

    /// Number of operator nodes (complexity measure used by benchmarks).
    pub fn operator_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |e| {
            if !matches!(e, EventExpr::Named(_)) {
                n += 1;
            }
        });
        n
    }
}

impl fmt::Display for EventExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventExpr::Named(n) => write!(f, "{n}"),
            EventExpr::Or(l, r) => write!(f, "({l} | {r})"),
            EventExpr::And(l, r) => write!(f, "({l} ^ {r})"),
            EventExpr::Seq(l, r) => write!(f, "({l} ; {r})"),
            EventExpr::Not { start, mid, end } => write!(f, "NOT({start}, {mid}, {end})"),
            EventExpr::Aperiodic { start, mid, end } => write!(f, "A({start}, {mid}, {end})"),
            EventExpr::AperiodicStar { start, mid, end } => {
                write!(f, "A*({start}, {mid}, {end})")
            }
            EventExpr::Periodic {
                start,
                period,
                param,
                end,
            } => match param {
                Some(p) => write!(f, "P({start}, {period}:{p}, {end})"),
                None => write!(f, "P({start}, {period}, {end})"),
            },
            EventExpr::PeriodicStar {
                start,
                period,
                param,
                end,
            } => match param {
                Some(p) => write!(f, "P*({start}, {period}:{p}, {end})"),
                None => write!(f, "P*({start}, {period}, {end})"),
            },
            EventExpr::Plus { event, delta } => write!(f, "({event} PLUS {delta})"),
            EventExpr::Temporal(TimeSpec::Absolute(t)) => write!(f, "[@ {t}]"),
            EventExpr::Temporal(TimeSpec::Relative(d)) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_name_keys() {
        assert_eq!(EventName::simple("e").key(), "e");
        let on_obj = EventName {
            name: "deposit".into(),
            object: Some("acct1".into()),
            app: None,
        };
        assert_eq!(on_obj.key(), "deposit:acct1");
        let on_app = EventName {
            name: "e".into(),
            object: None,
            app: Some("site_app".into()),
        };
        assert_eq!(on_app.key(), "e::site_app");
    }

    #[test]
    fn duration_display_picks_unit() {
        assert_eq!(Duration::from_secs(5).to_string(), "[5 sec]");
        assert_eq!(Duration::from_micros(60_000_000).to_string(), "[1 min]");
        assert_eq!(Duration::from_micros(3_600_000_000).to_string(), "[1 hour]");
        assert_eq!(Duration::from_micros(1_500).to_string(), "[1500 usec]");
        assert_eq!(Duration::from_micros(2_000).to_string(), "[2 msec]");
    }

    #[test]
    fn references_in_order() {
        let e = EventExpr::And(
            Box::new(EventExpr::named("delStk")),
            Box::new(EventExpr::named("addStk")),
        );
        let refs: Vec<String> = e.references().iter().map(|n| n.key()).collect();
        assert_eq!(refs, vec!["delStk", "addStk"]);
    }

    #[test]
    fn operator_count() {
        let e = EventExpr::Seq(
            Box::new(EventExpr::Or(
                Box::new(EventExpr::named("a")),
                Box::new(EventExpr::named("b")),
            )),
            Box::new(EventExpr::named("c")),
        );
        assert_eq!(e.operator_count(), 2);
    }

    #[test]
    fn map_names_expands_references() {
        let e = EventExpr::Seq(
            Box::new(EventExpr::named("a")),
            Box::new(EventExpr::Aperiodic {
                start: Box::new(EventExpr::named("b")),
                mid: Box::new(EventExpr::named("c")),
                end: Box::new(EventExpr::named("d")),
            }),
        );
        let mapped = e.map_names(&mut |n| EventName::simple(format!("db.u.{}", n.key())));
        let refs: Vec<String> = mapped.references().iter().map(|n| n.key()).collect();
        assert_eq!(refs, vec!["db.u.a", "db.u.b", "db.u.c", "db.u.d"]);
        // Original untouched.
        assert_eq!(e.references()[0].key(), "a");
    }

    #[test]
    fn display_round_trip_shapes() {
        let e = EventExpr::Not {
            start: Box::new(EventExpr::named("open")),
            mid: Box::new(EventExpr::named("cancel")),
            end: Box::new(EventExpr::named("close")),
        };
        assert_eq!(e.to_string(), "NOT(open, cancel, close)");
        let p = EventExpr::Periodic {
            start: Box::new(EventExpr::named("a")),
            period: Duration::from_secs(5),
            param: Some("ts".into()),
            end: Box::new(EventExpr::named("b")),
        };
        assert_eq!(p.to_string(), "P(a, [5 sec]:ts, b)");
    }
}
