//! Tokenizer for Snoop event expressions.

use crate::error::{Error, Result};

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
    Colon,
    DoubleColon,
    Pipe,
    Caret,
    Semi,
    LBracket,
    RBracket,
    At,
    Star,
    Eq,
    Eof,
}

impl Tok {
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a Snoop expression.
pub fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let n: i64 = src[start..i].parse().map_err(|_| Error {
                pos: start,
                msg: format!("bad integer '{}'", &src[start..i]),
            })?;
            out.push((Tok::Int(n), start));
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
            {
                i += 1;
            }
            out.push((Tok::Ident(src[start..i].to_string()), start));
            continue;
        }
        let start = i;
        let (tok, len) = match c {
            b'(' => (Tok::LParen, 1),
            b')' => (Tok::RParen, 1),
            b',' => (Tok::Comma, 1),
            b'|' => (Tok::Pipe, 1),
            b'^' => (Tok::Caret, 1),
            b';' => (Tok::Semi, 1),
            b'[' => (Tok::LBracket, 1),
            b']' => (Tok::RBracket, 1),
            b'@' => (Tok::At, 1),
            b'*' => (Tok::Star, 1),
            b'=' => (Tok::Eq, 1),
            b':' if bytes.get(i + 1) == Some(&b':') => (Tok::DoubleColon, 2),
            b':' => (Tok::Colon, 1),
            _ => {
                return Err(Error {
                    pos: i,
                    msg: format!(
                        "unexpected character '{}'",
                        src[i..].chars().next().unwrap()
                    ),
                })
            }
        };
        out.push((tok, start));
        i += len;
    }
    out.push((Tok::Eof, src.len()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn symbols_and_names() {
        assert_eq!(
            toks("delStk ^ addStk"),
            vec![
                Tok::Ident("delStk".into()),
                Tok::Caret,
                Tok::Ident("addStk".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn dotted_names_allowed() {
        // Internal names like sentineldb.sharma.addStk flow through Snoop.
        assert_eq!(
            toks("sentineldb.sharma.addStk"),
            vec![Tok::Ident("sentineldb.sharma.addStk".into()), Tok::Eof]
        );
    }

    #[test]
    fn time_brackets() {
        assert_eq!(
            toks("[5 sec]"),
            vec![
                Tok::LBracket,
                Tok::Int(5),
                Tok::Ident("sec".into()),
                Tok::RBracket,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn double_colon() {
        assert_eq!(
            toks("e::app"),
            vec![
                Tok::Ident("e".into()),
                Tok::DoubleColon,
                Tok::Ident("app".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn star_after_ident() {
        assert_eq!(
            toks("A*(a, b, c)")[0..2],
            [Tok::Ident("A".into()), Tok::Star]
        );
    }

    #[test]
    fn bad_char_errors() {
        assert!(tokenize("a & b").is_err());
    }
}
