//! Error type for Snoop parsing and validation.

use std::fmt;

/// A parse or validation error with a byte position into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snoop error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;
