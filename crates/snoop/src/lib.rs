//! # snoop — the Snoop composite-event specification language
//!
//! Model-independent event expression language from Sentinel (Chakravarthy &
//! Mishra), used by the ECA Agent paper (§2.1) to specify composite events.
//! Supports the full BNF given in the paper:
//!
//! - binary operators `OR` (`|`), `AND` (`^`), `SEQ` (`;`),
//! - ternary window operators `NOT(E1,E2,E3)`, `A(E1,E2,E3)`, `A*(E1,E2,E3)`,
//! - temporal operators `P(E1,[t],E3)`, `P*(E1,[t]:p,E3)`, `E PLUS [t]`,
//!   and standalone `[time string]` events,
//! - qualified names `event:Object` and `event::AppId`.
//!
//! ```
//! use snoop::parse;
//! let expr = parse("delStk ^ addStk").unwrap();
//! assert_eq!(expr.to_string(), "(delStk ^ addStk)");
//! ```

pub mod analysis;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

pub use analysis::{constituent_names, is_temporal, validate};
pub use ast::{Duration, EventExpr, EventName, TimeSpec};
pub use error::{Error, Result};
pub use parser::{parse, parse_definition};
