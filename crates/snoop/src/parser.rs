//! Recursive-descent parser for the Snoop BNF of paper §2.1.
//!
//! Precedence, loosest to tightest: `OR` < `AND` < `SEQ`, with `PLUS` as a
//! postfix operator on primaries. Both keyword and symbolic operator forms
//! are accepted (`OR`/`|`, `AND`/`^`, `SEQ`/`;`), since the paper's Example 2
//! writes `addDel = delStk ^ addStk`.

use crate::ast::{Duration, EventExpr, EventName, TimeSpec};
use crate::error::{Error, Result};
use crate::lexer::{tokenize, Tok};

/// Parse a Snoop event expression.
pub fn parse(src: &str) -> Result<EventExpr> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_or()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parse an event *definition* of the form `name = expr`, the shape used in
/// the agent's `event addDel = delStk ^ addStk` clause. Returns the new
/// event's name and its expression.
pub fn parse_definition(src: &str) -> Result<(EventName, EventExpr)> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let name = p.parse_event_name()?;
    if !p.eat(&Tok::Eq) {
        return Err(p.err("expected '=' in event definition"));
    }
    let e = p.parse_or()?;
    p.expect_eof()?;
    Ok((name, e))
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].0
    }

    fn peek_at(&self, n: usize) -> &Tok {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].0
    }

    fn here(&self) -> usize {
        self.tokens[self.pos].1
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error {
            pos: self.here(),
            msg: msg.into(),
        }
    }

    fn advance(&mut self) -> Tok {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn parse_or(&mut self) -> Result<EventExpr> {
        let mut left = self.parse_and()?;
        loop {
            if self.eat(&Tok::Pipe) || self.peek().is_kw("or") {
                if self.peek().is_kw("or") {
                    self.advance();
                }
                let right = self.parse_and()?;
                left = EventExpr::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_and(&mut self) -> Result<EventExpr> {
        let mut left = self.parse_seq()?;
        loop {
            if self.eat(&Tok::Caret) || self.peek().is_kw("and") {
                if self.peek().is_kw("and") {
                    self.advance();
                }
                let right = self.parse_seq()?;
                left = EventExpr::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_seq(&mut self) -> Result<EventExpr> {
        let mut left = self.parse_postfix()?;
        loop {
            if self.eat(&Tok::Semi) || self.peek().is_kw("seq") {
                if self.peek().is_kw("seq") {
                    self.advance();
                }
                let right = self.parse_postfix()?;
                left = EventExpr::Seq(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    /// `primary (PLUS [time])*`
    fn parse_postfix(&mut self) -> Result<EventExpr> {
        let mut e = self.parse_primary()?;
        while self.peek().is_kw("plus") {
            self.advance();
            let d = self.parse_duration_brackets()?;
            e = EventExpr::Plus {
                event: Box::new(e),
                delta: d,
            };
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<EventExpr> {
        match self.peek().clone() {
            Tok::LParen => {
                self.advance();
                let e = self.parse_or()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::LBracket => {
                // Standalone temporal event.
                let spec = self.parse_timespec()?;
                Ok(EventExpr::Temporal(spec))
            }
            Tok::Ident(word) => {
                // Operator forms: NOT(...), A(...), A*(...), P(...), P*(...)
                let upper = word.to_ascii_uppercase();
                let starred = matches!(self.peek_at(1), Tok::Star);
                let call_after_star = starred && matches!(self.peek_at(2), Tok::LParen);
                let call = matches!(self.peek_at(1), Tok::LParen);
                match upper.as_str() {
                    "NOT" if call => {
                        self.advance();
                        self.parse_triple(|s, m, e| EventExpr::Not {
                            start: s,
                            mid: m,
                            end: e,
                        })
                    }
                    "A" if call => {
                        self.advance();
                        self.parse_triple(|s, m, e| EventExpr::Aperiodic {
                            start: s,
                            mid: m,
                            end: e,
                        })
                    }
                    "A" if call_after_star => {
                        self.advance();
                        self.advance();
                        self.parse_triple(|s, m, e| EventExpr::AperiodicStar {
                            start: s,
                            mid: m,
                            end: e,
                        })
                    }
                    "P" if call => {
                        self.advance();
                        self.parse_periodic(false)
                    }
                    "P" if call_after_star => {
                        self.advance();
                        self.advance();
                        self.parse_periodic(true)
                    }
                    _ => {
                        let name = self.parse_event_name()?;
                        Ok(EventExpr::Named(name))
                    }
                }
            }
            other => Err(self.err(format!("expected event expression, found {other:?}"))),
        }
    }

    fn parse_triple(
        &mut self,
        build: impl FnOnce(Box<EventExpr>, Box<EventExpr>, Box<EventExpr>) -> EventExpr,
    ) -> Result<EventExpr> {
        self.expect(&Tok::LParen, "'('")?;
        let a = self.parse_or()?;
        self.expect(&Tok::Comma, "','")?;
        let b = self.parse_or()?;
        self.expect(&Tok::Comma, "','")?;
        let c = self.parse_or()?;
        self.expect(&Tok::RParen, "')'")?;
        Ok(build(Box::new(a), Box::new(b), Box::new(c)))
    }

    fn parse_periodic(&mut self, star: bool) -> Result<EventExpr> {
        self.expect(&Tok::LParen, "'('")?;
        let start = self.parse_or()?;
        self.expect(&Tok::Comma, "','")?;
        let period = self.parse_duration_brackets()?;
        let param = if self.eat(&Tok::Colon) {
            match self.advance() {
                Tok::Ident(p) => Some(p),
                _ => return Err(self.err("expected parameter name after ':'")),
            }
        } else {
            None
        };
        self.expect(&Tok::Comma, "','")?;
        let end = self.parse_or()?;
        self.expect(&Tok::RParen, "')'")?;
        if star {
            Ok(EventExpr::PeriodicStar {
                start: Box::new(start),
                period,
                param,
                end: Box::new(end),
            })
        } else {
            Ok(EventExpr::Periodic {
                start: Box::new(start),
                period,
                param,
                end: Box::new(end),
            })
        }
    }

    fn parse_event_name(&mut self) -> Result<EventName> {
        let name = match self.advance() {
            Tok::Ident(s) => s,
            other => return Err(self.err(format!("expected event name, found {other:?}"))),
        };
        if self.eat(&Tok::DoubleColon) {
            let app = match self.advance() {
                Tok::Ident(s) => s,
                other => return Err(self.err(format!("expected app id, found {other:?}"))),
            };
            return Ok(EventName {
                name,
                object: None,
                app: Some(app),
            });
        }
        if self.eat(&Tok::Colon) {
            let object = match self.advance() {
                Tok::Ident(s) => s,
                other => return Err(self.err(format!("expected object name, found {other:?}"))),
            };
            return Ok(EventName {
                name,
                object: Some(object),
                app: None,
            });
        }
        Ok(EventName {
            name,
            object: None,
            app: None,
        })
    }

    /// `[5 sec]`, `[1 min 30 sec]`, `[@ 12345]` (absolute) — returns the
    /// relative duration form or errors for absolute specs.
    fn parse_duration_brackets(&mut self) -> Result<Duration> {
        match self.parse_timespec()? {
            TimeSpec::Relative(d) => Ok(d),
            TimeSpec::Absolute(_) => Err(self.err("expected a duration, found absolute time")),
        }
    }

    fn parse_timespec(&mut self) -> Result<TimeSpec> {
        self.expect(&Tok::LBracket, "'['")?;
        if self.eat(&Tok::At) {
            let t = match self.advance() {
                Tok::Int(n) => n,
                other => return Err(self.err(format!("expected timestamp, found {other:?}"))),
            };
            self.expect(&Tok::RBracket, "']'")?;
            return Ok(TimeSpec::Absolute(t));
        }
        let mut total: i64 = 0;
        let mut any = false;
        loop {
            match self.peek().clone() {
                Tok::Int(n) => {
                    self.advance();
                    let unit = match self.advance() {
                        Tok::Ident(u) => u,
                        other => {
                            return Err(self.err(format!("expected time unit, found {other:?}")))
                        }
                    };
                    total = total
                        .checked_add(
                            n.checked_mul(unit_micros(&unit).ok_or_else(|| Error {
                                pos: 0,
                                msg: format!("unknown time unit '{unit}'"),
                            })?)
                            .ok_or_else(|| Error {
                                pos: 0,
                                msg: "duration overflow".into(),
                            })?,
                        )
                        .ok_or_else(|| Error {
                            pos: 0,
                            msg: "duration overflow".into(),
                        })?;
                    any = true;
                }
                Tok::RBracket => {
                    self.advance();
                    break;
                }
                other => return Err(self.err(format!("expected time component, found {other:?}"))),
            }
        }
        if !any {
            return Err(self.err("empty time string"));
        }
        Ok(TimeSpec::Relative(Duration::from_micros(total)))
    }
}

fn unit_micros(unit: &str) -> Option<i64> {
    let u = unit.to_ascii_lowercase();
    Some(match u.as_str() {
        "usec" | "us" | "microsec" | "microseconds" | "microsecond" => 1,
        "msec" | "ms" | "millisec" | "milliseconds" | "millisecond" => 1_000,
        "sec" | "s" | "secs" | "second" | "seconds" => 1_000_000,
        "min" | "mins" | "minute" | "minutes" => 60_000_000,
        "hour" | "hours" | "hr" | "hrs" => 3_600_000_000,
        "day" | "days" => 86_400_000_000,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_2() {
        // `addDel = delStk ^ addStk`
        let (name, expr) = parse_definition("addDel = delStk ^ addStk").unwrap();
        assert_eq!(name.key(), "addDel");
        assert_eq!(
            expr,
            EventExpr::And(
                Box::new(EventExpr::named("delStk")),
                Box::new(EventExpr::named("addStk"))
            )
        );
    }

    #[test]
    fn keyword_and_symbol_forms_agree() {
        assert_eq!(parse("a AND b").unwrap(), parse("a ^ b").unwrap());
        assert_eq!(parse("a OR b").unwrap(), parse("a | b").unwrap());
        assert_eq!(parse("a SEQ b").unwrap(), parse("a ; b").unwrap());
    }

    #[test]
    fn precedence_or_lowest() {
        // a | b ^ c ; d  ==  a | (b ^ (c ; d))
        let e = parse("a | b ^ c ; d").unwrap();
        match e {
            EventExpr::Or(_, r) => match *r {
                EventExpr::And(_, r2) => assert!(matches!(*r2, EventExpr::Seq(_, _))),
                other => panic!("expected AND, got {other:?}"),
            },
            other => panic!("expected OR, got {other:?}"),
        }
    }

    #[test]
    fn left_associative() {
        let e = parse("a ; b ; c").unwrap();
        match e {
            EventExpr::Seq(l, _) => assert!(matches!(*l, EventExpr::Seq(_, _))),
            _ => panic!(),
        }
    }

    #[test]
    fn parens_override() {
        let e = parse("(a | b) ^ c").unwrap();
        assert!(matches!(e, EventExpr::And(_, _)));
    }

    #[test]
    fn ternary_operators() {
        let e = parse("NOT(open, cancel, close)").unwrap();
        assert!(matches!(e, EventExpr::Not { .. }));
        let e = parse("A(start, tick, stop)").unwrap();
        assert!(matches!(e, EventExpr::Aperiodic { .. }));
        let e = parse("A*(start, tick, stop)").unwrap();
        assert!(matches!(e, EventExpr::AperiodicStar { .. }));
    }

    #[test]
    fn periodic_with_duration() {
        let e = parse("P(open, [5 sec], close)").unwrap();
        match e {
            EventExpr::Periodic { period, param, .. } => {
                assert_eq!(period, Duration::from_secs(5));
                assert!(param.is_none());
            }
            _ => panic!(),
        }
        let e = parse("P*(open, [1 min 30 sec]:ts, close)").unwrap();
        match e {
            EventExpr::PeriodicStar { period, param, .. } => {
                assert_eq!(period, Duration::from_micros(90_000_000));
                assert_eq!(param.as_deref(), Some("ts"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn plus_postfix() {
        let e = parse("e1 PLUS [10 sec]").unwrap();
        match e {
            EventExpr::Plus { delta, .. } => assert_eq!(delta, Duration::from_secs(10)),
            _ => panic!(),
        }
        // Binds tighter than SEQ: `a PLUS [1 sec] ; b`
        let e = parse("a PLUS [1 sec] ; b").unwrap();
        assert!(matches!(e, EventExpr::Seq(_, _)));
    }

    #[test]
    fn temporal_events() {
        assert_eq!(
            parse("[@ 12345]").unwrap(),
            EventExpr::Temporal(TimeSpec::Absolute(12345))
        );
        assert_eq!(
            parse("[2 sec]").unwrap(),
            EventExpr::Temporal(TimeSpec::Relative(Duration::from_secs(2)))
        );
    }

    #[test]
    fn qualified_names() {
        let e = parse("deposit:acct1").unwrap();
        match e {
            EventExpr::Named(n) => {
                assert_eq!(n.name, "deposit");
                assert_eq!(n.object.as_deref(), Some("acct1"));
            }
            _ => panic!(),
        }
        let e = parse("remote::site_app").unwrap();
        match e {
            EventExpr::Named(n) => assert_eq!(n.app.as_deref(), Some("site_app")),
            _ => panic!(),
        }
    }

    #[test]
    fn a_and_p_as_plain_event_names() {
        // `a` not followed by '(' is just an event called "a".
        let e = parse("a ^ p").unwrap();
        assert!(matches!(e, EventExpr::And(_, _)));
    }

    #[test]
    fn internal_dotted_names() {
        let (name, expr) = parse_definition(
            "sentineldb.sharma.addDel = sentineldb.sharma.delStk ^ sentineldb.sharma.addStk",
        )
        .unwrap();
        assert_eq!(name.key(), "sentineldb.sharma.addDel");
        assert_eq!(expr.references().len(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("a ^").is_err());
        assert!(parse("NOT(a, b)").is_err());
        assert!(parse("P(a, [0 parsec], b)").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("[ ]").is_err());
        assert!(parse("a PLUS [@ 5]").is_err(), "PLUS needs a duration");
        assert!(parse_definition("x delStk ^ addStk").is_err());
    }

    #[test]
    fn display_reparses_to_same_ast() {
        for src in [
            "a ^ b",
            "a | b ; c",
            "NOT(a, b, c)",
            "A(a, b, c)",
            "A*(a, b, c)",
            "P(a, [5 sec], b)",
            "P*(a, [5 sec]:t, b)",
            "a PLUS [3 min]",
            "[@ 99]",
        ] {
            let e1 = parse(src).unwrap();
            let e2 = parse(&e1.to_string()).unwrap();
            assert_eq!(e1, e2, "round-trip failed for {src}");
        }
    }
}
