//! Edge cases of the Snoop grammar beyond the unit tests: deep nesting,
//! pathological whitespace, and boundary forms.

use snoop::{parse, parse_definition, Duration, EventExpr};

#[test]
fn deeply_left_nested_chain() {
    // 100-long SEQ chain parses and stays left-associated.
    let src = (0..100)
        .map(|i| format!("e{i}"))
        .collect::<Vec<_>>()
        .join(" ; ");
    let e = parse(&src).unwrap();
    assert_eq!(e.operator_count(), 99);
    assert_eq!(e.references().len(), 100);
    let mut cur = &e;
    let mut depth = 0;
    while let EventExpr::Seq(l, _) = cur {
        cur = l;
        depth += 1;
    }
    assert_eq!(depth, 99);
}

#[test]
fn deeply_parenthesized() {
    let mut src = "x".to_string();
    for _ in 0..200 {
        src = format!("({src})");
    }
    assert_eq!(parse(&src).unwrap(), EventExpr::named("x"));
}

#[test]
fn whitespace_is_insignificant() {
    let a = parse("a^b;c").unwrap();
    let b = parse("  a   ^\n\tb\n;\n   c  ").unwrap();
    assert_eq!(a, b);
}

#[test]
fn nested_ternaries() {
    let e = parse("NOT(A(a, b, c), A*(d, f, g), P(h, [1 sec], i))").unwrap();
    match e {
        EventExpr::Not { start, mid, end } => {
            assert!(matches!(*start, EventExpr::Aperiodic { .. }));
            assert!(matches!(*mid, EventExpr::AperiodicStar { .. }));
            assert!(matches!(*end, EventExpr::Periodic { .. }));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn operator_arguments_can_be_full_expressions() {
    let e = parse("A(a ; b, c | d, f ^ g)").unwrap();
    match e {
        EventExpr::Aperiodic { start, mid, end } => {
            assert!(matches!(*start, EventExpr::Seq(..)));
            assert!(matches!(*mid, EventExpr::Or(..)));
            assert!(matches!(*end, EventExpr::And(..)));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn chained_plus_postfix() {
    // (e PLUS [1 sec]) PLUS [2 sec]
    let e = parse("e PLUS [1 sec] PLUS [2 sec]").unwrap();
    match e {
        EventExpr::Plus { event, delta } => {
            assert_eq!(delta, Duration::from_secs(2));
            assert!(matches!(*event, EventExpr::Plus { .. }));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn compound_duration_units() {
    let e = parse("e PLUS [1 hour 2 min 3 sec 4 msec 5 usec]").unwrap();
    match e {
        EventExpr::Plus { delta, .. } => {
            assert_eq!(
                delta.micros,
                3_600_000_000 + 2 * 60_000_000 + 3 * 1_000_000 + 4_000 + 5
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn definition_with_complex_rhs() {
    let (name, expr) =
        parse_definition("watch = NOT(open, cancel, close) ; done PLUS [10 sec]").unwrap();
    assert_eq!(name.key(), "watch");
    assert!(matches!(expr, EventExpr::Seq(..)));
}

#[test]
fn case_insensitive_operator_keywords() {
    assert_eq!(parse("a and b").unwrap(), parse("a AND b").unwrap());
    assert_eq!(parse("a Or b").unwrap(), parse("a OR b").unwrap());
    assert_eq!(parse("a seQ b").unwrap(), parse("a SEQ b").unwrap());
    assert_eq!(
        parse("not(a, b, c)").unwrap(),
        parse("NOT(a, b, c)").unwrap()
    );
    assert_eq!(
        parse("e plus [1 sec]").unwrap(),
        parse("e PLUS [1 sec]").unwrap()
    );
}

#[test]
fn lowercase_a_and_p_stay_event_names_without_parens() {
    // `a` and `p` alone are events; only `A(`/`P(` are operators.
    let e = parse("a ; p").unwrap();
    let refs: Vec<String> = e.references().iter().map(|n| n.key()).collect();
    assert_eq!(refs, vec!["a", "p"]);
}

#[test]
fn duplicate_event_in_triple_is_allowed_syntactically() {
    // Semantics handled by the LED; the grammar permits it.
    let e = parse("NOT(e, e, e)").unwrap();
    assert_eq!(e.references().len(), 3);
}

#[test]
fn huge_duration_overflow_is_an_error() {
    assert!(parse("e PLUS [9999999999999 day]").is_err());
}

#[test]
fn trailing_operator_is_an_error() {
    for bad in ["a ;", "a ^", "a |", "a PLUS", "NOT(a, b, c", "P(a, , b)"] {
        assert!(parse(bad).is_err(), "{bad:?} should not parse");
    }
}
