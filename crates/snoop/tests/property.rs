//! Property-based tests: arbitrary Snoop expression trees survive a
//! display → reparse round trip, and the parser never panics.

use proptest::prelude::*;
use snoop::{Duration, EventExpr, EventName, TimeSpec};

fn name_strategy() -> impl Strategy<Value = EventName> {
    (
        "[a-z][a-z0-9_]{0,8}",
        prop::option::of("[a-z][a-z0-9]{0,5}"),
    )
        .prop_map(|(name, object)| EventName {
            name,
            object,
            app: None,
        })
        .prop_filter("avoid operator keywords", |n| {
            !["or", "and", "seq", "not", "a", "p", "plus"].contains(&n.name.as_str())
        })
}

fn duration_strategy() -> impl Strategy<Value = Duration> {
    // Whole seconds/minutes so Display picks a clean unit that reparses.
    prop_oneof![
        (1i64..1000).prop_map(Duration::from_secs),
        (1i64..500).prop_map(|ms| Duration::from_micros(ms * 1000)),
        (1i64..100).prop_map(|m| Duration::from_micros(m * 60_000_000)),
    ]
}

fn expr_strategy() -> impl Strategy<Value = EventExpr> {
    let leaf = prop_oneof![
        name_strategy().prop_map(EventExpr::Named),
        (1i64..1_000_000).prop_map(|t| EventExpr::Temporal(TimeSpec::Absolute(t))),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| EventExpr::Or(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| EventExpr::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| EventExpr::Seq(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| {
                EventExpr::Not {
                    start: Box::new(a),
                    mid: Box::new(b),
                    end: Box::new(c),
                }
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| {
                EventExpr::Aperiodic {
                    start: Box::new(a),
                    mid: Box::new(b),
                    end: Box::new(c),
                }
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| {
                EventExpr::AperiodicStar {
                    start: Box::new(a),
                    mid: Box::new(b),
                    end: Box::new(c),
                }
            }),
            (inner.clone(), duration_strategy(), inner.clone()).prop_map(|(s, d, e)| {
                EventExpr::Periodic {
                    start: Box::new(s),
                    period: d,
                    param: None,
                    end: Box::new(e),
                }
            }),
            (inner.clone(), duration_strategy(), inner.clone()).prop_map(|(s, d, e)| {
                EventExpr::PeriodicStar {
                    start: Box::new(s),
                    period: d,
                    param: Some("ts".into()),
                    end: Box::new(e),
                }
            }),
            (inner, duration_strategy()).prop_map(|(e, d)| EventExpr::Plus {
                event: Box::new(e),
                delta: d,
            }),
        ]
    })
}

proptest! {
    #[test]
    fn display_reparse_roundtrip(expr in expr_strategy()) {
        let printed = expr.to_string();
        let reparsed = snoop::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        prop_assert_eq!(expr, reparsed, "printed form: {}", printed);
    }

    #[test]
    fn references_preserved_by_roundtrip(expr in expr_strategy()) {
        let reparsed = snoop::parse(&expr.to_string()).unwrap();
        let a: Vec<String> = expr.references().iter().map(|n| n.key()).collect();
        let b: Vec<String> = reparsed.references().iter().map(|n| n.key()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn map_names_identity(expr in expr_strategy()) {
        let mapped = expr.map_names(&mut |n| n.clone());
        prop_assert_eq!(expr, mapped);
    }

    #[test]
    fn operator_count_stable(expr in expr_strategy()) {
        let reparsed = snoop::parse(&expr.to_string()).unwrap();
        prop_assert_eq!(expr.operator_count(), reparsed.operator_count());
    }

    #[test]
    fn parser_never_panics(s in ".{0,100}") {
        let _ = snoop::parse(&s);
        let _ = snoop::parse_definition(&s);
    }

    #[test]
    fn validate_accepts_roundtripped_expressions(expr in expr_strategy()) {
        // All generated durations are positive; with an all-knowing
        // existence oracle, validation must pass.
        prop_assert!(snoop::validate(&expr, |_| true).is_ok());
    }
}
