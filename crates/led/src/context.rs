//! Parameter contexts and coupling modes (paper §2.1, §5.6).

use std::fmt;
use std::str::FromStr;

/// Snoop parameter contexts, defined via initiator/terminator pairing
/// (paper §2.1):
///
/// - **Recent** — only the *most recent* initiator is used; it keeps
///   initiating until a newer initiator replaces it.
/// - **Chronicle** — initiators pair with terminators in FIFO (oldest
///   first) order and are consumed.
/// - **Continuous** — every initiator opens a window; one terminator can
///   detect one occurrence per open window, consuming them all.
/// - **Cumulative** — all occurrences accumulate and are flushed into a
///   single detection at the terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParameterContext {
    /// The paper's default context (§5, Figure 9).
    #[default]
    Recent,
    Chronicle,
    Continuous,
    Cumulative,
}

impl ParameterContext {
    pub const ALL: [ParameterContext; 4] = [
        ParameterContext::Recent,
        ParameterContext::Chronicle,
        ParameterContext::Continuous,
        ParameterContext::Cumulative,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            ParameterContext::Recent => "RECENT",
            ParameterContext::Chronicle => "CHRONICLE",
            ParameterContext::Continuous => "CONTINUOUS",
            ParameterContext::Cumulative => "CUMULATIVE",
        }
    }
}

impl fmt::Display for ParameterContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ParameterContext {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "RECENT" => Ok(ParameterContext::Recent),
            "CHRONICLE" => Ok(ParameterContext::Chronicle),
            "CONTINUOUS" => Ok(ParameterContext::Continuous),
            "CUMULATIVE" => Ok(ParameterContext::Cumulative),
            other => Err(format!("unknown parameter context '{other}'")),
        }
    }
}

/// When a triggered rule's action runs relative to the triggering
/// transaction. The paper implements IMMEDIATE and lists DEFERRED/DETACHED
/// as future work (§6); this reproduction implements all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CouplingMode {
    #[default]
    Immediate,
    /// Queued until the end of the triggering transaction/batch.
    Deferred,
    /// Executed in a separate thread of control.
    Detached,
}

impl CouplingMode {
    pub fn as_str(&self) -> &'static str {
        match self {
            CouplingMode::Immediate => "IMMEDIATE",
            CouplingMode::Deferred => "DEFERRED",
            CouplingMode::Detached => "DETACHED",
        }
    }
}

impl fmt::Display for CouplingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CouplingMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "IMMEDIATE" => Ok(CouplingMode::Immediate),
            // The paper's Figure 9 spells it "DEFERED"; accept both.
            "DEFERRED" | "DEFERED" => Ok(CouplingMode::Deferred),
            "DETACHED" => Ok(CouplingMode::Detached),
            other => Err(format!("unknown coupling mode '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_parse_roundtrip() {
        for c in ParameterContext::ALL {
            assert_eq!(c.as_str().parse::<ParameterContext>().unwrap(), c);
            assert_eq!(
                c.as_str()
                    .to_lowercase()
                    .parse::<ParameterContext>()
                    .unwrap(),
                c
            );
        }
        assert!("bogus".parse::<ParameterContext>().is_err());
    }

    #[test]
    fn default_context_is_recent() {
        assert_eq!(ParameterContext::default(), ParameterContext::Recent);
    }

    #[test]
    fn coupling_parse_accepts_paper_spelling() {
        assert_eq!(
            "DEFERED".parse::<CouplingMode>().unwrap(),
            CouplingMode::Deferred
        );
        assert_eq!(
            "deferred".parse::<CouplingMode>().unwrap(),
            CouplingMode::Deferred
        );
        assert_eq!(
            "IMMEDIATE".parse::<CouplingMode>().unwrap(),
            CouplingMode::Immediate
        );
        assert_eq!(
            "detached".parse::<CouplingMode>().unwrap(),
            CouplingMode::Detached
        );
        assert!("sometime".parse::<CouplingMode>().is_err());
    }
}
