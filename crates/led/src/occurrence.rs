//! Event occurrences and their parameters.
//!
//! In the ECA Agent a primitive event's parameters are the `(tableName,
//! vNo)` pair identifying the shadow-table rows the firing stamped
//! (Figure 11); composite occurrences carry the concatenation of their
//! constituents' parameters, which the Action Handler turns into
//! `sysContext` rows (Figure 17).

/// One constituent parameter of an occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// The (internal) name of the event this parameter came from.
    pub event: String,
    /// Shadow table holding the affected rows, if database-sourced.
    pub table: Option<String>,
    /// The event-occurrence version number stamped into the shadow table.
    pub vno: Option<i64>,
    /// Free-form payload (used by temporal events for fire timestamps).
    pub data: Option<String>,
    /// Timestamp of the constituent occurrence.
    pub ts: i64,
}

impl Param {
    /// A database parameter: `(table, vNo)` at time `ts`.
    pub fn db(event: impl Into<String>, table: impl Into<String>, vno: i64, ts: i64) -> Self {
        Param {
            event: event.into(),
            table: Some(table.into()),
            vno: Some(vno),
            data: None,
            ts,
        }
    }

    /// A bare (parameter-less) event marker.
    pub fn marker(event: impl Into<String>, ts: i64) -> Self {
        Param {
            event: event.into(),
            table: None,
            vno: None,
            data: None,
            ts,
        }
    }

    /// A temporal parameter carrying a fire timestamp.
    pub fn time(event: impl Into<String>, ts: i64) -> Self {
        Param {
            event: event.into(),
            table: None,
            vno: None,
            data: Some(ts.to_string()),
            ts,
        }
    }
}

/// One occurrence of a (primitive or composite) event.
///
/// Composite occurrences span an interval: `t_start` is the initiator's
/// start and `t_end` the terminator's (detection) time. For primitive
/// events the two coincide.
#[derive(Debug, Clone, PartialEq)]
pub struct Occurrence {
    pub event: String,
    pub t_start: i64,
    pub t_end: i64,
    pub params: Vec<Param>,
}

impl Occurrence {
    /// A primitive (point) occurrence.
    pub fn point(event: impl Into<String>, ts: i64, params: Vec<Param>) -> Self {
        Occurrence {
            event: event.into(),
            t_start: ts,
            t_end: ts,
            params,
        }
    }

    /// Combine constituent occurrences into a composite occurrence named
    /// `event`, terminating at `t_end`. Parameters concatenate in argument
    /// order; `t_start` is the earliest constituent start.
    pub fn combine<'a>(
        event: impl Into<String>,
        parts: impl IntoIterator<Item = &'a Occurrence>,
        t_end: i64,
    ) -> Self {
        let mut t_start = t_end;
        let mut params = Vec::new();
        for p in parts {
            t_start = t_start.min(p.t_start);
            params.extend(p.params.iter().cloned());
        }
        Occurrence {
            event: event.into(),
            t_start,
            t_end,
            params,
        }
    }

    /// Number of constituent parameters (state-size metric for E9).
    pub fn param_count(&self) -> usize {
        self.params.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_occurrence_has_zero_span() {
        let o = Occurrence::point("e", 5, vec![Param::marker("e", 5)]);
        assert_eq!(o.t_start, 5);
        assert_eq!(o.t_end, 5);
        assert_eq!(o.param_count(), 1);
    }

    #[test]
    fn combine_takes_earliest_start_and_concatenates() {
        let a = Occurrence::point("a", 10, vec![Param::db("a", "ta", 1, 10)]);
        let b = Occurrence::point("b", 3, vec![Param::db("b", "tb", 2, 3)]);
        let c = Occurrence::combine("ab", [&a, &b], 10);
        assert_eq!(c.t_start, 3);
        assert_eq!(c.t_end, 10);
        assert_eq!(c.params.len(), 2);
        assert_eq!(c.params[0].event, "a");
        assert_eq!(c.params[1].event, "b");
    }

    #[test]
    fn param_constructors() {
        let p = Param::db("e", "stock", 7, 100);
        assert_eq!(p.table.as_deref(), Some("stock"));
        assert_eq!(p.vno, Some(7));
        let m = Param::marker("e", 1);
        assert!(m.table.is_none());
        let t = Param::time("timer", 42);
        assert_eq!(t.data.as_deref(), Some("42"));
    }
}
