//! ECA rules attached to event-graph nodes.

use std::fmt;
use std::sync::Arc;

use crate::context::{CouplingMode, ParameterContext};
use crate::occurrence::Occurrence;

/// A rule condition, evaluated against the triggering occurrence.
///
/// The paper's rules carry their condition into the SQL action (the stored
/// procedure's WHERE clauses), so `Always` is the common case; the richer
/// variants support in-agent filtering.
#[derive(Clone)]
pub enum Condition {
    Always,
    Never,
    /// Fires only when the occurrence carries at least this many params.
    MinParams(usize),
    /// Arbitrary predicate.
    Predicate(Arc<dyn Fn(&Occurrence) -> bool + Send + Sync>),
}

impl Condition {
    pub fn eval(&self, occurrence: &Occurrence) -> bool {
        match self {
            Condition::Always => true,
            Condition::Never => false,
            Condition::MinParams(n) => occurrence.params.len() >= *n,
            Condition::Predicate(f) => f(occurrence),
        }
    }
}

impl fmt::Debug for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Always => f.write_str("Always"),
            Condition::Never => f.write_str("Never"),
            Condition::MinParams(n) => write!(f, "MinParams({n})"),
            Condition::Predicate(_) => f.write_str("Predicate(..)"),
        }
    }
}

/// Specification of a rule to attach to an event.
#[derive(Debug, Clone)]
pub struct RuleSpec {
    /// Unique rule name (the paper's internal `db.user.trigger` name).
    pub name: String,
    /// Name of the (registered) event this rule triggers on.
    pub event: String,
    pub condition: Condition,
    pub coupling: CouplingMode,
    /// Larger numbers fire first among simultaneous detections.
    pub priority: i32,
}

impl RuleSpec {
    pub fn new(name: impl Into<String>, event: impl Into<String>) -> Self {
        RuleSpec {
            name: name.into(),
            event: event.into(),
            condition: Condition::Always,
            coupling: CouplingMode::Immediate,
            priority: 0,
        }
    }

    pub fn with_condition(mut self, condition: Condition) -> Self {
        self.condition = condition;
        self
    }

    pub fn with_coupling(mut self, coupling: CouplingMode) -> Self {
        self.coupling = coupling;
        self
    }

    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }
}

/// A rule whose event was detected and whose condition held.
#[derive(Debug, Clone)]
pub struct Firing {
    pub rule: String,
    pub event: String,
    pub coupling: CouplingMode,
    pub priority: i32,
    pub context: ParameterContext,
    pub occurrence: Occurrence,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occurrence::Param;

    fn occ(n_params: usize) -> Occurrence {
        Occurrence::point(
            "e",
            1,
            (0..n_params)
                .map(|i| Param::marker("e", i as i64))
                .collect(),
        )
    }

    #[test]
    fn condition_eval() {
        assert!(Condition::Always.eval(&occ(0)));
        assert!(!Condition::Never.eval(&occ(5)));
        assert!(Condition::MinParams(2).eval(&occ(2)));
        assert!(!Condition::MinParams(3).eval(&occ(2)));
        let pred = Condition::Predicate(Arc::new(|o: &Occurrence| o.t_end == 1));
        assert!(pred.eval(&occ(0)));
    }

    #[test]
    fn builder_chains() {
        let r = RuleSpec::new("r1", "e1")
            .with_coupling(CouplingMode::Detached)
            .with_priority(5)
            .with_condition(Condition::MinParams(1));
        assert_eq!(r.name, "r1");
        assert_eq!(r.coupling, CouplingMode::Detached);
        assert_eq!(r.priority, 5);
        assert!(matches!(r.condition, Condition::MinParams(1)));
    }

    #[test]
    fn condition_debug_format() {
        assert_eq!(format!("{:?}", Condition::Always), "Always");
        assert_eq!(
            format!("{:?}", Condition::Predicate(Arc::new(|_| true))),
            "Predicate(..)"
        );
    }
}
