//! Binary Snoop operators: AND (`^`) and SEQ (`;`). OR is stateless and
//! handled directly by the graph.
//!
//! Context semantics (see [`crate::context::ParameterContext`]):
//! the side arriving second acts as the terminator. In RECENT the stored
//! occurrence survives pairing (the most recent initiator keeps
//! initiating); in CHRONICLE pairing is FIFO and consuming; in CONTINUOUS a
//! terminator detects once per buffered initiator and consumes them; in
//! CUMULATIVE a terminator flushes everything into a single detection.

use crate::context::ParameterContext;
use crate::occurrence::Occurrence;
use crate::operators::buffer::Buffer;

/// State for `E1 AND E2` (conjunction in any order).
#[derive(Debug, Default, Clone)]
pub(crate) struct AndState {
    left: Buffer,
    right: Buffer,
}

impl AndState {
    /// `slot` 0 = left child, 1 = right child.
    pub fn on_child(
        &mut self,
        slot: usize,
        occ: &Occurrence,
        ctx: ParameterContext,
        out: &str,
    ) -> Vec<Occurrence> {
        let arriving_left = slot == 0;
        let other = if arriving_left {
            &mut self.right
        } else {
            &mut self.left
        };
        if other.is_empty() {
            let own = if arriving_left {
                &mut self.left
            } else {
                &mut self.right
            };
            own.store(ctx, occ.clone());
            return Vec::new();
        }
        // Helper keeping parameter order (left-constituents, right-constituents).
        let pair = |mate: &Occurrence, term: &Occurrence| {
            let (l, r) = if arriving_left {
                (term, mate)
            } else {
                (mate, term)
            };
            Occurrence::combine(out, [l, r], term.t_end)
        };
        match ctx {
            ParameterContext::Recent => {
                let mate = other.latest().expect("non-empty").clone();
                let emitted = vec![pair(&mate, occ)];
                // The arriving occurrence becomes its side's most recent
                // initiator; the mate also stays (recent initiators persist).
                let own = if arriving_left {
                    &mut self.left
                } else {
                    &mut self.right
                };
                own.store(ParameterContext::Recent, occ.clone());
                emitted
            }
            ParameterContext::Chronicle => {
                let mate = other.pop_oldest().expect("non-empty");
                vec![pair(&mate, occ)]
            }
            ParameterContext::Continuous => other
                .drain_all()
                .iter()
                .map(|mate| pair(mate, occ))
                .collect(),
            ParameterContext::Cumulative => {
                let mates = other.drain_all();
                let mut parts: Vec<&Occurrence> = Vec::with_capacity(mates.len() + 1);
                if arriving_left {
                    parts.push(occ);
                    parts.extend(mates.iter());
                } else {
                    parts.extend(mates.iter());
                    parts.push(occ);
                }
                vec![Occurrence::combine(out, parts, occ.t_end)]
            }
        }
    }

    pub fn state_size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    pub fn clear_state(&mut self) {
        self.left.clear();
        self.right.clear();
    }
}

/// State for `E1 SEQ E2` (E1 strictly before E2, by interval order:
/// the initiator must have *ended* before the terminator *starts*).
#[derive(Debug, Default, Clone)]
pub(crate) struct SeqState {
    left: Buffer,
}

impl SeqState {
    pub fn on_child(
        &mut self,
        slot: usize,
        occ: &Occurrence,
        ctx: ParameterContext,
        out: &str,
    ) -> Vec<Occurrence> {
        if slot == 0 {
            self.left.store(ctx, occ.clone());
            return Vec::new();
        }
        let before = |o: &Occurrence| o.t_end < occ.t_start;
        match ctx {
            ParameterContext::Recent => match self.left.latest() {
                Some(latest) if before(latest) => {
                    vec![Occurrence::combine(out, [latest, occ], occ.t_end)]
                }
                _ => Vec::new(),
            },
            ParameterContext::Chronicle => match self.left.pop_oldest_where(before) {
                Some(mate) => vec![Occurrence::combine(out, [&mate, occ], occ.t_end)],
                None => Vec::new(),
            },
            ParameterContext::Continuous => self
                .left
                .drain_where(before)
                .iter()
                .map(|mate| Occurrence::combine(out, [mate, occ], occ.t_end))
                .collect(),
            ParameterContext::Cumulative => {
                let mates = self.left.drain_where(before);
                if mates.is_empty() {
                    Vec::new()
                } else {
                    let parts: Vec<&Occurrence> =
                        mates.iter().chain(std::iter::once(occ)).collect();
                    vec![Occurrence::combine(out, parts, occ.t_end)]
                }
            }
        }
    }

    pub fn state_size(&self) -> usize {
        self.left.len()
    }

    pub fn clear_state(&mut self) {
        self.left.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(name: &str, ts: i64) -> Occurrence {
        Occurrence::point(name, ts, vec![crate::occurrence::Param::marker(name, ts)])
    }

    fn first_params(v: &[Occurrence]) -> Vec<(String, i64)> {
        v[0].params
            .iter()
            .map(|p| (p.event.clone(), p.ts))
            .collect()
    }

    // ------------------------------------------------------------- AND

    #[test]
    fn and_recent_latest_pairs_and_persists() {
        let mut s = AndState::default();
        let ctx = ParameterContext::Recent;
        assert!(s.on_child(0, &occ("l", 1), ctx, "x").is_empty());
        let e = s.on_child(1, &occ("r", 2), ctx, "x");
        assert_eq!(e.len(), 1);
        assert_eq!(first_params(&e), vec![("l".into(), 1), ("r".into(), 2)]);
        // l1 persists as most recent left; a new right pairs again.
        let e = s.on_child(1, &occ("r", 3), ctx, "x");
        assert_eq!(e.len(), 1);
        assert_eq!(first_params(&e), vec![("l".into(), 1), ("r".into(), 3)]);
        // A newer left replaces l1.
        let e = s.on_child(0, &occ("l", 4), ctx, "x");
        assert_eq!(first_params(&e), vec![("l".into(), 4), ("r".into(), 3)]);
    }

    #[test]
    fn and_chronicle_fifo_consumes() {
        let mut s = AndState::default();
        let ctx = ParameterContext::Chronicle;
        s.on_child(0, &occ("l", 1), ctx, "x");
        s.on_child(0, &occ("l", 2), ctx, "x");
        let e = s.on_child(1, &occ("r", 3), ctx, "x");
        assert_eq!(first_params(&e), vec![("l".into(), 1), ("r".into(), 3)]);
        let e = s.on_child(1, &occ("r", 4), ctx, "x");
        assert_eq!(first_params(&e), vec![("l".into(), 2), ("r".into(), 4)]);
        // Both consumed now: a third right is buffered, not paired.
        assert!(s.on_child(1, &occ("r", 5), ctx, "x").is_empty());
        assert_eq!(s.state_size(), 1);
    }

    #[test]
    fn and_continuous_one_terminator_many_detections() {
        let mut s = AndState::default();
        let ctx = ParameterContext::Continuous;
        s.on_child(0, &occ("l", 1), ctx, "x");
        s.on_child(0, &occ("l", 2), ctx, "x");
        let e = s.on_child(1, &occ("r", 3), ctx, "x");
        assert_eq!(e.len(), 2);
        assert_eq!(s.state_size(), 0, "initiators consumed");
    }

    #[test]
    fn and_cumulative_single_detection_with_all_params() {
        let mut s = AndState::default();
        let ctx = ParameterContext::Cumulative;
        s.on_child(0, &occ("l", 1), ctx, "x");
        s.on_child(0, &occ("l", 2), ctx, "x");
        let e = s.on_child(1, &occ("r", 3), ctx, "x");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].params.len(), 3);
        assert_eq!(e[0].t_start, 1);
        assert_eq!(e[0].t_end, 3);
        assert_eq!(s.state_size(), 0);
    }

    #[test]
    fn and_is_symmetric() {
        // Right side arriving first works the same way.
        let mut s = AndState::default();
        let ctx = ParameterContext::Chronicle;
        s.on_child(1, &occ("r", 1), ctx, "x");
        let e = s.on_child(0, &occ("l", 2), ctx, "x");
        assert_eq!(e.len(), 1);
        // Parameter order is still left-then-right.
        assert_eq!(first_params(&e), vec![("l".into(), 2), ("r".into(), 1)]);
    }

    // ------------------------------------------------------------- SEQ

    #[test]
    fn seq_requires_strict_order() {
        let mut s = SeqState::default();
        let ctx = ParameterContext::Recent;
        s.on_child(0, &occ("a", 5), ctx, "x");
        // Simultaneous termination start is NOT after: no detection.
        assert!(s.on_child(1, &occ("b", 5), ctx, "x").is_empty());
        let e = s.on_child(1, &occ("b", 6), ctx, "x");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].t_start, 5);
        assert_eq!(e[0].t_end, 6);
    }

    #[test]
    fn seq_right_before_left_never_fires() {
        let mut s = SeqState::default();
        let ctx = ParameterContext::Chronicle;
        assert!(s.on_child(1, &occ("b", 1), ctx, "x").is_empty());
        s.on_child(0, &occ("a", 2), ctx, "x");
        // b at t=1 was not buffered; only a new later b fires.
        let e = s.on_child(1, &occ("b", 3), ctx, "x");
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn seq_recent_initiator_reused() {
        let mut s = SeqState::default();
        let ctx = ParameterContext::Recent;
        s.on_child(0, &occ("a", 1), ctx, "x");
        assert_eq!(s.on_child(1, &occ("b", 2), ctx, "x").len(), 1);
        assert_eq!(s.on_child(1, &occ("b", 3), ctx, "x").len(), 1);
        assert_eq!(s.state_size(), 1);
    }

    #[test]
    fn seq_chronicle_oldest_first() {
        let mut s = SeqState::default();
        let ctx = ParameterContext::Chronicle;
        s.on_child(0, &occ("a", 1), ctx, "x");
        s.on_child(0, &occ("a", 2), ctx, "x");
        let e = s.on_child(1, &occ("b", 3), ctx, "x");
        assert_eq!(e[0].t_start, 1);
        let e = s.on_child(1, &occ("b", 4), ctx, "x");
        assert_eq!(e[0].t_start, 2);
        assert!(s.on_child(1, &occ("b", 5), ctx, "x").is_empty());
    }

    #[test]
    fn seq_continuous_all_initiators() {
        let mut s = SeqState::default();
        let ctx = ParameterContext::Continuous;
        s.on_child(0, &occ("a", 1), ctx, "x");
        s.on_child(0, &occ("a", 2), ctx, "x");
        let e = s.on_child(1, &occ("b", 3), ctx, "x");
        assert_eq!(e.len(), 2);
        assert_eq!(s.state_size(), 0);
    }

    #[test]
    fn seq_cumulative_merges() {
        let mut s = SeqState::default();
        let ctx = ParameterContext::Cumulative;
        s.on_child(0, &occ("a", 1), ctx, "x");
        s.on_child(0, &occ("a", 2), ctx, "x");
        let e = s.on_child(1, &occ("b", 3), ctx, "x");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].params.len(), 3);
    }

    #[test]
    fn seq_continuous_keeps_unqualified_initiators() {
        let mut s = SeqState::default();
        let ctx = ParameterContext::Continuous;
        s.on_child(0, &occ("a", 1), ctx, "x");
        s.on_child(0, &occ("a", 10), ctx, "x");
        // Terminator at t=5: only the t=1 initiator qualifies.
        let e = s.on_child(1, &occ("b", 5), ctx, "x");
        assert_eq!(e.len(), 1);
        assert_eq!(s.state_size(), 1, "t=10 initiator still open");
    }
}
