//! Operator state machines for the event graph, one per Snoop operator.

pub(crate) mod binary;
pub(crate) mod buffer;
pub(crate) mod temporal;
pub(crate) mod window;

use crate::context::ParameterContext;
use crate::occurrence::Occurrence;

use binary::{AndState, SeqState};
use temporal::{PeriodicState, PlusState, TemporalState};
use window::{AperiodicStarState, AperiodicState, NotState};

/// The per-node operator state. `Primitive` nodes have no state — they just
/// fan occurrences out to their subscribers.
#[derive(Debug, Clone)]
pub(crate) enum OpState {
    Primitive,
    Or,
    And(AndState),
    Seq(SeqState),
    Not(NotState),
    Aperiodic(AperiodicState),
    AperiodicStar(AperiodicStarState),
    Periodic(PeriodicState),
    Plus(PlusState),
    Temporal(TemporalState),
}

impl OpState {
    pub fn and() -> Self {
        OpState::And(AndState::default())
    }
    pub fn seq() -> Self {
        OpState::Seq(SeqState::default())
    }
    pub fn not() -> Self {
        OpState::Not(NotState::default())
    }
    pub fn aperiodic() -> Self {
        OpState::Aperiodic(AperiodicState::default())
    }
    pub fn aperiodic_star() -> Self {
        OpState::AperiodicStar(AperiodicStarState::default())
    }
    pub fn periodic(period: i64, param: Option<String>, star: bool) -> Self {
        OpState::Periodic(PeriodicState::new(period, param, star))
    }
    pub fn plus(delta: i64) -> Self {
        OpState::Plus(PlusState::new(delta))
    }
    pub fn temporal(due: i64) -> Self {
        OpState::Temporal(TemporalState::new(due))
    }

    /// Deliver a child occurrence to slot `slot`; returns this node's
    /// resulting emissions.
    pub fn on_child(
        &mut self,
        slot: usize,
        occ: &Occurrence,
        ctx: ParameterContext,
        out: &str,
    ) -> Vec<Occurrence> {
        match self {
            OpState::Primitive => Vec::new(),
            OpState::Or => {
                // OR re-emits every constituent occurrence under its name.
                vec![Occurrence::combine(out, [occ], occ.t_end)]
            }
            OpState::And(s) => s.on_child(slot, occ, ctx, out),
            OpState::Seq(s) => s.on_child(slot, occ, ctx, out),
            OpState::Not(s) => s.on_child(slot, occ, ctx, out),
            OpState::Aperiodic(s) => s.on_child(slot, occ, ctx, out),
            OpState::AperiodicStar(s) => s.on_child(slot, occ, ctx, out),
            OpState::Periodic(s) => s.on_child(slot, occ, ctx, out),
            OpState::Plus(s) => s.on_child(occ),
            OpState::Temporal(_) => Vec::new(),
        }
    }

    /// Earliest pending timer, if this node is temporal.
    pub fn next_due(&self) -> Option<i64> {
        match self {
            OpState::Periodic(s) => s.next_due(),
            OpState::Plus(s) => s.next_due(),
            OpState::Temporal(s) => s.next_due(),
            _ => None,
        }
    }

    /// Fire all timers due at or before `ts`.
    pub fn fire_due(&mut self, ts: i64, out: &str) -> Vec<Occurrence> {
        match self {
            OpState::Periodic(s) => s.fire_due(ts, out),
            OpState::Plus(s) => s.fire_due(ts, out),
            OpState::Temporal(s) => s.fire_due(ts, out),
            _ => Vec::new(),
        }
    }

    /// Number of buffered occurrences (memory metric for experiment E9).
    pub fn state_size(&self) -> usize {
        match self {
            OpState::Primitive | OpState::Or => 0,
            OpState::And(s) => s.state_size(),
            OpState::Seq(s) => s.state_size(),
            OpState::Not(s) => s.state_size(),
            OpState::Aperiodic(s) => s.state_size(),
            OpState::AperiodicStar(s) => s.state_size(),
            OpState::Periodic(s) => s.state_size(),
            OpState::Plus(s) => s.state_size(),
            OpState::Temporal(s) => s.state_size(),
        }
    }

    /// Discard all buffered occurrences (windows, pairings, pending
    /// timers). One-shot temporal events keep their fired flag.
    pub fn clear_state(&mut self) {
        match self {
            OpState::Primitive | OpState::Or | OpState::Temporal(_) => {}
            OpState::And(s) => s.clear_state(),
            OpState::Seq(s) => s.clear_state(),
            OpState::Not(s) => s.clear_state(),
            OpState::Aperiodic(s) => s.clear_state(),
            OpState::AperiodicStar(s) => s.clear_state(),
            OpState::Periodic(s) => s.clear_state(),
            OpState::Plus(s) => s.clear_state(),
        }
    }

    /// Operator name for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            OpState::Primitive => "PRIMITIVE",
            OpState::Or => "OR",
            OpState::And(_) => "AND",
            OpState::Seq(_) => "SEQ",
            OpState::Not(_) => "NOT",
            OpState::Aperiodic(_) => "A",
            OpState::AperiodicStar(_) => "A*",
            OpState::Periodic(_) => "P",
            OpState::Plus(_) => "PLUS",
            OpState::Temporal(_) => "TEMPORAL",
        }
    }
}
