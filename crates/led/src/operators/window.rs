//! Window operators: `NOT(E1,E2,E3)`, `A(E1,E2,E3)` and `A*(E1,E2,E3)`.
//!
//! Slot convention (matches the Snoop argument order used in
//! `snoop::ast`): slot 0 = E1 (initiator / window opener), slot 1 = E2
//! (the "middle" event), slot 2 = E3 (terminator / window closer).

use crate::context::ParameterContext;
use crate::occurrence::Occurrence;
use crate::operators::buffer::Buffer;

/// `NOT(E1, E2, E3)` — detected at E3 when no E2 occurred since the
/// pairing E1. Any E2 occurrence cancels all currently open initiators
/// (they all precede it, so none of them can satisfy the non-occurrence
/// condition with any later terminator).
#[derive(Debug, Default, Clone)]
pub(crate) struct NotState {
    starts: Buffer,
}

impl NotState {
    pub fn on_child(
        &mut self,
        slot: usize,
        occ: &Occurrence,
        ctx: ParameterContext,
        out: &str,
    ) -> Vec<Occurrence> {
        match slot {
            0 => {
                self.starts.store(ctx, occ.clone());
                Vec::new()
            }
            1 => {
                self.starts.clear();
                Vec::new()
            }
            _ => {
                let before = |o: &Occurrence| o.t_end < occ.t_start;
                match ctx {
                    ParameterContext::Recent => match self.starts.latest() {
                        Some(latest) if before(latest) => {
                            vec![Occurrence::combine(out, [latest, occ], occ.t_end)]
                        }
                        _ => Vec::new(),
                    },
                    ParameterContext::Chronicle => match self.starts.pop_oldest_where(before) {
                        Some(mate) => {
                            vec![Occurrence::combine(out, [&mate, occ], occ.t_end)]
                        }
                        None => Vec::new(),
                    },
                    ParameterContext::Continuous => self
                        .starts
                        .drain_where(before)
                        .iter()
                        .map(|mate| Occurrence::combine(out, [mate, occ], occ.t_end))
                        .collect(),
                    ParameterContext::Cumulative => {
                        let mates = self.starts.drain_where(before);
                        if mates.is_empty() {
                            Vec::new()
                        } else {
                            let parts: Vec<&Occurrence> =
                                mates.iter().chain(std::iter::once(occ)).collect();
                            vec![Occurrence::combine(out, parts, occ.t_end)]
                        }
                    }
                }
            }
        }
    }

    pub fn state_size(&self) -> usize {
        self.starts.len()
    }

    pub fn clear_state(&mut self) {
        self.starts.clear();
    }
}

/// `A(E1, E2, E3)` — detected at *each* E2 occurring inside an open window
/// `[E1, E3]`. E3 closes windows (per context) without emitting.
#[derive(Debug, Default, Clone)]
pub(crate) struct AperiodicState {
    starts: Buffer,
}

impl AperiodicState {
    pub fn on_child(
        &mut self,
        slot: usize,
        occ: &Occurrence,
        ctx: ParameterContext,
        out: &str,
    ) -> Vec<Occurrence> {
        match slot {
            0 => {
                self.starts.store(ctx, occ.clone());
                Vec::new()
            }
            1 => {
                // E2: emit per context; windows stay open until E3.
                let inside = |o: &Occurrence| o.t_end < occ.t_start;
                match ctx {
                    ParameterContext::Recent => match self.starts.latest() {
                        Some(latest) if inside(latest) => {
                            vec![Occurrence::combine(out, [latest, occ], occ.t_end)]
                        }
                        _ => Vec::new(),
                    },
                    ParameterContext::Chronicle => match self.starts.oldest() {
                        Some(oldest) if inside(oldest) => {
                            vec![Occurrence::combine(out, [oldest, occ], occ.t_end)]
                        }
                        _ => Vec::new(),
                    },
                    ParameterContext::Continuous => self
                        .starts
                        .iter()
                        .filter(|o| inside(o))
                        .map(|mate| Occurrence::combine(out, [mate, occ], occ.t_end))
                        .collect(),
                    ParameterContext::Cumulative => {
                        let mates: Vec<&Occurrence> =
                            self.starts.iter().filter(|o| inside(o)).collect();
                        if mates.is_empty() {
                            Vec::new()
                        } else {
                            let parts: Vec<&Occurrence> =
                                mates.into_iter().chain(std::iter::once(occ)).collect();
                            vec![Occurrence::combine(out, parts, occ.t_end)]
                        }
                    }
                }
            }
            _ => {
                // E3 closes windows: the most recent one (RECENT), the
                // oldest (CHRONICLE), or all (CONTINUOUS/CUMULATIVE).
                match ctx {
                    ParameterContext::Recent => self.starts.clear(),
                    ParameterContext::Chronicle => {
                        let _ = self.starts.pop_oldest();
                    }
                    ParameterContext::Continuous | ParameterContext::Cumulative => {
                        self.starts.clear()
                    }
                }
                Vec::new()
            }
        }
    }

    pub fn state_size(&self) -> usize {
        self.starts.len()
    }

    pub fn clear_state(&mut self) {
        self.starts.clear();
    }
}

/// One open `A*` window: the initiator plus the E2s accumulated so far.
#[derive(Debug, Clone)]
struct StarWindow {
    start: Occurrence,
    mids: Vec<Occurrence>,
}

/// `A*(E1, E2, E3)` — accumulates E2 occurrences inside the window and
/// detects exactly once, at E3, with everything collected (possibly zero
/// E2s — A* is a windowed collector, so an empty window still detects).
#[derive(Debug, Default, Clone)]
pub(crate) struct AperiodicStarState {
    windows: Vec<StarWindow>,
}

impl AperiodicStarState {
    pub fn on_child(
        &mut self,
        slot: usize,
        occ: &Occurrence,
        ctx: ParameterContext,
        out: &str,
    ) -> Vec<Occurrence> {
        match slot {
            0 => {
                if ctx == ParameterContext::Recent {
                    self.windows.clear();
                }
                self.windows.push(StarWindow {
                    start: occ.clone(),
                    mids: Vec::new(),
                });
                Vec::new()
            }
            1 => {
                for w in &mut self.windows {
                    if w.start.t_end < occ.t_start {
                        w.mids.push(occ.clone());
                    }
                }
                Vec::new()
            }
            _ => {
                let emit = |w: &StarWindow| {
                    let parts: Vec<&Occurrence> = std::iter::once(&w.start)
                        .chain(w.mids.iter())
                        .chain(std::iter::once(occ))
                        .collect();
                    Occurrence::combine(out, parts, occ.t_end)
                };
                let qualifying = |w: &StarWindow| w.start.t_end < occ.t_start;
                match ctx {
                    ParameterContext::Recent => {
                        let result = match self.windows.last() {
                            Some(w) if qualifying(w) => vec![emit(w)],
                            _ => Vec::new(),
                        };
                        self.windows.clear();
                        result
                    }
                    ParameterContext::Chronicle => match self.windows.iter().position(qualifying) {
                        Some(i) => {
                            let w = self.windows.remove(i);
                            vec![emit(&w)]
                        }
                        None => Vec::new(),
                    },
                    ParameterContext::Continuous => {
                        let (ready, open): (Vec<_>, Vec<_>) = std::mem::take(&mut self.windows)
                            .into_iter()
                            .partition(|w| qualifying(w));
                        self.windows = open;
                        ready.iter().map(emit).collect()
                    }
                    ParameterContext::Cumulative => {
                        let (ready, open): (Vec<_>, Vec<_>) = std::mem::take(&mut self.windows)
                            .into_iter()
                            .partition(|w| qualifying(w));
                        self.windows = open;
                        if ready.is_empty() {
                            Vec::new()
                        } else {
                            let mut parts: Vec<&Occurrence> = Vec::new();
                            for w in &ready {
                                parts.push(&w.start);
                                parts.extend(w.mids.iter());
                            }
                            parts.push(occ);
                            vec![Occurrence::combine(out, parts, occ.t_end)]
                        }
                    }
                }
            }
        }
    }

    pub fn state_size(&self) -> usize {
        self.windows.iter().map(|w| 1 + w.mids.len()).sum()
    }

    pub fn clear_state(&mut self) {
        self.windows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(name: &str, ts: i64) -> Occurrence {
        Occurrence::point(name, ts, vec![crate::occurrence::Param::marker(name, ts)])
    }

    // ------------------------------------------------------------- NOT

    #[test]
    fn not_fires_without_mid() {
        let mut s = NotState::default();
        let ctx = ParameterContext::Recent;
        s.on_child(0, &occ("open", 1), ctx, "x");
        let e = s.on_child(2, &occ("close", 3), ctx, "x");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].t_start, 1);
        assert_eq!(e[0].t_end, 3);
    }

    #[test]
    fn not_cancelled_by_mid() {
        let mut s = NotState::default();
        let ctx = ParameterContext::Recent;
        s.on_child(0, &occ("open", 1), ctx, "x");
        s.on_child(1, &occ("cancel", 2), ctx, "x");
        assert!(s.on_child(2, &occ("close", 3), ctx, "x").is_empty());
        // A fresh initiator after the cancel works again.
        s.on_child(0, &occ("open", 4), ctx, "x");
        assert_eq!(s.on_child(2, &occ("close", 5), ctx, "x").len(), 1);
    }

    #[test]
    fn not_mid_cancels_all_open_initiators() {
        let mut s = NotState::default();
        let ctx = ParameterContext::Continuous;
        s.on_child(0, &occ("open", 1), ctx, "x");
        s.on_child(0, &occ("open", 2), ctx, "x");
        s.on_child(1, &occ("cancel", 3), ctx, "x");
        assert!(s.on_child(2, &occ("close", 4), ctx, "x").is_empty());
        assert_eq!(s.state_size(), 0);
    }

    #[test]
    fn not_chronicle_consumes_oldest() {
        let mut s = NotState::default();
        let ctx = ParameterContext::Chronicle;
        s.on_child(0, &occ("open", 1), ctx, "x");
        s.on_child(0, &occ("open", 2), ctx, "x");
        let e = s.on_child(2, &occ("close", 3), ctx, "x");
        assert_eq!(e[0].t_start, 1);
        let e = s.on_child(2, &occ("close", 4), ctx, "x");
        assert_eq!(e[0].t_start, 2);
    }

    // --------------------------------------------------------------- A

    #[test]
    fn aperiodic_fires_per_mid_in_window() {
        let mut s = AperiodicState::default();
        let ctx = ParameterContext::Recent;
        s.on_child(0, &occ("start", 1), ctx, "x");
        assert_eq!(s.on_child(1, &occ("tick", 2), ctx, "x").len(), 1);
        assert_eq!(s.on_child(1, &occ("tick", 3), ctx, "x").len(), 1);
        s.on_child(2, &occ("stop", 4), ctx, "x");
        assert!(s.on_child(1, &occ("tick", 5), ctx, "x").is_empty());
    }

    #[test]
    fn aperiodic_no_window_no_fire() {
        let mut s = AperiodicState::default();
        let ctx = ParameterContext::Recent;
        assert!(s.on_child(1, &occ("tick", 1), ctx, "x").is_empty());
    }

    #[test]
    fn aperiodic_continuous_fires_per_open_window() {
        let mut s = AperiodicState::default();
        let ctx = ParameterContext::Continuous;
        s.on_child(0, &occ("start", 1), ctx, "x");
        s.on_child(0, &occ("start", 2), ctx, "x");
        let e = s.on_child(1, &occ("tick", 3), ctx, "x");
        assert_eq!(e.len(), 2);
        // Windows still open: another tick fires twice more.
        assert_eq!(s.on_child(1, &occ("tick", 4), ctx, "x").len(), 2);
    }

    #[test]
    fn aperiodic_cumulative_merges_open_windows() {
        let mut s = AperiodicState::default();
        let ctx = ParameterContext::Cumulative;
        s.on_child(0, &occ("start", 1), ctx, "x");
        s.on_child(0, &occ("start", 2), ctx, "x");
        let e = s.on_child(1, &occ("tick", 3), ctx, "x");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].params.len(), 3);
    }

    #[test]
    fn aperiodic_chronicle_close_removes_oldest_window() {
        let mut s = AperiodicState::default();
        let ctx = ParameterContext::Chronicle;
        s.on_child(0, &occ("start", 1), ctx, "x");
        s.on_child(0, &occ("start", 2), ctx, "x");
        s.on_child(2, &occ("stop", 3), ctx, "x");
        assert_eq!(s.state_size(), 1);
        let e = s.on_child(1, &occ("tick", 4), ctx, "x");
        assert_eq!(e[0].t_start, 2, "remaining window is the newer one");
    }

    // -------------------------------------------------------------- A*

    #[test]
    fn astar_accumulates_and_fires_once_at_end() {
        let mut s = AperiodicStarState::default();
        let ctx = ParameterContext::Recent;
        s.on_child(0, &occ("start", 1), ctx, "x");
        assert!(s.on_child(1, &occ("tick", 2), ctx, "x").is_empty());
        assert!(s.on_child(1, &occ("tick", 3), ctx, "x").is_empty());
        let e = s.on_child(2, &occ("stop", 4), ctx, "x");
        assert_eq!(e.len(), 1);
        // start + 2 ticks + stop.
        assert_eq!(e[0].params.len(), 4);
        assert_eq!(s.state_size(), 0);
    }

    #[test]
    fn astar_empty_window_still_detects() {
        let mut s = AperiodicStarState::default();
        let ctx = ParameterContext::Recent;
        s.on_child(0, &occ("start", 1), ctx, "x");
        let e = s.on_child(2, &occ("stop", 2), ctx, "x");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].params.len(), 2);
    }

    #[test]
    fn astar_without_initiator_does_not_detect() {
        let mut s = AperiodicStarState::default();
        let ctx = ParameterContext::Recent;
        assert!(s.on_child(2, &occ("stop", 1), ctx, "x").is_empty());
    }

    #[test]
    fn astar_continuous_one_per_window() {
        let mut s = AperiodicStarState::default();
        let ctx = ParameterContext::Continuous;
        s.on_child(0, &occ("start", 1), ctx, "x");
        s.on_child(0, &occ("start", 2), ctx, "x");
        s.on_child(1, &occ("tick", 3), ctx, "x");
        let e = s.on_child(2, &occ("stop", 4), ctx, "x");
        assert_eq!(e.len(), 2);
        // Each window accumulated the same tick.
        assert_eq!(e[0].params.len(), 3);
        assert_eq!(e[1].params.len(), 3);
    }

    #[test]
    fn astar_cumulative_single_merged_detection() {
        let mut s = AperiodicStarState::default();
        let ctx = ParameterContext::Cumulative;
        s.on_child(0, &occ("start", 1), ctx, "x");
        s.on_child(0, &occ("start", 2), ctx, "x");
        s.on_child(1, &occ("tick", 3), ctx, "x");
        let e = s.on_child(2, &occ("stop", 4), ctx, "x");
        assert_eq!(e.len(), 1);
        // start1 + tick, start2 + tick, stop = 5 params.
        assert_eq!(e[0].params.len(), 5);
    }

    #[test]
    fn astar_recent_newer_start_resets() {
        let mut s = AperiodicStarState::default();
        let ctx = ParameterContext::Recent;
        s.on_child(0, &occ("start", 1), ctx, "x");
        s.on_child(1, &occ("tick", 2), ctx, "x");
        s.on_child(0, &occ("start", 3), ctx, "x"); // resets accumulation
        let e = s.on_child(2, &occ("stop", 4), ctx, "x");
        assert_eq!(e[0].params.len(), 2, "old tick discarded");
    }
}
