//! Shared occurrence buffer with context-aware storage and pairing.

use crate::context::ParameterContext;
use crate::occurrence::Occurrence;

/// An ordered buffer of open (unconsumed) occurrences for one operand of a
/// composite operator. Oldest first.
#[derive(Debug, Default, Clone)]
pub(crate) struct Buffer {
    items: Vec<Occurrence>,
}

impl Buffer {
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Store an occurrence under the given context. In RECENT only the most
    /// recent occurrence is retained (it replaces any previous one); in all
    /// other contexts occurrences accumulate in arrival order.
    pub fn store(&mut self, ctx: ParameterContext, occ: Occurrence) {
        if ctx == ParameterContext::Recent {
            self.items.clear();
        }
        self.items.push(occ);
    }

    /// The most recent occurrence, if any.
    pub fn latest(&self) -> Option<&Occurrence> {
        self.items.last()
    }

    /// The oldest occurrence, if any.
    pub fn oldest(&self) -> Option<&Occurrence> {
        self.items.first()
    }

    /// Remove and return the oldest occurrence satisfying `pred`.
    pub fn pop_oldest_where(&mut self, pred: impl Fn(&Occurrence) -> bool) -> Option<Occurrence> {
        let idx = self.items.iter().position(pred)?;
        Some(self.items.remove(idx))
    }

    /// Remove the oldest occurrence unconditionally.
    pub fn pop_oldest(&mut self) -> Option<Occurrence> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.items.remove(0))
        }
    }

    /// Remove and return all occurrences satisfying `pred`, oldest first.
    pub fn drain_where(&mut self, pred: impl Fn(&Occurrence) -> bool) -> Vec<Occurrence> {
        let mut kept = Vec::with_capacity(self.items.len());
        let mut taken = Vec::new();
        for o in self.items.drain(..) {
            if pred(&o) {
                taken.push(o);
            } else {
                kept.push(o);
            }
        }
        self.items = kept;
        taken
    }

    /// Remove and return everything, oldest first.
    pub fn drain_all(&mut self) -> Vec<Occurrence> {
        std::mem::take(&mut self.items)
    }

    /// Immutable view of the open occurrences, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Occurrence> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occurrence::Occurrence;

    fn occ(ts: i64) -> Occurrence {
        Occurrence::point("e", ts, vec![])
    }

    #[test]
    fn recent_keeps_only_latest() {
        let mut b = Buffer::default();
        b.store(ParameterContext::Recent, occ(1));
        b.store(ParameterContext::Recent, occ(2));
        assert_eq!(b.len(), 1);
        assert_eq!(b.latest().unwrap().t_end, 2);
    }

    #[test]
    fn other_contexts_accumulate() {
        for ctx in [
            ParameterContext::Chronicle,
            ParameterContext::Continuous,
            ParameterContext::Cumulative,
        ] {
            let mut b = Buffer::default();
            b.store(ctx, occ(1));
            b.store(ctx, occ(2));
            assert_eq!(b.len(), 2);
            assert_eq!(b.oldest().unwrap().t_end, 1);
        }
    }

    #[test]
    fn pop_oldest_where_respects_predicate() {
        let mut b = Buffer::default();
        b.store(ParameterContext::Chronicle, occ(1));
        b.store(ParameterContext::Chronicle, occ(5));
        let got = b.pop_oldest_where(|o| o.t_end > 2).unwrap();
        assert_eq!(got.t_end, 5);
        assert_eq!(b.len(), 1);
        assert!(b.pop_oldest_where(|o| o.t_end > 100).is_none());
    }

    #[test]
    fn drain_where_preserves_rest() {
        let mut b = Buffer::default();
        for t in [1, 2, 3, 4] {
            b.store(ParameterContext::Continuous, occ(t));
        }
        let taken = b.drain_where(|o| o.t_end % 2 == 0);
        assert_eq!(taken.len(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.oldest().unwrap().t_end, 1);
    }
}
