//! Temporal operators: `P`, `P*`, `PLUS` and standalone time events.
//!
//! These are timer-driven: the detector advances a virtual clock and asks
//! each temporal node for its earliest due time (`next_due`), then fires
//! the due occurrences in timestamp order (`fire_due`).

use crate::context::ParameterContext;
use crate::occurrence::{Occurrence, Param};

/// One open periodic window.
#[derive(Debug, Clone)]
struct PWindow {
    start: Occurrence,
    next_fire: i64,
    /// Fire timestamps collected so far (used by `P*`).
    fires: Vec<i64>,
}

/// `P(E1, [t], E3)` — fires every `t` microseconds inside `[E1, E3]`.
#[derive(Debug, Clone)]
pub(crate) struct PeriodicState {
    period: i64,
    /// Collector parameter name from `[t]:param`, if given.
    param: Option<String>,
    /// When true, accumulate fires and emit once at E3 (`P*` behaviour).
    star: bool,
    windows: Vec<PWindow>,
}

impl PeriodicState {
    pub fn new(period: i64, param: Option<String>, star: bool) -> Self {
        PeriodicState {
            period: period.max(1),
            param,
            star,
            windows: Vec::new(),
        }
    }

    /// slot 0 = E1 (open window), slot 2 = E3 (close window). There is no
    /// slot 1: the "middle" of a periodic operator is the clock itself.
    pub fn on_child(
        &mut self,
        slot: usize,
        occ: &Occurrence,
        ctx: ParameterContext,
        out: &str,
    ) -> Vec<Occurrence> {
        match slot {
            0 => {
                if ctx == ParameterContext::Recent {
                    self.windows.clear();
                }
                self.windows.push(PWindow {
                    start: occ.clone(),
                    next_fire: occ.t_end + self.period,
                    fires: Vec::new(),
                });
                Vec::new()
            }
            _ => {
                // E3: close windows per context; P* emits its accumulation.
                let closed: Vec<PWindow> = match ctx {
                    ParameterContext::Recent
                    | ParameterContext::Continuous
                    | ParameterContext::Cumulative => std::mem::take(&mut self.windows),
                    ParameterContext::Chronicle => {
                        if self.windows.is_empty() {
                            Vec::new()
                        } else {
                            vec![self.windows.remove(0)]
                        }
                    }
                };
                if !self.star || closed.is_empty() {
                    return Vec::new();
                }
                let emit_one = |w: &PWindow| {
                    let mut o = Occurrence::combine(out, [&w.start, occ], occ.t_end);
                    let insert_at = o.params.len() - occ.params.len();
                    for (k, ts) in w.fires.iter().enumerate() {
                        o.params.insert(insert_at + k, self.time_param(out, *ts));
                    }
                    o
                };
                match ctx {
                    ParameterContext::Cumulative => {
                        let mut o = Occurrence::combine(
                            out,
                            closed.iter().map(|w| &w.start).chain(std::iter::once(occ)),
                            occ.t_end,
                        );
                        let insert_at = o.params.len() - occ.params.len();
                        let mut k = 0;
                        for w in &closed {
                            for ts in &w.fires {
                                o.params.insert(insert_at + k, self.time_param(out, *ts));
                                k += 1;
                            }
                        }
                        vec![o]
                    }
                    _ => closed.iter().map(emit_one).collect(),
                }
            }
        }
    }

    fn time_param(&self, out: &str, ts: i64) -> Param {
        let mut p = Param::time(out, ts);
        if let Some(name) = &self.param {
            p.data = Some(format!("{name}={ts}"));
        }
        p
    }

    pub fn next_due(&self) -> Option<i64> {
        self.windows.iter().map(|w| w.next_fire).min()
    }

    /// Fire all windows due exactly at `ts`.
    pub fn fire_due(&mut self, ts: i64, out: &str) -> Vec<Occurrence> {
        let mut emitted = Vec::new();
        let period = self.period;
        let star = self.star;
        let param = self.param.clone();
        for w in &mut self.windows {
            while w.next_fire <= ts {
                let fire_ts = w.next_fire;
                w.next_fire += period;
                if star {
                    w.fires.push(fire_ts);
                } else {
                    let mut o = Occurrence::combine(out, [&w.start], fire_ts);
                    let mut p = Param::time(out, fire_ts);
                    if let Some(name) = &param {
                        p.data = Some(format!("{name}={fire_ts}"));
                    }
                    o.params.push(p);
                    o.t_end = fire_ts;
                    emitted.push(o);
                }
            }
        }
        emitted
    }

    pub fn state_size(&self) -> usize {
        self.windows.iter().map(|w| 1 + w.fires.len()).sum()
    }

    pub fn clear_state(&mut self) {
        self.windows.clear();
    }
}

/// `E PLUS [t]` — one delayed occurrence per constituent occurrence.
#[derive(Debug, Clone)]
pub(crate) struct PlusState {
    delta: i64,
    pending: Vec<(Occurrence, i64)>,
}

impl PlusState {
    pub fn new(delta: i64) -> Self {
        PlusState {
            delta: delta.max(1),
            pending: Vec::new(),
        }
    }

    pub fn on_child(&mut self, occ: &Occurrence) -> Vec<Occurrence> {
        self.pending.push((occ.clone(), occ.t_end + self.delta));
        Vec::new()
    }

    pub fn next_due(&self) -> Option<i64> {
        self.pending.iter().map(|(_, due)| *due).min()
    }

    pub fn fire_due(&mut self, ts: i64, out: &str) -> Vec<Occurrence> {
        let mut emitted = Vec::new();
        let mut still = Vec::with_capacity(self.pending.len());
        for (occ, due) in self.pending.drain(..) {
            if due <= ts {
                let mut o = Occurrence::combine(out, [&occ], due);
                o.params.push(Param::time(out, due));
                emitted.push(o);
            } else {
                still.push((occ, due));
            }
        }
        self.pending = still;
        emitted
    }

    pub fn state_size(&self) -> usize {
        self.pending.len()
    }

    pub fn clear_state(&mut self) {
        self.pending.clear();
    }
}

/// Standalone temporal event: fires exactly once at an absolute time.
#[derive(Debug, Clone)]
pub(crate) struct TemporalState {
    due: i64,
    fired: bool,
}

impl TemporalState {
    pub fn new(due: i64) -> Self {
        TemporalState { due, fired: false }
    }

    pub fn next_due(&self) -> Option<i64> {
        if self.fired {
            None
        } else {
            Some(self.due)
        }
    }

    pub fn fire_due(&mut self, ts: i64, out: &str) -> Vec<Occurrence> {
        if self.fired || ts < self.due {
            return Vec::new();
        }
        self.fired = true;
        vec![Occurrence::point(
            out,
            self.due,
            vec![Param::time(out, self.due)],
        )]
    }

    pub fn state_size(&self) -> usize {
        usize::from(!self.fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(name: &str, ts: i64) -> Occurrence {
        Occurrence::point(name, ts, vec![Param::marker(name, ts)])
    }

    #[test]
    fn periodic_fires_every_period() {
        let mut s = PeriodicState::new(10, None, false);
        let ctx = ParameterContext::Recent;
        s.on_child(0, &occ("start", 100), ctx, "p");
        assert_eq!(s.next_due(), Some(110));
        let e = s.fire_due(110, "p");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].t_end, 110);
        assert_eq!(s.next_due(), Some(120));
        // Catch-up: firing at t=145 emits 120, 130, 140.
        let e = s.fire_due(145, "p");
        assert_eq!(e.len(), 3);
        assert_eq!(s.next_due(), Some(150));
    }

    #[test]
    fn periodic_close_stops_firing() {
        let mut s = PeriodicState::new(10, None, false);
        let ctx = ParameterContext::Recent;
        s.on_child(0, &occ("start", 100), ctx, "p");
        s.on_child(2, &occ("stop", 115), ctx, "p");
        assert_eq!(s.next_due(), None);
    }

    #[test]
    fn periodic_star_accumulates_until_close() {
        let mut s = PeriodicState::new(10, Some("ts".into()), true);
        let ctx = ParameterContext::Recent;
        s.on_child(0, &occ("start", 100), ctx, "p");
        assert!(s.fire_due(110, "p").is_empty());
        assert!(s.fire_due(120, "p").is_empty());
        let e = s.on_child(2, &occ("stop", 125), ctx, "p");
        assert_eq!(e.len(), 1);
        // start + 2 fires + stop.
        assert_eq!(e[0].params.len(), 4);
        assert_eq!(e[0].params[1].data.as_deref(), Some("ts=110"));
        assert_eq!(e[0].params[2].data.as_deref(), Some("ts=120"));
    }

    #[test]
    fn periodic_chronicle_closes_oldest_window_only() {
        let mut s = PeriodicState::new(10, None, false);
        let ctx = ParameterContext::Chronicle;
        s.on_child(0, &occ("a", 100), ctx, "p");
        s.on_child(0, &occ("b", 105), ctx, "p");
        s.on_child(2, &occ("stop", 106), ctx, "p");
        assert_eq!(s.state_size(), 1);
        assert_eq!(s.next_due(), Some(115));
    }

    #[test]
    fn periodic_continuous_multiple_windows_fire() {
        let mut s = PeriodicState::new(10, None, false);
        let ctx = ParameterContext::Continuous;
        s.on_child(0, &occ("a", 100), ctx, "p");
        s.on_child(0, &occ("b", 105), ctx, "p");
        let e = s.fire_due(115, "p");
        assert_eq!(e.len(), 2); // 110 from a, 115 from b.
    }

    #[test]
    fn plus_fires_once_per_occurrence() {
        let mut s = PlusState::new(50);
        s.on_child(&occ("e", 100));
        s.on_child(&occ("e", 120));
        assert_eq!(s.next_due(), Some(150));
        let e = s.fire_due(150, "x");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].t_end, 150);
        assert_eq!(s.next_due(), Some(170));
        let e = s.fire_due(200, "x");
        assert_eq!(e.len(), 1);
        assert_eq!(s.next_due(), None);
    }

    #[test]
    fn plus_carries_constituent_params() {
        let mut s = PlusState::new(10);
        s.on_child(&Occurrence::point(
            "e",
            5,
            vec![Param::db("e", "stock", 3, 5)],
        ));
        let e = s.fire_due(15, "x");
        assert_eq!(e[0].params.len(), 2);
        assert_eq!(e[0].params[0].vno, Some(3));
    }

    #[test]
    fn temporal_fires_once() {
        let mut s = TemporalState::new(500);
        assert_eq!(s.next_due(), Some(500));
        assert!(s.fire_due(499, "t").is_empty());
        let e = s.fire_due(500, "t");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].t_end, 500);
        assert_eq!(s.next_due(), None);
        assert!(s.fire_due(600, "t").is_empty());
    }

    #[test]
    fn state_sizes() {
        let mut p = PeriodicState::new(10, None, true);
        p.on_child(0, &occ("s", 0), ParameterContext::Recent, "p");
        p.fire_due(10, "p");
        assert_eq!(p.state_size(), 2); // window + one accumulated fire

        let mut plus = PlusState::new(5);
        plus.on_child(&occ("e", 0));
        assert_eq!(plus.state_size(), 1);

        let t = TemporalState::new(1);
        assert_eq!(t.state_size(), 1);
    }
}
