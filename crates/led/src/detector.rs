//! The Local Event Detector (LED): an event graph over Snoop operators.
//!
//! Mirrors Sentinel's LED as used by the paper (§2, §5.3): primitive events
//! are leaf nodes signalled from outside (the Event Notifier, in the
//! agent); composite events are operator nodes built from a parsed
//! [`snoop::EventExpr`]; rules attach to any registered event and fire with
//! the detected occurrence, its parameter-context composition already
//! applied.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use snoop::{EventExpr, TimeSpec};

use crate::context::{CouplingMode, ParameterContext};
use crate::occurrence::{Occurrence, Param};
use crate::operators::OpState;
use crate::rule::{Firing, RuleSpec};

/// Errors from detector operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedError {
    DuplicateEvent(String),
    UnknownEvent(String),
    DuplicateRule(String),
    UnknownRule(String),
    /// The event still has rules or other events depending on it.
    HasDependents(String),
    /// A node's buffered state exceeded the configured limit — the
    /// circuit breaker for unbounded CHRONICLE/CONTINUOUS growth (see
    /// experiment E9). Carries (event name, buffered size).
    StateLimitExceeded(String, usize),
}

impl fmt::Display for LedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedError::DuplicateEvent(n) => write!(f, "event '{n}' already exists"),
            LedError::UnknownEvent(n) => write!(f, "unknown event '{n}'"),
            LedError::DuplicateRule(n) => write!(f, "rule '{n}' already exists"),
            LedError::UnknownRule(n) => write!(f, "unknown rule '{n}'"),
            LedError::HasDependents(n) => write!(f, "event '{n}' has dependents"),
            LedError::StateLimitExceeded(n, size) => write!(
                f,
                "event '{n}' buffers {size} occurrences, over the configured limit"
            ),
        }
    }
}

impl std::error::Error for LedError {}

struct Node {
    state: OpState,
    context: ParameterContext,
    /// The event name this node emits under.
    out_name: String,
    /// (parent node, child slot) subscriptions.
    parents: Vec<(usize, usize)>,
    /// Child node ids, in slot order (for subtree walks).
    children: Vec<usize>,
    /// Names of rules attached to this node.
    rules: Vec<String>,
}

struct RuleEntry {
    spec: RuleSpec,
    node: usize,
}

/// Detector counters (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Primitive signals received.
    pub signals: u64,
    /// Occurrences produced by any node (including re-emissions).
    pub emissions: u64,
    /// Rule firings (all coupling modes).
    pub firings: u64,
}

/// The Local Event Detector.
pub struct Detector {
    nodes: Vec<Node>,
    names: HashMap<String, usize>,
    rules: HashMap<String, RuleEntry>,
    deferred: Vec<Firing>,
    now: i64,
    stats: DetectorStats,
    /// Per-node buffered-occurrence ceiling; `None` disables the check.
    state_limit: Option<usize>,
}

impl Default for Detector {
    fn default() -> Self {
        Detector::new()
    }
}

impl Detector {
    pub fn new() -> Self {
        Detector {
            nodes: Vec::new(),
            names: HashMap::new(),
            rules: HashMap::new(),
            deferred: Vec::new(),
            now: 0,
            stats: DetectorStats::default(),
            state_limit: None,
        }
    }

    /// Install a per-node buffered-occurrence ceiling. When any operator
    /// node's state exceeds it after a signal, [`Detector::signal`] returns
    /// [`LedError::StateLimitExceeded`] — detection state is preserved, so
    /// the caller can shed load, drop the rule, or clear the event's state.
    pub fn set_state_limit(&mut self, limit: Option<usize>) {
        self.state_limit = limit;
    }

    /// Discard all buffered occurrences in a registered event's subtree
    /// (the recovery lever after a state-limit trip). Shared constituent
    /// nodes are cleared too — detection restarts from empty windows.
    pub fn clear_event_state(&mut self, event: &str) -> Result<(), LedError> {
        let &root = self
            .names
            .get(event)
            .ok_or_else(|| LedError::UnknownEvent(event.to_string()))?;
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n], true) {
                continue;
            }
            self.nodes[n].state.clear_state();
            stack.extend(self.nodes[n].children.iter().copied());
        }
        Ok(())
    }

    /// Current virtual time (the latest timestamp seen).
    pub fn now(&self) -> i64 {
        self.now
    }

    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    pub fn has_event(&self, name: &str) -> bool {
        self.names.contains_key(name)
    }

    pub fn event_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.names.keys().cloned().collect();
        v.sort();
        v
    }

    pub fn rule_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.rules.keys().cloned().collect();
        v.sort();
        v
    }

    pub fn rules_on(&self, event: &str) -> Vec<String> {
        match self.names.get(event) {
            Some(&nid) => self.nodes[nid].rules.clone(),
            None => Vec::new(),
        }
    }

    /// Register a primitive event (the paper's `PRIMITIVE` constructor).
    pub fn define_primitive(&mut self, name: &str) -> Result<(), LedError> {
        if self.names.contains_key(name) {
            return Err(LedError::DuplicateEvent(name.to_string()));
        }
        let id = self.push_node(OpState::Primitive, ParameterContext::Recent, name);
        self.names.insert(name.to_string(), id);
        Ok(())
    }

    /// Register a composite event from a Snoop expression. Every referenced
    /// event name must already be defined (primitive or composite) —
    /// the paper's "reuse of previously defined events" (§1).
    pub fn define_composite(
        &mut self,
        name: &str,
        expr: &EventExpr,
        context: ParameterContext,
    ) -> Result<(), LedError> {
        if self.names.contains_key(name) {
            return Err(LedError::DuplicateEvent(name.to_string()));
        }
        // Validate references before mutating the graph.
        for r in expr.references() {
            if !self.names.contains_key(&r.key()) {
                return Err(LedError::UnknownEvent(r.key()));
            }
        }
        let id = self.build(expr, context, Some(name))?;
        self.names.insert(name.to_string(), id);
        Ok(())
    }

    fn push_node(&mut self, state: OpState, context: ParameterContext, out_name: &str) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            state,
            context,
            out_name: out_name.to_string(),
            parents: Vec::new(),
            children: Vec::new(),
            rules: Vec::new(),
        });
        id
    }

    /// Subscribe `child` to `parent` at `slot`. Within one parent node, a
    /// child's subscriptions are kept in **descending slot order** so that
    /// when the same event feeds several operands (e.g. `e ; e`,
    /// `NOT(e, x, e)`), an arriving occurrence reaches the terminator slot
    /// *before* it (re-)initiates at slot 0 — otherwise `e ; e` could never
    /// detect because each occurrence would overwrite the initiator it was
    /// supposed to terminate.
    fn wire(&mut self, parent: usize, slot: usize, child: usize) {
        let parents = &mut self.nodes[child].parents;
        let at = parents
            .iter()
            .position(|&(p, s)| p == parent && s < slot)
            .unwrap_or(parents.len());
        parents.insert(at, (parent, slot));
        self.nodes[parent].children.push(child);
    }

    /// Recursively build the subgraph for `expr`; returns the root node id.
    fn build(
        &mut self,
        expr: &EventExpr,
        ctx: ParameterContext,
        name: Option<&str>,
    ) -> Result<usize, LedError> {
        let out_name = |id: usize| format!("_anon#{id}");
        match expr {
            EventExpr::Named(n) => {
                let key = n.key();
                let id = *self.names.get(&key).ok_or(LedError::UnknownEvent(key))?;
                if let Some(alias) = name {
                    // A composite defined as a pure alias of an existing
                    // event gets a pass-through OR node so it has its own
                    // name and rule attachment point.
                    let nid = self.push_node(OpState::Or, ctx, alias);
                    self.wire(nid, 0, id);
                    return Ok(nid);
                }
                Ok(id)
            }
            EventExpr::Or(l, r) | EventExpr::And(l, r) | EventExpr::Seq(l, r) => {
                let lid = self.build(l, ctx, None)?;
                let rid = self.build(r, ctx, None)?;
                let state = match expr {
                    EventExpr::Or(..) => OpState::Or,
                    EventExpr::And(..) => OpState::and(),
                    _ => OpState::seq(),
                };
                let nid = self.push_node(state, ctx, name.unwrap_or(""));
                if name.is_none() {
                    self.nodes[nid].out_name = out_name(nid);
                }
                self.wire(nid, 0, lid);
                self.wire(nid, 1, rid);
                Ok(nid)
            }
            EventExpr::Not { start, mid, end }
            | EventExpr::Aperiodic { start, mid, end }
            | EventExpr::AperiodicStar { start, mid, end } => {
                let sid = self.build(start, ctx, None)?;
                let mid_id = self.build(mid, ctx, None)?;
                let eid = self.build(end, ctx, None)?;
                let state = match expr {
                    EventExpr::Not { .. } => OpState::not(),
                    EventExpr::Aperiodic { .. } => OpState::aperiodic(),
                    _ => OpState::aperiodic_star(),
                };
                let nid = self.push_node(state, ctx, name.unwrap_or(""));
                if name.is_none() {
                    self.nodes[nid].out_name = out_name(nid);
                }
                self.wire(nid, 0, sid);
                self.wire(nid, 1, mid_id);
                self.wire(nid, 2, eid);
                Ok(nid)
            }
            EventExpr::Periodic {
                start,
                period,
                param,
                end,
            }
            | EventExpr::PeriodicStar {
                start,
                period,
                param,
                end,
            } => {
                let star = matches!(expr, EventExpr::PeriodicStar { .. });
                let sid = self.build(start, ctx, None)?;
                let eid = self.build(end, ctx, None)?;
                let nid = self.push_node(
                    OpState::periodic(period.micros, param.clone(), star),
                    ctx,
                    name.unwrap_or(""),
                );
                if name.is_none() {
                    self.nodes[nid].out_name = out_name(nid);
                }
                self.wire(nid, 0, sid);
                self.wire(nid, 2, eid);
                Ok(nid)
            }
            EventExpr::Plus { event, delta } => {
                let cid = self.build(event, ctx, None)?;
                let nid = self.push_node(OpState::plus(delta.micros), ctx, name.unwrap_or(""));
                if name.is_none() {
                    self.nodes[nid].out_name = out_name(nid);
                }
                self.wire(nid, 0, cid);
                Ok(nid)
            }
            EventExpr::Temporal(spec) => {
                let due = match spec {
                    TimeSpec::Absolute(t) => *t,
                    // Relative temporal events are anchored at definition time.
                    TimeSpec::Relative(d) => self.now + d.micros,
                };
                let nid = self.push_node(OpState::temporal(due), ctx, name.unwrap_or(""));
                if name.is_none() {
                    self.nodes[nid].out_name = out_name(nid);
                }
                Ok(nid)
            }
        }
    }

    /// Attach a rule to a registered event.
    pub fn add_rule(&mut self, spec: RuleSpec) -> Result<(), LedError> {
        if self.rules.contains_key(&spec.name) {
            return Err(LedError::DuplicateRule(spec.name));
        }
        let &node = self
            .names
            .get(&spec.event)
            .ok_or_else(|| LedError::UnknownEvent(spec.event.clone()))?;
        self.nodes[node].rules.push(spec.name.clone());
        self.rules
            .insert(spec.name.clone(), RuleEntry { spec, node });
        Ok(())
    }

    /// Remove a rule by name.
    pub fn drop_rule(&mut self, name: &str) -> Result<(), LedError> {
        let entry = self
            .rules
            .remove(name)
            .ok_or_else(|| LedError::UnknownRule(name.to_string()))?;
        self.nodes[entry.node].rules.retain(|r| r != name);
        self.deferred.retain(|f| f.rule != name);
        Ok(())
    }

    /// Remove a composite event. Refused while rules are attached or other
    /// events reference it.
    pub fn drop_composite(&mut self, name: &str) -> Result<(), LedError> {
        let &nid = self
            .names
            .get(name)
            .ok_or_else(|| LedError::UnknownEvent(name.to_string()))?;
        if !self.nodes[nid].rules.is_empty() || !self.nodes[nid].parents.is_empty() {
            return Err(LedError::HasDependents(name.to_string()));
        }
        // Unhook this node from its children's parent lists. The node slot
        // itself is retired in place (ids are stable).
        let children = self.nodes[nid].children.clone();
        for c in children {
            self.nodes[c].parents.retain(|&(p, _)| p != nid);
        }
        self.nodes[nid].state = OpState::Primitive;
        self.nodes[nid].children.clear();
        self.names.remove(name);
        Ok(())
    }

    /// Signal a primitive (or externally raised) event occurrence.
    ///
    /// Timers due at or before `ts` fire first, then the occurrence
    /// propagates. Returned firings carry IMMEDIATE and DETACHED rules,
    /// sorted by descending priority; DEFERRED firings queue until
    /// [`Detector::flush_deferred`].
    pub fn signal(
        &mut self,
        event: &str,
        params: Vec<Param>,
        ts: i64,
    ) -> Result<Vec<Firing>, LedError> {
        let &nid = self
            .names
            .get(event)
            .ok_or_else(|| LedError::UnknownEvent(event.to_string()))?;
        let mut firings = Vec::new();
        self.run_timers(ts, &mut firings);
        self.now = self.now.max(ts);
        self.stats.signals += 1;
        let params = if params.is_empty() {
            vec![Param::marker(event, ts)]
        } else {
            params
        };
        let occ = Occurrence::point(event, ts, params);
        self.propagate(nid, occ, &mut firings);
        if let Some(limit) = self.state_limit {
            for node in &self.nodes {
                let size = node.state.state_size();
                if size > limit {
                    // Detection state is intact; the firings of this signal
                    // are sacrificed to surface the breaker trip.
                    return Err(LedError::StateLimitExceeded(node.out_name.clone(), size));
                }
            }
        }
        firings.sort_by_key(|f| std::cmp::Reverse(f.priority));
        Ok(firings)
    }

    /// Advance virtual time, firing any due temporal events.
    pub fn advance_to(&mut self, ts: i64) -> Vec<Firing> {
        let mut firings = Vec::new();
        self.run_timers(ts, &mut firings);
        self.now = self.now.max(ts);
        firings.sort_by_key(|f| std::cmp::Reverse(f.priority));
        firings
    }

    /// Release all deferred firings (the end-of-transaction hook), sorted by
    /// descending priority then detection order.
    pub fn flush_deferred(&mut self) -> Vec<Firing> {
        let mut out = std::mem::take(&mut self.deferred);
        out.sort_by_key(|f| std::cmp::Reverse(f.priority));
        out
    }

    /// Pending deferred firings count.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Total buffered occurrences across all nodes (E9 metric).
    pub fn total_state_size(&self) -> usize {
        self.nodes.iter().map(|n| n.state.state_size()).sum()
    }

    /// Human-readable description of a registered event's operator tree
    /// (operator kinds in DFS order), for diagnostics and tests.
    pub fn describe(&self, event: &str) -> Option<String> {
        let &root = self.names.get(event)?;
        let mut parts = Vec::new();
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n], true) {
                continue;
            }
            parts.push(self.nodes[n].state.kind_name());
            // Push children in reverse so DFS visits them left-to-right.
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        Some(parts.join(" "))
    }

    /// Buffered occurrences in the subtree of a registered event.
    pub fn state_size_of(&self, event: &str) -> Result<usize, LedError> {
        let &root = self
            .names
            .get(event)
            .ok_or_else(|| LedError::UnknownEvent(event.to_string()))?;
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut total = 0;
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n], true) {
                continue;
            }
            total += self.nodes[n].state.state_size();
            stack.extend(self.nodes[n].children.iter().copied());
        }
        Ok(total)
    }

    fn run_timers(&mut self, target: i64, firings: &mut Vec<Firing>) {
        loop {
            // Earliest pending timer across all nodes.
            let due = self.nodes.iter().filter_map(|n| n.state.next_due()).min();
            let due = match due {
                Some(d) if d <= target => d,
                _ => break,
            };
            for nid in 0..self.nodes.len() {
                if self.nodes[nid].state.next_due() == Some(due) {
                    let out = self.nodes[nid].out_name.clone();
                    let emitted = self.nodes[nid].state.fire_due(due, &out);
                    for occ in emitted {
                        self.propagate(nid, occ, firings);
                    }
                }
            }
            self.now = self.now.max(due);
        }
    }

    fn propagate(&mut self, start: usize, occ: Occurrence, firings: &mut Vec<Firing>) {
        let mut queue = VecDeque::new();
        queue.push_back((start, occ));
        while let Some((nid, occ)) = queue.pop_front() {
            self.stats.emissions += 1;
            // Rules on this node.
            for rule_name in self.nodes[nid].rules.clone() {
                let entry = &self.rules[&rule_name];
                if !entry.spec.condition.eval(&occ) {
                    continue;
                }
                self.stats.firings += 1;
                let firing = Firing {
                    rule: entry.spec.name.clone(),
                    event: self.nodes[nid].out_name.clone(),
                    coupling: entry.spec.coupling,
                    priority: entry.spec.priority,
                    context: self.nodes[nid].context,
                    occurrence: occ.clone(),
                };
                if entry.spec.coupling == CouplingMode::Deferred {
                    self.deferred.push(firing);
                } else {
                    firings.push(firing);
                }
            }
            // Parent operator nodes.
            for (pid, slot) in self.nodes[nid].parents.clone() {
                let ctx = self.nodes[pid].context;
                let out = self.nodes[pid].out_name.clone();
                let emitted = self.nodes[pid].state.on_child(slot, &occ, ctx, &out);
                for e in emitted {
                    queue.push_back((pid, e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop::parse;

    fn det_with(names: &[&str]) -> Detector {
        let mut d = Detector::new();
        for n in names {
            d.define_primitive(n).unwrap();
        }
        d
    }

    fn fire(d: &mut Detector, event: &str, ts: i64) -> Vec<Firing> {
        d.signal(event, vec![], ts).unwrap()
    }

    #[test]
    fn primitive_rule_fires() {
        let mut d = det_with(&["addStk"]);
        d.add_rule(RuleSpec::new("t_addStk", "addStk")).unwrap();
        let f = fire(&mut d, "addStk", 1);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "t_addStk");
        assert_eq!(f[0].event, "addStk");
    }

    #[test]
    fn unknown_event_signal_errors() {
        let mut d = Detector::new();
        assert_eq!(
            d.signal("nope", vec![], 1).unwrap_err(),
            LedError::UnknownEvent("nope".into())
        );
    }

    #[test]
    fn multiple_rules_on_same_event() {
        // Paper contribution #4: multiple triggers on the same event.
        let mut d = det_with(&["e"]);
        d.add_rule(RuleSpec::new("r1", "e").with_priority(1))
            .unwrap();
        d.add_rule(RuleSpec::new("r2", "e").with_priority(9))
            .unwrap();
        d.add_rule(RuleSpec::new("r3", "e").with_priority(5))
            .unwrap();
        let f = fire(&mut d, "e", 1);
        let order: Vec<&str> = f.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(order, vec!["r2", "r3", "r1"], "priority order");
    }

    #[test]
    fn paper_example_2_and_composite() {
        // addDel = delStk ^ addStk, RECENT.
        let mut d = det_with(&["delStk", "addStk"]);
        let expr = parse("delStk ^ addStk").unwrap();
        d.define_composite("addDel", &expr, ParameterContext::Recent)
            .unwrap();
        d.add_rule(RuleSpec::new("t_and", "addDel")).unwrap();
        assert!(fire(&mut d, "delStk", 1).is_empty());
        let f = fire(&mut d, "addStk", 2);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].event, "addDel");
        assert_eq!(f[0].occurrence.params.len(), 2);
        assert_eq!(f[0].occurrence.t_start, 1);
        assert_eq!(f[0].occurrence.t_end, 2);
    }

    #[test]
    fn composite_references_must_exist() {
        let mut d = det_with(&["a"]);
        let expr = parse("a ^ missing").unwrap();
        assert_eq!(
            d.define_composite("x", &expr, ParameterContext::Recent)
                .unwrap_err(),
            LedError::UnknownEvent("missing".into())
        );
        // Failed definition leaves no trace.
        assert!(!d.has_event("x"));
    }

    #[test]
    fn composite_of_composite() {
        // Event reuse (paper contribution #2): e3 = (a ^ b) ; c via e12.
        let mut d = det_with(&["a", "b", "c"]);
        d.define_composite("e12", &parse("a ^ b").unwrap(), ParameterContext::Recent)
            .unwrap();
        d.define_composite("e3", &parse("e12 ; c").unwrap(), ParameterContext::Recent)
            .unwrap();
        d.add_rule(RuleSpec::new("r", "e3")).unwrap();
        fire(&mut d, "a", 1);
        fire(&mut d, "b", 2); // e12 occurs [1,2]
        let f = fire(&mut d, "c", 3);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].occurrence.params.len(), 3);
    }

    #[test]
    fn alias_composite_gets_own_node() {
        let mut d = det_with(&["a"]);
        d.define_composite("alias_a", &parse("a").unwrap(), ParameterContext::Recent)
            .unwrap();
        d.add_rule(RuleSpec::new("r", "alias_a")).unwrap();
        let f = fire(&mut d, "a", 1);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].event, "alias_a");
    }

    #[test]
    fn or_composite_fires_on_either() {
        let mut d = det_with(&["a", "b"]);
        d.define_composite("ab", &parse("a | b").unwrap(), ParameterContext::Recent)
            .unwrap();
        d.add_rule(RuleSpec::new("r", "ab")).unwrap();
        assert_eq!(fire(&mut d, "a", 1).len(), 1);
        assert_eq!(fire(&mut d, "b", 2).len(), 1);
    }

    #[test]
    fn seq_strictness_through_graph() {
        let mut d = det_with(&["a", "b"]);
        d.define_composite("s", &parse("a ; b").unwrap(), ParameterContext::Recent)
            .unwrap();
        d.add_rule(RuleSpec::new("r", "s")).unwrap();
        assert!(fire(&mut d, "b", 1).is_empty());
        fire(&mut d, "a", 2);
        assert_eq!(fire(&mut d, "b", 3).len(), 1);
    }

    #[test]
    fn not_through_graph() {
        let mut d = det_with(&["open", "cancel", "close"]);
        d.define_composite(
            "quiet",
            &parse("NOT(open, cancel, close)").unwrap(),
            ParameterContext::Recent,
        )
        .unwrap();
        d.add_rule(RuleSpec::new("r", "quiet")).unwrap();
        fire(&mut d, "open", 1);
        fire(&mut d, "cancel", 2);
        assert!(fire(&mut d, "close", 3).is_empty());
        fire(&mut d, "open", 4);
        assert_eq!(fire(&mut d, "close", 5).len(), 1);
    }

    #[test]
    fn plus_fires_via_advance() {
        let mut d = det_with(&["e"]);
        d.define_composite(
            "late",
            &parse("e PLUS [10 sec]").unwrap(),
            ParameterContext::Recent,
        )
        .unwrap();
        d.add_rule(RuleSpec::new("r", "late")).unwrap();
        fire(&mut d, "e", 1_000_000);
        assert!(d.advance_to(10_999_999).is_empty());
        let f = d.advance_to(11_000_000);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].occurrence.t_end, 11_000_000);
    }

    #[test]
    fn timers_fire_before_later_signal() {
        let mut d = det_with(&["e", "z"]);
        d.define_composite(
            "late",
            &parse("e PLUS [1 sec]").unwrap(),
            ParameterContext::Recent,
        )
        .unwrap();
        d.add_rule(RuleSpec::new("r", "late")).unwrap();
        fire(&mut d, "e", 0);
        // Signalling z at t=5s flushes the timer due at t=1s first.
        let f = fire(&mut d, "z", 5_000_000);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "r");
    }

    #[test]
    fn periodic_through_graph() {
        let mut d = det_with(&["start", "stop"]);
        d.define_composite(
            "tick",
            &parse("P(start, [1 sec], stop)").unwrap(),
            ParameterContext::Recent,
        )
        .unwrap();
        d.add_rule(RuleSpec::new("r", "tick")).unwrap();
        fire(&mut d, "start", 0);
        let f = d.advance_to(3_500_000);
        assert_eq!(f.len(), 3, "fires at 1s, 2s, 3s");
        fire(&mut d, "stop", 4_000_000);
        assert!(d.advance_to(10_000_000).is_empty());
    }

    #[test]
    fn periodic_star_emits_at_close() {
        let mut d = det_with(&["start", "stop"]);
        d.define_composite(
            "ticks",
            &parse("P*(start, [1 sec]:t, stop)").unwrap(),
            ParameterContext::Recent,
        )
        .unwrap();
        d.add_rule(RuleSpec::new("r", "ticks")).unwrap();
        fire(&mut d, "start", 0);
        assert!(d.advance_to(2_500_000).is_empty());
        let f = fire(&mut d, "stop", 3_000_000);
        assert_eq!(f.len(), 1);
        // start + fires(1s, 2s) + stop — the 3s fire is simultaneous with
        // stop and therefore included as well (timers run first).
        assert!(f[0].occurrence.params.len() >= 4);
    }

    #[test]
    fn temporal_absolute_event() {
        let mut d = Detector::new();
        d.define_composite("at5", &parse("[@ 5000]").unwrap(), ParameterContext::Recent)
            .unwrap();
        d.add_rule(RuleSpec::new("r", "at5")).unwrap();
        assert!(d.advance_to(4_999).is_empty());
        assert_eq!(d.advance_to(5_000).len(), 1);
        assert!(d.advance_to(10_000).is_empty(), "fires once");
    }

    #[test]
    fn deferred_rules_queue_until_flush() {
        let mut d = det_with(&["e"]);
        d.add_rule(RuleSpec::new("r", "e").with_coupling(CouplingMode::Deferred))
            .unwrap();
        assert!(fire(&mut d, "e", 1).is_empty());
        assert!(fire(&mut d, "e", 2).is_empty());
        assert_eq!(d.deferred_len(), 2);
        let f = d.flush_deferred();
        assert_eq!(f.len(), 2);
        assert_eq!(d.deferred_len(), 0);
        assert!(d.flush_deferred().is_empty());
    }

    #[test]
    fn detached_rules_returned_with_flag() {
        let mut d = det_with(&["e"]);
        d.add_rule(RuleSpec::new("r", "e").with_coupling(CouplingMode::Detached))
            .unwrap();
        let f = fire(&mut d, "e", 1);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].coupling, CouplingMode::Detached);
    }

    #[test]
    fn drop_rule_stops_firing() {
        let mut d = det_with(&["e"]);
        d.add_rule(RuleSpec::new("r", "e")).unwrap();
        d.drop_rule("r").unwrap();
        assert!(fire(&mut d, "e", 1).is_empty());
        assert_eq!(
            d.drop_rule("r").unwrap_err(),
            LedError::UnknownRule("r".into())
        );
    }

    #[test]
    fn drop_rule_purges_deferred_queue() {
        let mut d = det_with(&["e"]);
        d.add_rule(RuleSpec::new("r", "e").with_coupling(CouplingMode::Deferred))
            .unwrap();
        fire(&mut d, "e", 1);
        assert_eq!(d.deferred_len(), 1);
        d.drop_rule("r").unwrap();
        assert_eq!(d.deferred_len(), 0);
    }

    #[test]
    fn drop_composite_guards_dependents() {
        let mut d = det_with(&["a", "b"]);
        d.define_composite("ab", &parse("a ^ b").unwrap(), ParameterContext::Recent)
            .unwrap();
        d.add_rule(RuleSpec::new("r", "ab")).unwrap();
        assert!(matches!(
            d.drop_composite("ab"),
            Err(LedError::HasDependents(_))
        ));
        d.drop_rule("r").unwrap();
        d.drop_composite("ab").unwrap();
        assert!(!d.has_event("ab"));
        // Primitives no longer feed the dropped node.
        fire(&mut d, "a", 1);
        fire(&mut d, "b", 2);
        assert_eq!(d.total_state_size(), 0);
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let mut d = det_with(&["a"]);
        assert_eq!(
            d.define_primitive("a").unwrap_err(),
            LedError::DuplicateEvent("a".into())
        );
        d.define_composite("c", &parse("a | a").unwrap(), ParameterContext::Recent)
            .unwrap();
        assert!(d
            .define_composite("c", &parse("a | a").unwrap(), ParameterContext::Recent)
            .is_err());
        d.add_rule(RuleSpec::new("r", "a")).unwrap();
        assert_eq!(
            d.add_rule(RuleSpec::new("r", "a")).unwrap_err(),
            LedError::DuplicateRule("r".into())
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut d = det_with(&["a", "b"]);
        d.define_composite("ab", &parse("a ^ b").unwrap(), ParameterContext::Recent)
            .unwrap();
        d.add_rule(RuleSpec::new("r", "ab")).unwrap();
        fire(&mut d, "a", 1);
        fire(&mut d, "b", 2);
        let s = d.stats();
        assert_eq!(s.signals, 2);
        assert!(s.emissions >= 3); // a, b, ab
        assert_eq!(s.firings, 1);
    }

    #[test]
    fn state_size_tracks_buffers() {
        let mut d = det_with(&["a", "b"]);
        d.define_composite("s", &parse("a ; b").unwrap(), ParameterContext::Chronicle)
            .unwrap();
        for t in 0..10 {
            fire(&mut d, "a", t);
        }
        assert_eq!(d.total_state_size(), 10);
        assert_eq!(d.state_size_of("s").unwrap(), 10);
        fire(&mut d, "b", 100);
        assert_eq!(d.total_state_size(), 9);
    }

    #[test]
    fn same_event_both_operands() {
        // AND(a, a): every a is delivered to both slots.
        let mut d = det_with(&["a"]);
        d.define_composite("aa", &parse("a ^ a").unwrap(), ParameterContext::Recent)
            .unwrap();
        d.add_rule(RuleSpec::new("r", "aa")).unwrap();
        // First a: left slot stores; right slot sees left non-empty → pairs.
        let f = fire(&mut d, "a", 1);
        assert_eq!(f.len(), 1, "a^a detects on a single a (both slots fed)");
    }

    #[test]
    fn self_sequence_detects_consecutive_occurrences() {
        // `e ; e` must pair occurrence n with occurrence n+1, which relies
        // on terminator-slot-first delivery.
        let mut d = det_with(&["e"]);
        d.define_composite("ee", &parse("e ; e").unwrap(), ParameterContext::Recent)
            .unwrap();
        d.add_rule(RuleSpec::new("r", "ee")).unwrap();
        assert!(fire(&mut d, "e", 1).is_empty(), "first e only initiates");
        let f = fire(&mut d, "e", 2);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].occurrence.t_start, 1);
        assert_eq!(f[0].occurrence.t_end, 2);
    }

    #[test]
    fn self_not_window() {
        // NOT(e, x, e): a window between consecutive e's with no x.
        let mut d = det_with(&["e", "x"]);
        d.define_composite(
            "quiet",
            &parse("NOT(e, x, e)").unwrap(),
            ParameterContext::Recent,
        )
        .unwrap();
        d.add_rule(RuleSpec::new("r", "quiet")).unwrap();
        fire(&mut d, "e", 1);
        assert_eq!(fire(&mut d, "e", 2).len(), 1);
        fire(&mut d, "x", 3);
        assert!(fire(&mut d, "e", 4).is_empty(), "x cancelled the window");
        assert_eq!(fire(&mut d, "e", 5).len(), 1);
    }

    #[test]
    fn state_limit_circuit_breaker() {
        let mut d = det_with(&["a", "b"]);
        d.define_composite("s", &parse("a ; b").unwrap(), ParameterContext::Chronicle)
            .unwrap();
        d.add_rule(RuleSpec::new("r", "s")).unwrap();
        d.set_state_limit(Some(5));
        for t in 0..5 {
            fire(&mut d, "a", t);
        }
        // The sixth initiator trips the breaker.
        let err = d.signal("a", vec![], 6).unwrap_err();
        match err {
            LedError::StateLimitExceeded(name, size) => {
                assert_eq!(name, "s");
                assert_eq!(size, 6);
            }
            other => panic!("wrong error: {other:?}"),
        }
        // Recovery: clear the event's buffered state and continue.
        d.clear_event_state("s").unwrap();
        assert_eq!(d.total_state_size(), 0);
        fire(&mut d, "a", 10);
        assert_eq!(fire(&mut d, "b", 11).len(), 1);
        // Disabling the limit allows unbounded growth again.
        d.set_state_limit(None);
        for t in 20..40 {
            fire(&mut d, "a", t);
        }
        assert!(d.total_state_size() > 5);
    }

    #[test]
    fn clear_event_state_requires_known_event() {
        let mut d = Detector::new();
        assert!(matches!(
            d.clear_event_state("ghost"),
            Err(LedError::UnknownEvent(_))
        ));
    }

    #[test]
    fn event_names_and_rules_listing() {
        let mut d = det_with(&["b", "a"]);
        d.add_rule(RuleSpec::new("r2", "a")).unwrap();
        d.add_rule(RuleSpec::new("r1", "a")).unwrap();
        assert_eq!(d.event_names(), vec!["a", "b"]);
        assert_eq!(d.rule_names(), vec!["r1", "r2"]);
        assert_eq!(d.rules_on("a"), vec!["r2", "r1"]);
        assert!(d.rules_on("zzz").is_empty());
    }

    #[test]
    fn describe_lists_operator_tree() {
        let mut d = det_with(&["a", "b", "c"]);
        d.define_composite(
            "x",
            &parse("(a ^ b) ; c").unwrap(),
            ParameterContext::Recent,
        )
        .unwrap();
        assert_eq!(
            d.describe("x").unwrap(),
            "SEQ AND PRIMITIVE PRIMITIVE PRIMITIVE"
        );
        assert!(d.describe("nope").is_none());
    }

    #[test]
    fn params_flow_through() {
        let mut d = det_with(&["addStk"]);
        d.add_rule(RuleSpec::new("r", "addStk")).unwrap();
        let f = d
            .signal(
                "addStk",
                vec![Param::db(
                    "addStk",
                    "sentineldb.sharma.stock_inserted",
                    7,
                    1,
                )],
                1,
            )
            .unwrap();
        assert_eq!(f[0].occurrence.params[0].vno, Some(7));
        assert_eq!(
            f[0].occurrence.params[0].table.as_deref(),
            Some("sentineldb.sharma.stock_inserted")
        );
    }

    #[test]
    fn contexts_differ_observably() {
        // Same stream, different detection counts per context — the E9 story.
        let counts: Vec<usize> = ParameterContext::ALL
            .iter()
            .map(|&ctx| {
                let mut d = det_with(&["a", "b"]);
                d.define_composite("ab", &parse("a ^ b").unwrap(), ctx)
                    .unwrap();
                d.add_rule(RuleSpec::new("r", "ab")).unwrap();
                let mut n = 0;
                for t in 0..6 {
                    n += fire(&mut d, "a", t).len();
                }
                n + fire(&mut d, "b", 10).len()
            })
            .collect();
        // RECENT: 1 (latest a + b). CHRONICLE: 1 (oldest a + b).
        // CONTINUOUS: 6 (every open a). CUMULATIVE: 1 (merged).
        assert_eq!(counts, vec![1, 1, 6, 1]);
    }
}
