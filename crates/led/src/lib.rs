//! # led — the Local Event Detector
//!
//! A from-scratch implementation of Sentinel's Local Event Detector as the
//! ECA Agent paper uses it (§2, §5.3–§5.6): an event graph over the Snoop
//! operators with all four parameter contexts (RECENT, CHRONICLE,
//! CONTINUOUS, CUMULATIVE), rule management with priorities and coupling
//! modes (IMMEDIATE, DEFERRED, DETACHED), and deterministic virtual-time
//! temporal operators (`P`, `P*`, `PLUS`, absolute time events).
//!
//! ```
//! use led::{Detector, RuleSpec, ParameterContext};
//!
//! let mut led = Detector::new();
//! led.define_primitive("delStk").unwrap();
//! led.define_primitive("addStk").unwrap();
//! // The paper's Example 2: addDel = delStk ^ addStk, RECENT context.
//! led.define_composite(
//!     "addDel",
//!     &snoop::parse("delStk ^ addStk").unwrap(),
//!     ParameterContext::Recent,
//! ).unwrap();
//! led.add_rule(RuleSpec::new("t_and", "addDel")).unwrap();
//!
//! led.signal("delStk", vec![], 1).unwrap();
//! let firings = led.signal("addStk", vec![], 2).unwrap();
//! assert_eq!(firings.len(), 1);
//! assert_eq!(firings[0].rule, "t_and");
//! ```

pub mod context;
pub mod detector;
pub mod occurrence;
mod operators;
pub mod rule;

pub use context::{CouplingMode, ParameterContext};
pub use detector::{Detector, DetectorStats, LedError};
pub use occurrence::{Occurrence, Param};
pub use rule::{Condition, Firing, RuleSpec};
