//! Property-based tests for LED detection invariants across contexts.

use led::{Detector, Occurrence, ParameterContext, RuleSpec};
use proptest::prelude::*;

/// Random L/R event stream (true = left / p0, false = right / p1).
fn stream() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 0..60)
}

fn run(expr: &str, ctx: ParameterContext, sides: &[bool]) -> Vec<Occurrence> {
    let mut d = Detector::new();
    d.define_primitive("p0").unwrap();
    d.define_primitive("p1").unwrap();
    d.define_composite("c", &snoop::parse(expr).unwrap(), ctx)
        .unwrap();
    d.add_rule(RuleSpec::new("r", "c")).unwrap();
    let mut out = Vec::new();
    for (i, &left) in sides.iter().enumerate() {
        let ev = if left { "p0" } else { "p1" };
        for f in d.signal(ev, vec![], (i as i64 + 1) * 10).unwrap() {
            out.push(f.occurrence);
        }
    }
    out
}

proptest! {
    #[test]
    fn or_counts_every_occurrence_in_all_contexts(sides in stream()) {
        for ctx in ParameterContext::ALL {
            let fired = run("p0 | p1", ctx, &sides);
            prop_assert_eq!(fired.len(), sides.len(), "context {}", ctx);
        }
    }

    #[test]
    fn chronicle_and_detects_exactly_min_of_sides(sides in stream()) {
        let lefts = sides.iter().filter(|&&b| b).count();
        let rights = sides.len() - lefts;
        let fired = run("p0 ^ p1", ParameterContext::Chronicle, &sides);
        prop_assert_eq!(fired.len(), lefts.min(rights));
        // FIFO pairing consumes each occurrence exactly once: every
        // detection carries exactly one param from each side.
        for occ in &fired {
            prop_assert_eq!(occ.params.len(), 2);
            prop_assert_eq!(&occ.params[0].event, "p0");
            prop_assert_eq!(&occ.params[1].event, "p1");
        }
    }

    #[test]
    fn occurrence_intervals_are_well_formed(sides in stream()) {
        for expr in ["p0 ^ p1", "p0 ; p1", "p0 | p1"] {
            for ctx in ParameterContext::ALL {
                for occ in run(expr, ctx, &sides) {
                    prop_assert!(occ.t_start <= occ.t_end, "{expr} {ctx}");
                    for p in &occ.params {
                        prop_assert!(p.ts <= occ.t_end);
                    }
                }
            }
        }
    }

    #[test]
    fn seq_constituents_are_strictly_ordered(sides in stream()) {
        for ctx in ParameterContext::ALL {
            for occ in run("p0 ; p1", ctx, &sides) {
                // Every p0 param must precede every p1 param.
                let max_left = occ.params.iter().filter(|p| p.event == "p0").map(|p| p.ts).max();
                let min_right = occ.params.iter().filter(|p| p.event == "p1").map(|p| p.ts).min();
                if let (Some(l), Some(r)) = (max_left, min_right) {
                    prop_assert!(l < r, "context {ctx}: left {l} not before right {r}");
                }
            }
        }
    }

    #[test]
    fn seq_recent_matches_brute_force_oracle(sides in stream()) {
        // Oracle: a p1 at position i detects iff some p0 happened strictly
        // earlier; the initiator is the latest such p0.
        let fired = run("p0 ; p1", ParameterContext::Recent, &sides);
        let mut expected = Vec::new();
        let mut last_left: Option<i64> = None;
        for (i, &left) in sides.iter().enumerate() {
            let ts = (i as i64 + 1) * 10;
            if left {
                last_left = Some(ts);
            } else if let Some(l) = last_left {
                expected.push((l, ts));
            }
        }
        prop_assert_eq!(fired.len(), expected.len());
        for (occ, (l, r)) in fired.iter().zip(&expected) {
            prop_assert_eq!(occ.t_start, *l);
            prop_assert_eq!(occ.t_end, *r);
        }
    }

    #[test]
    fn continuous_seq_consumes_all_open_initiators(sides in stream()) {
        // Oracle: each p1 pairs with every currently-open earlier p0.
        let fired = run("p0 ; p1", ParameterContext::Continuous, &sides);
        let mut expected = 0usize;
        let mut open = 0usize;
        for &left in &sides {
            if left {
                open += 1;
            } else {
                expected += open;
                open = 0;
            }
        }
        prop_assert_eq!(fired.len(), expected);
    }

    #[test]
    fn cumulative_seq_param_conservation(sides in stream()) {
        // Every p0 occurrence appears in exactly one cumulative detection
        // (or is still buffered); p1 terminators not preceded by any open
        // p0 are dropped.
        let fired = run("p0 ; p1", ParameterContext::Cumulative, &sides);
        let mut d = Detector::new();
        d.define_primitive("p0").unwrap();
        d.define_primitive("p1").unwrap();
        d.define_composite("c", &snoop::parse("p0 ; p1").unwrap(), ParameterContext::Cumulative).unwrap();
        d.add_rule(RuleSpec::new("r", "c")).unwrap();
        let mut residual = 0usize;
        for (i, &left) in sides.iter().enumerate() {
            let ev = if left { "p0" } else { "p1" };
            d.signal(ev, vec![], (i as i64 + 1) * 10).unwrap();
            residual = d.total_state_size();
        }
        let consumed_lefts: usize = fired
            .iter()
            .map(|occ| occ.params.iter().filter(|p| p.event == "p0").count())
            .sum();
        let total_lefts = sides.iter().filter(|&&b| b).count();
        prop_assert_eq!(consumed_lefts + residual, total_lefts);
    }

    #[test]
    fn state_never_exceeds_signals(sides in stream()) {
        for expr in ["p0 ^ p1", "p0 ; p1", "NOT(p0, p1, p0)", "A*(p0, p1, p0)"] {
            for ctx in ParameterContext::ALL {
                let mut d = Detector::new();
                d.define_primitive("p0").unwrap();
                d.define_primitive("p1").unwrap();
                d.define_composite("c", &snoop::parse(expr).unwrap(), ctx).unwrap();
                for (i, &left) in sides.iter().enumerate() {
                    let ev = if left { "p0" } else { "p1" };
                    d.signal(ev, vec![], (i as i64 + 1) * 10).unwrap();
                }
                prop_assert!(
                    d.total_state_size() <= sides.len() * 2,
                    "{expr} {ctx}: state {} for {} signals",
                    d.total_state_size(),
                    sides.len()
                );
            }
        }
    }

    #[test]
    fn recent_state_is_bounded_by_constant(sides in stream()) {
        // RECENT never buffers more than one occurrence per operand.
        let mut d = Detector::new();
        d.define_primitive("p0").unwrap();
        d.define_primitive("p1").unwrap();
        d.define_composite(
            "c",
            &snoop::parse("p0 ^ p1").unwrap(),
            ParameterContext::Recent,
        ).unwrap();
        for (i, &left) in sides.iter().enumerate() {
            let ev = if left { "p0" } else { "p1" };
            d.signal(ev, vec![], (i as i64 + 1) * 10).unwrap();
            prop_assert!(d.total_state_size() <= 2);
        }
    }

    #[test]
    fn detector_never_panics_on_random_expressions(
        sides in stream(),
        pick in 0usize..6,
        ctx_pick in 0usize..4,
    ) {
        let exprs = [
            "p0 ^ (p1 ; p0)",
            "NOT(p0, p1, p0) | p1",
            "A(p0, p1, p0) ; p1",
            "A*(p1, p0, p1)",
            "(p0 | p1) ; (p0 ^ p1)",
            "NOT(p0 ^ p1, p0, p1 | p0)",
        ];
        let ctx = ParameterContext::ALL[ctx_pick];
        let _ = run(exprs[pick], ctx, &sides);
    }

    #[test]
    fn plus_fires_exactly_once_per_occurrence_at_exact_offset(
        times in prop::collection::btree_set(1i64..1_000, 0..20),
        delta in 1i64..100,
    ) {
        let expr = format!("p0 PLUS [{delta} usec]");
        let times: Vec<i64> = times.into_iter().collect();
        let mut d = Detector::new();
        d.define_primitive("p0").unwrap();
        d.define_composite("c", &snoop::parse(&expr).unwrap(), ParameterContext::Recent).unwrap();
        d.add_rule(RuleSpec::new("r", "c")).unwrap();
        // Signals arriving after an earlier occurrence's due time flush its
        // timer first, so firings may surface during `signal` or at the
        // final advance — collect both.
        let mut fired: Vec<i64> = Vec::new();
        for &t in &times {
            for f in d.signal("p0", vec![], t).unwrap() {
                fired.push(f.occurrence.t_end);
            }
        }
        for f in d.advance_to(2_000) {
            fired.push(f.occurrence.t_end);
        }
        let mut expected: Vec<i64> = times.iter().map(|t| t + delta).collect();
        expected.sort_unstable();
        fired.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    #[test]
    fn periodic_fire_count_matches_arithmetic(
        period in 1i64..50,
        span in 0i64..500,
    ) {
        let mut d = Detector::new();
        d.define_primitive("p0").unwrap();
        d.define_primitive("p1").unwrap();
        let expr = format!("P(p0, [{period} usec], p1)");
        d.define_composite("c", &snoop::parse(&expr).unwrap(), ParameterContext::Recent).unwrap();
        d.add_rule(RuleSpec::new("r", "c")).unwrap();
        d.signal("p0", vec![], 0).unwrap();
        let fired = d.advance_to(span).len();
        prop_assert_eq!(fired as i64, span / period);
        // Closing the window stops everything.
        d.signal("p1", vec![], span + 1).unwrap();
        prop_assert!(d.advance_to(span + 10_000).is_empty());
    }

    #[test]
    fn astar_collects_every_mid_in_window(n_mids in 0usize..30) {
        let mut d = Detector::new();
        for p in ["s", "m", "e"] {
            d.define_primitive(p).unwrap();
        }
        d.define_composite(
            "c",
            &snoop::parse("A*(s, m, e)").unwrap(),
            ParameterContext::Recent,
        ).unwrap();
        d.add_rule(RuleSpec::new("r", "c")).unwrap();
        d.signal("s", vec![], 1).unwrap();
        for i in 0..n_mids {
            d.signal("m", vec![], 10 + i as i64).unwrap();
        }
        let f = d.signal("e", vec![], 1_000).unwrap();
        prop_assert_eq!(f.len(), 1);
        // start + every mid + end.
        prop_assert_eq!(f[0].occurrence.params.len(), n_mids + 2);
    }

    #[test]
    fn firings_sorted_by_priority(sides in stream(), priorities in prop::collection::vec(-10i32..10, 1..5)) {
        let mut d = Detector::new();
        d.define_primitive("p0").unwrap();
        for (i, p) in priorities.iter().enumerate() {
            d.add_rule(RuleSpec::new(format!("r{i}"), "p0").with_priority(*p)).unwrap();
        }
        for (i, _) in sides.iter().enumerate() {
            let f = d.signal("p0", vec![], i as i64 + 1).unwrap();
            for w in f.windows(2) {
                prop_assert!(w[0].priority >= w[1].priority);
            }
        }
    }
}
