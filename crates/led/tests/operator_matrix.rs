//! Golden-table tests: every Snoop operator crossed with every parameter
//! context on one canonical scenario each. These tables *are* the
//! executable specification of the reproduction's detection semantics.

use led::{Detector, ParameterContext, RuleSpec};

fn det(expr: &str, ctx: ParameterContext) -> Detector {
    let mut d = Detector::new();
    for p in ["s", "m", "e"] {
        d.define_primitive(p).unwrap();
    }
    d.define_composite("c", &snoop::parse(expr).unwrap(), ctx)
        .unwrap();
    d.add_rule(RuleSpec::new("r", "c")).unwrap();
    d
}

/// Drive a space-separated scenario ("s s m e"), returning per-step
/// detection counts.
fn drive(d: &mut Detector, scenario: &str) -> Vec<usize> {
    scenario
        .split_whitespace()
        .enumerate()
        .map(|(i, ev)| d.signal(ev, vec![], (i as i64 + 1) * 10).unwrap().len())
        .collect()
}

fn totals(expr: &str, scenario: &str) -> [usize; 4] {
    let mut out = [0usize; 4];
    for (i, ctx) in ParameterContext::ALL.iter().enumerate() {
        let mut d = det(expr, *ctx);
        out[i] = drive(&mut d, scenario).iter().sum();
    }
    out
}

// Context order in all tables: [RECENT, CHRONICLE, CONTINUOUS, CUMULATIVE].

#[test]
fn and_matrix() {
    // Scenario: three s then two m.
    // RECENT: m1 pairs with s3; m1 stays recent on its side, s3 on its —
    //         m2 pairs with s3 again → 2.
    // CHRONICLE: FIFO pairs (s1,m1), (s2,m2) → 2.
    // CONTINUOUS: m1 consumes all three s → 3; m2 finds none, buffers → 3.
    // CUMULATIVE: m1 flushes everything → 1; m2 buffers → 1.
    assert_eq!(totals("s ^ m", "s s s m m"), [2, 2, 3, 1]);
}

#[test]
fn seq_matrix() {
    // Same scenario, but SEQ consumes nothing on the initiator side in
    // RECENT (latest persists) and requires order.
    assert_eq!(totals("s ; m", "s s s m m"), [2, 2, 3, 1]);
    // Terminators before any initiator never fire.
    assert_eq!(totals("s ; m", "m m s"), [0, 0, 0, 0]);
}

#[test]
fn or_matrix() {
    // OR is context-insensitive: every constituent occurrence detects.
    assert_eq!(totals("s | m", "s m s m m"), [5, 5, 5, 5]);
}

#[test]
fn not_matrix() {
    // s .. e with no m in between.
    assert_eq!(totals("NOT(s, m, e)", "s e"), [1, 1, 1, 1]);
    // m cancels every open window.
    assert_eq!(totals("NOT(s, m, e)", "s m e"), [0, 0, 0, 0]);
    // Two initiators, one clean terminator.
    // RECENT: latest s pairs → 1. CHRONICLE: oldest consumed → 1.
    // CONTINUOUS: both → 2. CUMULATIVE: merged → 1.
    assert_eq!(totals("NOT(s, m, e)", "s s e"), [1, 1, 2, 1]);
}

#[test]
fn aperiodic_matrix() {
    // Window s..e containing two m.
    assert_eq!(totals("A(s, m, e)", "s m m e"), [2, 2, 2, 2]);
    // m outside any window never fires.
    assert_eq!(totals("A(s, m, e)", "m s e m"), [0, 0, 0, 0]);
    // Two nested windows, one m:
    // RECENT: latest window only → 1. CHRONICLE: oldest → 1.
    // CONTINUOUS: one per open window → 2. CUMULATIVE: merged → 1.
    assert_eq!(totals("A(s, m, e)", "s s m e"), [1, 1, 2, 1]);
}

#[test]
fn aperiodic_star_matrix() {
    // A* fires once per window close, with everything accumulated.
    assert_eq!(totals("A*(s, m, e)", "s m m e"), [1, 1, 1, 1]);
    // Two windows closed by one terminator.
    assert_eq!(totals("A*(s, m, e)", "s s m e"), [1, 1, 2, 1]);
    // Close without any window: nothing.
    assert_eq!(totals("A*(s, m, e)", "e m e"), [0, 0, 0, 0]);
}

#[test]
fn and_param_volume_per_context() {
    // Param counts distinguish CUMULATIVE from the rest.
    let mut d = det("s ^ m", ParameterContext::Cumulative);
    d.signal("s", vec![], 10).unwrap();
    d.signal("s", vec![], 20).unwrap();
    let f = d.signal("m", vec![], 30).unwrap();
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].occurrence.params.len(), 3, "s1+s2+m merged");

    let mut d = det("s ^ m", ParameterContext::Continuous);
    d.signal("s", vec![], 10).unwrap();
    d.signal("s", vec![], 20).unwrap();
    let f = d.signal("m", vec![], 30).unwrap();
    assert_eq!(f.len(), 2);
    assert!(f.iter().all(|x| x.occurrence.params.len() == 2));
}

#[test]
fn nested_composites_inherit_their_own_contexts() {
    // inner (chronicle) feeds outer (recent): each inner detection is a
    // single occurrence to the outer SEQ.
    let mut d = Detector::new();
    for p in ["s", "m", "e"] {
        d.define_primitive(p).unwrap();
    }
    d.define_composite(
        "inner",
        &snoop::parse("s ^ m").unwrap(),
        ParameterContext::Chronicle,
    )
    .unwrap();
    d.define_composite(
        "outer",
        &snoop::parse("inner ; e").unwrap(),
        ParameterContext::Recent,
    )
    .unwrap();
    d.add_rule(RuleSpec::new("r", "outer")).unwrap();
    d.signal("s", vec![], 10).unwrap();
    d.signal("m", vec![], 20).unwrap(); // inner fires [10,20]
    let f = d.signal("e", vec![], 30).unwrap();
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].occurrence.t_start, 10);
    assert_eq!(f[0].occurrence.params.len(), 3);
}

#[test]
fn periodic_matrix_under_contexts() {
    // Window [s, e], period 10: fires at 20, 30 before e at 35 (s at 10).
    for ctx in ParameterContext::ALL {
        let mut d = det("P(s, [10 usec], e)", ctx);
        d.signal("s", vec![], 10).unwrap();
        let fired = d.advance_to(35).len();
        assert_eq!(fired, 2, "context {ctx}: fires at 20 and 30");
        d.signal("e", vec![], 35).unwrap();
        assert!(d.advance_to(1000).is_empty(), "closed window stops firing");
    }
}

#[test]
fn periodic_star_accumulates_under_contexts() {
    for ctx in ParameterContext::ALL {
        let mut d = det("P*(s, [10 usec], e)", ctx);
        d.signal("s", vec![], 10).unwrap();
        assert!(d.advance_to(35).is_empty(), "P* holds until close");
        let f = d.signal("e", vec![], 40).unwrap();
        assert_eq!(f.len(), 1, "context {ctx}");
        // s + fires(20,30,40) + e — the fire at 40 is simultaneous with the
        // close and processed first.
        assert!(f[0].occurrence.params.len() >= 4, "context {ctx}");
    }
}

#[test]
fn plus_is_context_insensitive() {
    for ctx in ParameterContext::ALL {
        let mut d = det("s PLUS [5 usec]", ctx);
        d.signal("s", vec![], 10).unwrap();
        d.signal("s", vec![], 12).unwrap();
        let fired = d.advance_to(20).len();
        assert_eq!(fired, 2, "context {ctx}: one delayed firing per s");
    }
}
