//! The TCP server: a sharded reactor pool (see [`crate::reactor`])
//! fronted by one listener, plus a small execution worker pool — a fixed
//! thread budget regardless of how many sessions are connected.
//!
//! Topology: `shards` event-loop threads each own a slab of nonblocking
//! sessions; `exec_workers` threads run statements so a long `EXEC`
//! never stalls a shard. With the auto defaults the total is exactly
//! `cores + 2` threads, whether 64 sessions are connected or 10 000.
//!
//! Backpressure: a session whose frame queue reaches `queue_depth` (or
//! whose write buffer backs up) has its read interest parked; the kernel
//! receive buffer fills and TCP flow control pushes back on the client —
//! no unbounded queue anywhere. The queue's high-water mark is tracked
//! per session and surfaced through `STATS`.
//!
//! Shutdown ([`ServeHandle::shutdown`]): stop accepting, pull what each
//! client already sent, half-close the read sides, answer and flush the
//! queued frames, join every thread, then drain the [`ActiveService`]
//! itself — quiescing the notifier pump and in-flight actions — and
//! report what that accomplished.

use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::unbounded;
use eca_core::service::{ActiveService, DrainReport};
use eca_core::{AgentResponse, SagaDisposition};
use relsql::SessionCtx;

use crate::poll::{Interest, Poller, Waker};
use crate::proto::{Request, Response};
use crate::reactor::{self, Inbox, Shard, ShardHandle};
use crate::session::{
    ReactorShardSnapshot, ReactorShardStats, ServeStats, SessionCounters, SessionManager,
    SessionSnapshot,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks a free port (see [`ServeHandle::addr`]).
    pub addr: String,
    /// Connections beyond this are answered `ERR BUSY` and closed.
    pub max_sessions: usize,
    /// Bounded per-session submission queue depth (backpressure point).
    pub queue_depth: usize,
    /// Budget for quiescing the agent during shutdown.
    pub drain_timeout: Duration,
    /// Session identity for connections that skip `HELLO`.
    pub default_db: String,
    pub default_user: String,
    /// Reactor shard count; 0 picks `clamp(cores / 2, 1, 8)`.
    pub shards: usize,
    /// Execution worker count; 0 picks `max(2, cores + 2 - shards)` so
    /// the auto topology lands on exactly `cores + 2` threads.
    pub exec_workers: usize,
    /// Reap sessions idle longer than this (nothing queued, in flight or
    /// pending write). `None` disables the reaper.
    pub idle_timeout: Option<Duration>,
    /// Per-request deadline: queued frames older than this answer
    /// `ERR TIMEOUT` instead of executing, and a partial frame sitting in
    /// the decode buffer longer than this closes the connection
    /// (slow-loris protection). `None` disables both.
    pub request_timeout: Option<Duration>,
    /// Stamped responses retained per session for `ATTACH` replay.
    pub replay_window: usize,
    /// How long a detached session awaits an `ATTACH` before expiring.
    pub detached_ttl: Duration,
    /// `retry_after_ms` hint attached to `ERR BUSY` responses.
    pub busy_retry_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_sessions: 64,
            queue_depth: 32,
            drain_timeout: Duration::from_secs(2),
            default_db: "servedb".into(),
            default_user: "client".into(),
            shards: 0,
            exec_workers: 0,
            idle_timeout: None,
            request_timeout: None,
            replay_window: 64,
            detached_ttl: Duration::from_secs(60),
            busy_retry_ms: 100,
        }
    }
}

impl ServeConfig {
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    pub fn with_max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n;
        self
    }

    pub fn with_queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n.max(1);
        self
    }

    pub fn with_drain_timeout(mut self, t: Duration) -> Self {
        self.drain_timeout = t;
        self
    }

    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    pub fn with_exec_workers(mut self, n: usize) -> Self {
        self.exec_workers = n;
        self
    }

    pub fn with_idle_timeout(mut self, t: Option<Duration>) -> Self {
        self.idle_timeout = t;
        self
    }

    pub fn with_request_timeout(mut self, t: Option<Duration>) -> Self {
        self.request_timeout = t;
        self
    }

    pub fn with_replay_window(mut self, n: usize) -> Self {
        self.replay_window = n.max(1);
        self
    }

    pub fn with_detached_ttl(mut self, t: Duration) -> Self {
        self.detached_ttl = t;
        self
    }

    pub fn with_busy_retry_ms(mut self, ms: u64) -> Self {
        self.busy_retry_ms = ms;
        self
    }

    /// Resolve the auto topology: `(shards, exec_workers)`.
    pub fn topology(&self) -> (usize, usize) {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let shards = if self.shards > 0 {
            self.shards
        } else {
            (cores / 2).clamp(1, 8)
        };
        let workers = if self.exec_workers > 0 {
            self.exec_workers
        } else {
            (cores + 2).saturating_sub(shards).max(2)
        };
        (shards, workers)
    }
}

/// The serving layer. [`EcaServer::start`] binds, spawns the reactor
/// shards and worker pool, and returns a [`ServeHandle`]; everything
/// else happens on those fixed background threads.
pub struct EcaServer;

impl EcaServer {
    pub fn start(
        service: Arc<dyn ActiveService>,
        config: ServeConfig,
    ) -> std::io::Result<ServeHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (nshards, nworkers) = config.topology();
        let stop = Arc::new(AtomicBool::new(false));
        let manager = Arc::new(SessionManager::new(config.max_sessions));

        // Build every shard's shared face first so any shard can hand
        // sessions (and workers completions) to any other.
        let mut pollers = Vec::with_capacity(nshards);
        let mut handles = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let mut poller = Poller::new()?;
            let waker = Arc::new(Waker::new()?);
            poller.add(waker.read_fd(), 0, Interest::READ)?;
            if i == 0 {
                poller.add(listener.as_raw_fd(), 1, Interest::READ)?;
            }
            handles.push(ShardHandle {
                waker,
                inbox: Arc::new(parking_lot::Mutex::new(Inbox::default())),
                stats: Arc::new(ReactorShardStats::default()),
            });
            pollers.push(poller);
        }
        manager.set_reactors(handles.iter().map(|h| Arc::clone(&h.stats)).collect());
        let handles = Arc::new(handles);

        let (job_tx, job_rx) = unbounded();
        let mut worker_threads = Vec::with_capacity(nworkers);
        for i in 0..nworkers {
            let rx = job_rx.clone();
            let service = Arc::clone(&service);
            let manager = Arc::clone(&manager);
            let handles = Arc::clone(&handles);
            let drain_timeout = config.drain_timeout;
            let replay_window = config.replay_window;
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("eca-serve-exec-{i}"))
                    .spawn(move || {
                        reactor::run_worker(
                            rx,
                            service,
                            manager,
                            handles,
                            drain_timeout,
                            replay_window,
                        )
                    })?,
            );
        }

        let mut shard_threads = Vec::with_capacity(nshards);
        let mut listener = Some(listener);
        for (i, poller) in pollers.into_iter().enumerate() {
            let shard = Shard {
                index: i,
                poller,
                waker: Arc::clone(&handles[i].waker),
                listener: if i == 0 { listener.take() } else { None },
                handles: Arc::clone(&handles),
                inbox: Arc::clone(&handles[i].inbox),
                stats: Arc::clone(&handles[i].stats),
                manager: Arc::clone(&manager),
                service: Arc::clone(&service),
                job_tx: job_tx.clone(),
                stop: Arc::clone(&stop),
                queue_depth: config.queue_depth,
                drain_timeout: config.drain_timeout,
                default_ctx: SessionCtx::new(&config.default_db, &config.default_user),
                idle_timeout: config.idle_timeout,
                request_timeout: config.request_timeout,
                replay_window: config.replay_window,
                detached_ttl: config.detached_ttl,
                busy_retry_ms: config.busy_retry_ms,
            };
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("eca-serve-shard-{i}"))
                    .spawn(move || reactor::run_shard(shard))?,
            );
        }
        drop(job_tx); // workers exit when the last shard drops its clone

        Ok(ServeHandle {
            addr,
            stop,
            shard_threads,
            worker_threads,
            handles,
            manager,
            service,
            drain_timeout: config.drain_timeout,
            nshards,
            nworkers,
        })
    }
}

/// Execute one well-formed request. Returns the response and whether the
/// session should close. Called inline on a shard for cheap control
/// frames and from the worker pool for everything else.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process(
    req: Request,
    service: &Arc<dyn ActiveService>,
    counters: &SessionCounters,
    manager: &SessionManager,
    id: u64,
    token: &str,
    ctx: &mut SessionCtx,
    drain_timeout: Duration,
) -> (Response, bool) {
    match req {
        Request::Hello { db, user } => {
            *ctx = SessionCtx::new(&db, &user);
            (
                Response::Hello {
                    session: id,
                    token: token.to_string(),
                },
                false,
            )
        }
        Request::Exec { sql } => match service.execute(&sql, ctx) {
            Ok(resp) => (render_exec(&resp), false),
            Err(e) => (
                Response::Err {
                    code: e.code().into(),
                    message: e.to_string(),
                },
                false,
            ),
        },
        Request::Stats => (stats_response(service, counters, manager, id), false),
        Request::Drain => {
            let report: DrainReport = service.drain(drain_timeout);
            (
                Response::Drain {
                    quiescent: report.quiescent,
                    detached: report.detached_joined as u64,
                    outcomes: report.async_outcomes as u64,
                },
                false,
            )
        }
        Request::Resume => {
            service.resume();
            (Response::Resume, false)
        }
        Request::Ping => (Response::Pong, false),
        Request::Quit => (Response::Bye, true),
        // ATTACH is resolved inline on the shard (it rebinds the
        // connection to another session); one arriving here means a bug.
        Request::Attach { .. } => (
            Response::Err {
                code: crate::proto::CODE_PROTO.into(),
                message: "ATTACH must be the first frame on a connection".into(),
            },
            true,
        ),
    }
}

/// Flatten an [`AgentResponse`] into one `EXEC` frame: counts plus the
/// rendered messages (agent, server, then per-action output).
pub(crate) fn render_exec(resp: &AgentResponse) -> Response {
    let mut text = String::new();
    for m in &resp.messages {
        text.push_str(m);
        text.push('\n');
    }
    for m in &resp.server.messages {
        text.push_str(m);
        text.push('\n');
    }
    let mut rows = 0u64;
    for r in &resp.server.results {
        rows += r.rows.len() as u64;
    }
    let mut failed = 0u64;
    for action in &resp.actions {
        match &action.result {
            Ok(batch) => {
                for m in &batch.messages {
                    text.push_str(&format!("[{}] {m}\n", action.rule));
                }
            }
            Err(e) => {
                failed += 1;
                text.push_str(&format!("[{}] action error: {e}\n", action.rule));
            }
        }
        match action.saga {
            Some(SagaDisposition::Compensated {
                failed_step,
                compensations,
            }) => {
                text.push_str(&format!(
                    "[{}] saga compensated: step {failed_step} failed, \
                     {compensations} compensation(s) applied\n",
                    action.rule
                ));
            }
            Some(SagaDisposition::Parked { failed_step }) => {
                text.push_str(&format!(
                    "[{}] saga parked at step {failed_step}: dead-lettered for requeue\n",
                    action.rule
                ));
            }
            _ => {}
        }
    }
    Response::Exec {
        actions: resp.actions.len() as u64,
        failed,
        rows,
        text: text.trim_end().to_string(),
    }
}

/// The `STATS` frame: agent counters, serve aggregates (including the
/// reactor shard counters), and this session's own counters, in stable
/// key order.
fn stats_response(
    service: &Arc<dyn ActiveService>,
    counters: &SessionCounters,
    manager: &SessionManager,
    id: u64,
) -> Response {
    let a = service.stats();
    let s = manager.stats();
    let fields: Vec<(String, String)> = [
        ("eca_commands", a.eca_commands),
        ("notifications", a.notifications),
        ("malformed_notifications", a.malformed_notifications),
        ("actions_executed", a.actions_executed),
        ("drops_detected", a.drops_detected),
        ("gaps_repaired", a.gaps_repaired),
        ("duplicates_suppressed", a.duplicates_suppressed),
        ("retries", a.retries),
        ("dead_lettered", a.dead_lettered),
        ("notify_overflows", a.notify_overflows),
        ("plan_cache_hits", a.plan_cache_hits),
        ("plan_cache_misses", a.plan_cache_misses),
        ("lock_waits", a.lock_waits),
        ("batches_parallel", a.batches_parallel),
        ("batches_exclusive", a.batches_exclusive),
        ("snapshot_reads", a.snapshot_reads),
        ("snapshot_epoch", a.snapshot_epoch),
        ("batches_inflight_peak", a.batches_inflight_peak),
        ("index_hits", a.index_hits),
        ("index_misses", a.index_misses),
        ("rows_scanned", a.rows_scanned),
        ("exec_compiled", a.exec_compiled),
        ("exec_interpreted", a.exec_interpreted),
        ("exec_fallback_expr", a.exec_fallback_expr),
        ("exec_fallback_scope", a.exec_fallback_scope),
        ("exec_fallback_disabled", a.exec_fallback_disabled),
        ("batches_vectorized", a.batches_vectorized),
        ("rows_batched", a.rows_batched),
        ("plan_lowered_hits", a.plan_lowered_hits),
        ("plan_lowered_misses", a.plan_lowered_misses),
        ("wal_records", a.wal_records),
        ("wal_bytes", a.wal_bytes),
        ("wal_fsyncs", a.wal_fsyncs),
        ("wal_group_commits", a.wal_group_commits),
        ("wal_checkpoints", a.wal_checkpoints),
        ("wal_records_replayed", a.wal_records_replayed),
        ("wal_torn_tail", a.wal_torn_tail),
        ("sagas_started", a.sagas_started),
        ("sagas_committed", a.sagas_committed),
        ("sagas_compensated", a.sagas_compensated),
        ("sagas_resumed", a.sagas_resumed),
        ("saga_steps_executed", a.saga_steps_executed),
        ("saga_compensations", a.saga_compensations),
        ("wire_journaled", a.wire_journaled),
        ("wire_replays", a.wire_replays),
        ("sessions_opened", s.sessions_opened),
        ("sessions_active", s.sessions_active),
        ("sessions_rejected", s.sessions_rejected),
        ("requests", s.requests),
        ("errors", s.errors),
        ("reactor_shards", s.reactor_shards),
        ("sessions_idle", s.sessions_idle),
        ("wakeups", s.wakeups),
        ("partial_reads", s.partial_reads),
        ("write_blocked", s.write_blocked),
        ("accept_overflows", s.accept_overflows),
        ("sessions_resumed", s.sessions_resumed),
        ("sessions_expired", s.sessions_expired),
        ("sessions_reaped", s.sessions_reaped),
        ("sessions_detached", s.sessions_detached),
        ("replays_served", s.replays_served),
        ("requests_timed_out", s.requests_timed_out),
        ("session_id", id),
        (
            "session_received",
            counters.received.load(Ordering::Relaxed),
        ),
        (
            "session_executed",
            counters.executed.load(Ordering::Relaxed),
        ),
        ("session_errors", counters.errors.load(Ordering::Relaxed)),
        (
            "session_queue_high_water",
            counters.queue_high_water.load(Ordering::Relaxed) as u64,
        ),
        ("draining", service.is_draining() as u64),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v.to_string()))
    .collect();
    Response::Stats { fields }
}

/// Running server handle. Dropping it without calling
/// [`ServeHandle::shutdown`] leaves the reactor threads serving until
/// the process exits — call `shutdown` for the graceful path.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shard_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    handles: Arc<Vec<ShardHandle>>,
    manager: Arc<SessionManager>,
    service: Arc<dyn ActiveService>,
    drain_timeout: Duration,
    nshards: usize,
    nworkers: usize,
}

impl ServeHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve-layer aggregate counters.
    pub fn serve_stats(&self) -> ServeStats {
        self.manager.stats()
    }

    /// Live per-session counter snapshots.
    pub fn sessions(&self) -> Vec<SessionSnapshot> {
        self.manager.sessions()
    }

    /// Per-shard reactor counter snapshots.
    pub fn reactor_stats(&self) -> Vec<ReactorShardSnapshot> {
        self.manager.reactor_stats()
    }

    /// Reactor shard count.
    pub fn reactor_shards(&self) -> usize {
        self.nshards
    }

    /// Execution worker count.
    pub fn exec_workers(&self) -> usize {
        self.nworkers
    }

    /// Total serve-layer threads (shards + execution workers) — the
    /// fixed budget that holds at any session count.
    pub fn serve_threads(&self) -> usize {
        self.nshards + self.nworkers
    }

    /// Graceful shutdown: stop accepting, half-close session read sides
    /// so queued frames still execute and answer, join every thread,
    /// then quiesce the service itself (notifier pump, DETACHED actions,
    /// watermarks). Returns what the final drain accomplished.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.iter() {
            h.waker.wake();
        }
        for t in std::mem::take(&mut self.shard_threads) {
            let _ = t.join();
        }
        for h in self.handles.iter() {
            h.close_stranded(&self.manager);
        }
        // Every shard has dropped its job sender by now, so the channel
        // disconnects and the workers run dry.
        for t in std::mem::take(&mut self.worker_threads) {
            let _ = t.join();
        }
        self.service.drain(self.drain_timeout)
    }
}
