//! The TCP server: an accept loop, two threads per connection (reader /
//! worker) joined by a bounded submission queue, and a graceful drain.
//!
//! Backpressure: the reader parses frames off the socket and pushes them
//! into a bounded crossbeam channel. When a session outruns the agent the
//! channel fills, the reader blocks, the kernel receive buffer fills, and
//! TCP flow control pushes back on the client — no unbounded queue
//! anywhere. The queue's high-water mark is tracked per session and
//! surfaced through `STATS`.
//!
//! Shutdown ([`ServeHandle::shutdown`]): stop accepting, half-close every
//! session's read side (readers see EOF, workers finish the frames already
//! queued and answer them), join all threads, then drain the
//! [`ActiveService`] itself — quiescing the notifier pump and in-flight
//! actions — and report what that accomplished.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use eca_core::service::{ActiveService, DrainReport};
use eca_core::{AgentResponse, SagaDisposition};
use parking_lot::Mutex;
use relsql::SessionCtx;

use crate::proto::{ProtoError, Request, Response, CODE_BUSY, CODE_PROTO};
use crate::session::{ServeStats, SessionCounters, SessionManager, SessionSnapshot};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks a free port (see [`ServeHandle::addr`]).
    pub addr: String,
    /// Connections beyond this are answered `ERR BUSY` and closed.
    pub max_sessions: usize,
    /// Bounded per-session submission queue depth (backpressure point).
    pub queue_depth: usize,
    /// Budget for quiescing the agent during shutdown.
    pub drain_timeout: Duration,
    /// Session identity for connections that skip `HELLO`.
    pub default_db: String,
    pub default_user: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_sessions: 64,
            queue_depth: 32,
            drain_timeout: Duration::from_secs(2),
            default_db: "servedb".into(),
            default_user: "client".into(),
        }
    }
}

impl ServeConfig {
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    pub fn with_max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n;
        self
    }

    pub fn with_queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n.max(1);
        self
    }

    pub fn with_drain_timeout(mut self, t: Duration) -> Self {
        self.drain_timeout = t;
        self
    }
}

/// The serving layer. [`EcaServer::start`] binds, spawns the accept loop
/// and returns a [`ServeHandle`]; everything else happens on background
/// threads.
pub struct EcaServer;

impl EcaServer {
    pub fn start(
        service: Arc<dyn ActiveService>,
        config: ServeConfig,
    ) -> std::io::Result<ServeHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let manager = Arc::new(SessionManager::new(config.max_sessions));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let stop = Arc::clone(&stop);
            let manager = Arc::clone(&manager);
            let workers = Arc::clone(&workers);
            let service = Arc::clone(&service);
            let config = config.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            accept_connection(&service, &manager, &workers, &config, stream);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                // Listener drops here: further connects are refused.
            })
        };

        Ok(ServeHandle {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            manager,
            workers,
            service,
            drain_timeout: config.drain_timeout,
        })
    }
}

fn accept_connection(
    service: &Arc<dyn ActiveService>,
    manager: &Arc<SessionManager>,
    workers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    config: &ServeConfig,
    stream: TcpStream,
) {
    let Some((id, counters)) = manager.try_open(&stream) else {
        // Over the session limit: say so and close.
        let mut w = BufWriter::new(&stream);
        let _ = writeln!(
            w,
            "{}",
            Response::Err {
                code: CODE_BUSY.into(),
                message: "session limit reached".into(),
            }
            .encode()
        );
        let _ = w.flush();
        return;
    };
    let (tx, rx) = bounded::<Result<Request, ProtoError>>(config.queue_depth);
    // Reader: socket → bounded queue. Blocks when the queue is full, which
    // is the backpressure point.
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            manager.close(id);
            return;
        }
    };
    let reader = {
        let counters = Arc::clone(&counters);
        std::thread::spawn(move || read_loop(reader_stream, &tx, &counters))
    };
    // Worker: bounded queue → service → socket.
    let worker = {
        let service = Arc::clone(service);
        let manager = Arc::clone(manager);
        let counters = Arc::clone(&counters);
        let default_ctx = SessionCtx::new(&config.default_db, &config.default_user);
        let drain_timeout = config.drain_timeout;
        let unblock = stream.try_clone().ok();
        std::thread::spawn(move || {
            work_loop(
                stream,
                &rx,
                &service,
                &counters,
                &manager,
                id,
                default_ctx,
                drain_timeout,
            );
            // The reader may be blocked in read_line on a client that never
            // closes its end; half-close the read side so it sees EOF.
            if let Some(s) = unblock {
                let _ = s.shutdown(std::net::Shutdown::Read);
            }
            manager.close(id);
            let _ = reader.join();
        })
    };
    workers.lock().push(worker);
}

fn read_loop(
    stream: TcpStream,
    tx: &Sender<Result<Request, ProtoError>>,
    counters: &SessionCounters,
) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // EOF or socket gone
            Ok(_) => {}
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        counters.received.fetch_add(1, Ordering::Relaxed);
        if tx.send(Request::parse(trimmed)).is_err() {
            return; // worker gone
        }
        counters.observe_queue_depth(tx.len());
    }
}

#[allow(clippy::too_many_arguments)]
fn work_loop(
    stream: TcpStream,
    rx: &Receiver<Result<Request, ProtoError>>,
    service: &Arc<dyn ActiveService>,
    counters: &SessionCounters,
    manager: &SessionManager,
    id: u64,
    mut ctx: SessionCtx,
    drain_timeout: Duration,
) {
    let mut writer = BufWriter::new(stream);
    while let Ok(frame) = rx.recv() {
        let (response, quit) = match frame {
            Err(proto) => (
                Response::Err {
                    code: CODE_PROTO.into(),
                    message: proto.message,
                },
                false,
            ),
            Ok(req) => process(req, service, counters, manager, id, &mut ctx, drain_timeout),
        };
        counters.executed.fetch_add(1, Ordering::Relaxed);
        if matches!(response, Response::Err { .. }) {
            counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        if writeln!(writer, "{}", response.encode()).is_err() || writer.flush().is_err() {
            return;
        }
        if quit {
            return; // socket closes when writer/stream drop
        }
    }
}

/// Execute one well-formed request. Returns the response and whether the
/// session should close.
fn process(
    req: Request,
    service: &Arc<dyn ActiveService>,
    counters: &SessionCounters,
    manager: &SessionManager,
    id: u64,
    ctx: &mut SessionCtx,
    drain_timeout: Duration,
) -> (Response, bool) {
    match req {
        Request::Hello { db, user } => {
            *ctx = SessionCtx::new(&db, &user);
            (Response::Hello { session: id }, false)
        }
        Request::Exec { sql } => match service.execute(&sql, ctx) {
            Ok(resp) => (render_exec(&resp), false),
            Err(e) => (
                Response::Err {
                    code: e.code().into(),
                    message: e.to_string(),
                },
                false,
            ),
        },
        Request::Stats => (stats_response(service, counters, manager, id), false),
        Request::Drain => {
            let report: DrainReport = service.drain(drain_timeout);
            (
                Response::Drain {
                    quiescent: report.quiescent,
                    detached: report.detached_joined as u64,
                    outcomes: report.async_outcomes as u64,
                },
                false,
            )
        }
        Request::Resume => {
            service.resume();
            (Response::Resume, false)
        }
        Request::Ping => (Response::Pong, false),
        Request::Quit => (Response::Bye, true),
    }
}

/// Flatten an [`AgentResponse`] into one `EXEC` frame: counts plus the
/// rendered messages (agent, server, then per-action output).
fn render_exec(resp: &AgentResponse) -> Response {
    let mut text = String::new();
    for m in &resp.messages {
        text.push_str(m);
        text.push('\n');
    }
    for m in &resp.server.messages {
        text.push_str(m);
        text.push('\n');
    }
    let mut rows = 0u64;
    for r in &resp.server.results {
        rows += r.rows.len() as u64;
    }
    let mut failed = 0u64;
    for action in &resp.actions {
        match &action.result {
            Ok(batch) => {
                for m in &batch.messages {
                    text.push_str(&format!("[{}] {m}\n", action.rule));
                }
            }
            Err(e) => {
                failed += 1;
                text.push_str(&format!("[{}] action error: {e}\n", action.rule));
            }
        }
        match action.saga {
            Some(SagaDisposition::Compensated {
                failed_step,
                compensations,
            }) => {
                text.push_str(&format!(
                    "[{}] saga compensated: step {failed_step} failed, \
                     {compensations} compensation(s) applied\n",
                    action.rule
                ));
            }
            Some(SagaDisposition::Parked { failed_step }) => {
                text.push_str(&format!(
                    "[{}] saga parked at step {failed_step}: dead-lettered for requeue\n",
                    action.rule
                ));
            }
            _ => {}
        }
    }
    Response::Exec {
        actions: resp.actions.len() as u64,
        failed,
        rows,
        text: text.trim_end().to_string(),
    }
}

/// The `STATS` frame: agent counters, serve aggregates, and this session's
/// own counters, in stable key order.
fn stats_response(
    service: &Arc<dyn ActiveService>,
    counters: &SessionCounters,
    manager: &SessionManager,
    id: u64,
) -> Response {
    let a = service.stats();
    let s = manager.stats();
    let fields: Vec<(String, String)> = [
        ("eca_commands", a.eca_commands),
        ("notifications", a.notifications),
        ("malformed_notifications", a.malformed_notifications),
        ("actions_executed", a.actions_executed),
        ("drops_detected", a.drops_detected),
        ("gaps_repaired", a.gaps_repaired),
        ("duplicates_suppressed", a.duplicates_suppressed),
        ("retries", a.retries),
        ("dead_lettered", a.dead_lettered),
        ("notify_overflows", a.notify_overflows),
        ("plan_cache_hits", a.plan_cache_hits),
        ("plan_cache_misses", a.plan_cache_misses),
        ("lock_waits", a.lock_waits),
        ("batches_parallel", a.batches_parallel),
        ("batches_exclusive", a.batches_exclusive),
        ("snapshot_reads", a.snapshot_reads),
        ("snapshot_epoch", a.snapshot_epoch),
        ("batches_inflight_peak", a.batches_inflight_peak),
        ("index_hits", a.index_hits),
        ("index_misses", a.index_misses),
        ("rows_scanned", a.rows_scanned),
        ("exec_compiled", a.exec_compiled),
        ("exec_interpreted", a.exec_interpreted),
        ("exec_fallback_expr", a.exec_fallback_expr),
        ("exec_fallback_scope", a.exec_fallback_scope),
        ("exec_fallback_disabled", a.exec_fallback_disabled),
        ("batches_vectorized", a.batches_vectorized),
        ("rows_batched", a.rows_batched),
        ("plan_lowered_hits", a.plan_lowered_hits),
        ("plan_lowered_misses", a.plan_lowered_misses),
        ("wal_records", a.wal_records),
        ("wal_bytes", a.wal_bytes),
        ("wal_fsyncs", a.wal_fsyncs),
        ("wal_group_commits", a.wal_group_commits),
        ("wal_checkpoints", a.wal_checkpoints),
        ("wal_records_replayed", a.wal_records_replayed),
        ("wal_torn_tail", a.wal_torn_tail),
        ("sagas_started", a.sagas_started),
        ("sagas_committed", a.sagas_committed),
        ("sagas_compensated", a.sagas_compensated),
        ("sagas_resumed", a.sagas_resumed),
        ("saga_steps_executed", a.saga_steps_executed),
        ("saga_compensations", a.saga_compensations),
        ("sessions_opened", s.sessions_opened),
        ("sessions_active", s.sessions_active),
        ("sessions_rejected", s.sessions_rejected),
        ("requests", s.requests),
        ("errors", s.errors),
        ("session_id", id),
        (
            "session_received",
            counters.received.load(Ordering::Relaxed),
        ),
        (
            "session_executed",
            counters.executed.load(Ordering::Relaxed),
        ),
        ("session_errors", counters.errors.load(Ordering::Relaxed)),
        (
            "session_queue_high_water",
            counters.queue_high_water.load(Ordering::Relaxed) as u64,
        ),
        ("draining", service.is_draining() as u64),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v.to_string()))
    .collect();
    Response::Stats { fields }
}

/// Running server handle. Dropping it without calling
/// [`ServeHandle::shutdown`] aborts the accept loop but leaves sessions to
/// die with the process — call `shutdown` for the graceful path.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    manager: Arc<SessionManager>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    service: Arc<dyn ActiveService>,
    drain_timeout: Duration,
}

impl ServeHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve-layer aggregate counters.
    pub fn serve_stats(&self) -> ServeStats {
        self.manager.stats()
    }

    /// Live per-session counter snapshots.
    pub fn sessions(&self) -> Vec<SessionSnapshot> {
        self.manager.sessions()
    }

    /// Graceful shutdown: stop accepting, half-close session read sides so
    /// queued frames still execute and answer, join every thread, then
    /// quiesce the service itself (notifier pump, DETACHED actions,
    /// watermarks). Returns what the final drain accomplished.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.manager.shutdown_sockets();
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
        self.service.drain(self.drain_timeout)
    }
}
