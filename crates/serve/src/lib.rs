//! # eca-serve — concurrent multi-client service layer for the ECA Agent
//!
//! The paper's agent mediates between *clients* and the passive SQL
//! server: applications connect to the agent, not to Sybase directly
//! (Chakravarthy & Li, §3 figure 2). Earlier layers of this repo drove the
//! agent through an in-process handle; this crate adds the missing piece —
//! a real serving layer that multiplexes N concurrent client connections
//! onto one [`eca_core::service::ActiveService`]:
//!
//! - a newline-delimited request/response **wire protocol** ([`proto`])
//!   shared by server and client so the grammar cannot drift;
//! - a **session manager** ([`session`]) with a hard session limit and
//!   per-session + aggregate counters surfaced through `STATS`;
//! - a **sharded reactor pool** ([`reactor`] behind [`server`]): N
//!   event-loop threads own slabs of nonblocking sessions via hand-rolled
//!   readiness polling ([`poll`] — epoll on Linux, poll(2) elsewhere),
//!   decode frames incrementally ([`proto::FrameDecoder`]) and hand
//!   statements to a small execution worker pool, so 10k+ sessions ride
//!   on a fixed `cores + 2` thread budget;
//! - a **bounded per-session submission queue** whose full state parks
//!   the session's read interest — backpressure reaches the client as
//!   TCP flow control rather than unbounded memory growth;
//! - **graceful shutdown** ([`ServeHandle::shutdown`]) that half-closes
//!   read sides, answers everything already queued, then drains the
//!   service itself (notifier pump, DETACHED actions, watermarks);
//! - a synchronous [`client::ServeClient`] with both call/response helpers
//!   and raw pipelining for throughput work.
//!
//! The `eca_serve` binary wires this to a fresh agent; the E11 experiment
//! in `crates/bench` measures 8 clients × 1,000 statements against it and
//! E18 holds 10k idle sessions plus 64 hot ones on the fixed thread pool.
//!
//! ```no_run
//! use std::sync::Arc;
//! use eca_core::{ActiveService, AgentConfig, EcaAgent};
//! use eca_serve::{EcaServer, ServeConfig, ServeClient};
//! use relsql::SqlServer;
//!
//! let server = SqlServer::new();
//! let agent = EcaAgent::new(server, AgentConfig::builder().build()).unwrap();
//! let service: Arc<dyn ActiveService> = Arc::new(agent);
//! let handle = EcaServer::start(service, ServeConfig::default()).unwrap();
//! let (mut client, _id) = ServeClient::connect_as(handle.addr(), "db", "me").unwrap();
//! client.exec("create table t (a int)").unwrap();
//! let report = handle.shutdown();
//! assert!(report.quiescent);
//! ```

pub mod chaos;
pub mod client;
pub mod poll;
pub mod proto;
mod reactor;
pub mod server;
pub mod session;

pub use chaos::{ChaosCounters, ChaosListener, ChaosStream, ConnPlan};
pub use client::{ClientError, ExecResult, ReconnectPolicy, ServeClient};
pub use proto::{
    busy_message, busy_retry_hint, stamp, strip_stamp, FrameDecoder, Request, Response, CODE_BUSY,
    CODE_PROTO, CODE_SEQ, CODE_TIMEOUT,
};
pub use server::{EcaServer, ServeConfig, ServeHandle};
pub use session::{ReactorShardSnapshot, ServeStats, SessionSnapshot};
