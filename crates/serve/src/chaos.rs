//! Fault-injecting transport for resilience tests (DESIGN.md §16).
//!
//! Two layers, both deterministic under a caller-supplied plan so every
//! failure a test provokes is reproducible from its seed:
//!
//! - [`ChaosStream`] wraps any `Read + Write` and enforces a byte-level
//!   fault plan on it: writes die at a chosen offset (mid-frame kills),
//!   and are optionally fragmented into tiny chunks (truncated/coalesced
//!   write boundaries for the incremental decoder).
//! - [`ChaosListener`] is a TCP proxy: tests point a real client at it,
//!   it forwards to the real server, and per connection it kills the
//!   link after an exact number of forwarded bytes in either direction —
//!   or refuses the connection outright (accept-time partition). This
//!   injects faults *between* unmodified endpoints, so the server's
//!   reactor and the client's reconnect logic are exercised verbatim,
//!   including across a `kill -9`ed and restarted server process.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection fault plan for [`ChaosListener`] (and the write half
/// of [`ChaosStream`]). The default plan is a transparent proxy.
#[derive(Debug, Clone)]
pub struct ConnPlan {
    /// Refuse the connection at accept time (network partition).
    pub deny: bool,
    /// Kill the link after forwarding this many client→server bytes.
    /// Offsets inside a frame produce mid-frame kills; offsets on frame
    /// boundaries exercise the lost-response window.
    pub kill_c2s_after: Option<u64>,
    /// Kill the link after forwarding this many server→client bytes.
    pub kill_s2c_after: Option<u64>,
    /// Forward in chunks of at most this many bytes (write truncation /
    /// coalescing boundaries for the incremental decoder).
    pub chunk: usize,
    /// Pause between forwarded chunks (delayed writes).
    pub chunk_delay: Duration,
}

impl Default for ConnPlan {
    fn default() -> Self {
        ConnPlan {
            deny: false,
            kill_c2s_after: None,
            kill_s2c_after: None,
            chunk: 64 * 1024,
            chunk_delay: Duration::ZERO,
        }
    }
}

impl ConnPlan {
    /// Transparent pass-through.
    pub fn clean() -> ConnPlan {
        ConnPlan::default()
    }

    /// Kill after `n` client→server bytes.
    pub fn kill_c2s(n: u64) -> ConnPlan {
        ConnPlan {
            kill_c2s_after: Some(n),
            ..ConnPlan::default()
        }
    }

    /// Kill after `n` server→client bytes.
    pub fn kill_s2c(n: u64) -> ConnPlan {
        ConnPlan {
            kill_s2c_after: Some(n),
            ..ConnPlan::default()
        }
    }

    /// Refuse the connection at accept.
    pub fn denied() -> ConnPlan {
        ConnPlan {
            deny: true,
            ..ConnPlan::default()
        }
    }

    /// Fragment forwarded data into `chunk`-byte writes with `delay`
    /// between them.
    pub fn fragmented(chunk: usize, delay: Duration) -> ConnPlan {
        ConnPlan {
            chunk: chunk.max(1),
            chunk_delay: delay,
            ..ConnPlan::default()
        }
    }
}

/// Counters the proxy keeps (all lifetime totals).
#[derive(Debug, Default)]
pub struct ChaosCounters {
    pub accepted: AtomicU64,
    pub denied: AtomicU64,
    pub killed: AtomicU64,
}

/// A fault-injecting TCP proxy. Connections are numbered in accept
/// order (0-based) and each gets the plan the planner returns for its
/// index — fully deterministic for a deterministic planner.
pub struct ChaosListener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosListener {
    /// Start proxying `upstream` on an ephemeral local port. `planner`
    /// maps the accept index to that connection's fault plan.
    pub fn start(
        upstream: impl ToSocketAddrs,
        planner: impl Fn(u64) -> ConnPlan + Send + 'static,
    ) -> std::io::Result<ChaosListener> {
        let upstream: SocketAddr = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("upstream resolved to nothing"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ChaosCounters::default());
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || {
                    let mut idx: u64 = 0;
                    loop {
                        let Ok((down, _)) = listener.accept() else {
                            break;
                        };
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let plan = planner(idx);
                        idx += 1;
                        if plan.deny {
                            counters.denied.fetch_add(1, Ordering::Relaxed);
                            let _ = down.shutdown(Shutdown::Both);
                            continue;
                        }
                        let Ok(up) = TcpStream::connect(upstream) else {
                            let _ = down.shutdown(Shutdown::Both);
                            continue;
                        };
                        counters.accepted.fetch_add(1, Ordering::Relaxed);
                        spawn_pipes(down, up, plan, Arc::clone(&counters));
                    }
                })?
        };
        Ok(ChaosListener {
            addr,
            stop,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn counters(&self) -> &ChaosCounters {
        &self.counters
    }

    /// Stop accepting. Existing pipes run until their streams close.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosListener {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Forward both directions, killing the whole link the moment either
/// direction crosses its byte budget.
fn spawn_pipes(down: TcpStream, up: TcpStream, plan: ConnPlan, counters: Arc<ChaosCounters>) {
    let (Ok(down2), Ok(up2)) = (down.try_clone(), up.try_clone()) else {
        let _ = down.shutdown(Shutdown::Both);
        let _ = up.shutdown(Shutdown::Both);
        return;
    };
    let p = plan.clone();
    let c = Arc::clone(&counters);
    let _ = std::thread::Builder::new().name("chaos-c2s".into()).spawn({
        let kill_all = move |a: &TcpStream, b: &TcpStream| {
            let _ = a.shutdown(Shutdown::Both);
            let _ = b.shutdown(Shutdown::Both);
        };
        move || {
            pipe(&down, &up, p.kill_c2s_after, p.chunk, p.chunk_delay, &c);
            kill_all(&down, &up);
        }
    });
    let _ = std::thread::Builder::new()
        .name("chaos-s2c".into())
        .spawn(move || {
            pipe(
                &up2,
                &down2,
                plan.kill_s2c_after,
                plan.chunk,
                plan.chunk_delay,
                &counters,
            );
            let _ = up2.shutdown(Shutdown::Both);
            let _ = down2.shutdown(Shutdown::Both);
        });
}

/// Copy `src` → `dst` honoring a byte budget and chunking. Returns when
/// the budget is spent, the source closes, or the sink fails.
fn pipe(
    mut src: &TcpStream,
    mut dst: &TcpStream,
    budget: Option<u64>,
    chunk: usize,
    delay: Duration,
    counters: &ChaosCounters,
) {
    let mut remaining = budget;
    let mut buf = vec![0u8; 16 * 1024];
    loop {
        let want = buf.len().min(chunk.max(1));
        let n = match src.read(&mut buf[..want]) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        let allowed = match remaining {
            None => n,
            Some(r) => (r.min(n as u64)) as usize,
        };
        if allowed > 0 && dst.write_all(&buf[..allowed]).is_err() {
            return;
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        if let Some(r) = remaining.as_mut() {
            *r -= allowed as u64;
            if *r == 0 {
                // Budget spent: the caller severs both directions.
                counters.killed.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// A `Read + Write` wrapper enforcing a byte-level write fault plan —
/// for in-process tests of the frame codec across kill boundaries.
pub struct ChaosStream<S> {
    inner: S,
    /// Remaining write budget; crossing it "kills the wire".
    write_budget: Option<u64>,
    /// Largest single write passed through (fragmentation).
    chunk: usize,
    dead: bool,
}

impl<S> ChaosStream<S> {
    pub fn new(inner: S) -> ChaosStream<S> {
        ChaosStream {
            inner,
            write_budget: None,
            chunk: usize::MAX,
            dead: false,
        }
    }

    /// Kill the stream after `n` written bytes.
    pub fn with_write_budget(mut self, n: u64) -> Self {
        self.write_budget = Some(n);
        self
    }

    /// Fragment writes to at most `n` bytes each.
    pub fn with_chunk(mut self, n: usize) -> Self {
        self.chunk = n.max(1);
        self
    }

    /// Whether the fault plan has severed the stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "chaos: connection killed",
            ));
        }
        let mut allowed = buf.len().min(self.chunk);
        if let Some(budget) = self.write_budget {
            allowed = allowed.min(budget as usize);
            if allowed == 0 {
                self.dead = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "chaos: write budget exhausted",
                ));
            }
        }
        let n = self.inner.write(&buf[..allowed])?;
        if let Some(budget) = self.write_budget.as_mut() {
            *budget -= n as u64;
        }
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "chaos: connection killed",
            ));
        }
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_stream_kills_at_exact_offset() {
        let mut s = ChaosStream::new(Vec::new()).with_write_budget(5);
        assert_eq!(s.write(b"abc").unwrap(), 3);
        assert_eq!(s.write(b"defg").unwrap(), 2); // truncated at the budget
        let err = s.write(b"h").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        assert!(s.is_dead());
        assert_eq!(s.get_ref(), b"abcde");
    }

    #[test]
    fn chaos_stream_fragments_writes() {
        let mut s = ChaosStream::new(Vec::new()).with_chunk(2);
        assert_eq!(s.write(b"abcdef").unwrap(), 2);
        assert_eq!(s.get_ref(), b"ab");
    }
}
