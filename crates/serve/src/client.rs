//! A small synchronous client for the wire protocol, used by `eca_serve`
//! tooling, the E11 benchmark and the integration tests.
//!
//! Two styles:
//!
//! - request/response helpers ([`ServeClient::exec`], [`ServeClient::stats`],
//!   …) that send one frame and block for its reply;
//! - raw [`ServeClient::send`] / [`ServeClient::recv`] for pipelining many
//!   frames before reading any replies — this is what actually exercises
//!   the server's bounded-queue backpressure.

use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{FrameDecoder, ProtoError, Request, Response};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket trouble (includes the server closing the connection).
    Io(std::io::Error),
    /// The server sent a frame we cannot parse.
    Proto(ProtoError),
    /// The server answered `ERR code message`.
    Server { code: String, message: String },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            ClientError::Server { .. } => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One connection to an `eca_serve` server. Responses are reassembled
/// through the same incremental [`FrameDecoder`] the server's reactor
/// uses, so both halves of the protocol exercise one codec.
pub struct ServeClient {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl ServeClient {
    /// Connect without binding an identity (server defaults apply).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Ok(ServeClient {
            stream,
            decoder: FrameDecoder::new(),
        })
    }

    /// Connect and bind a session identity; returns the server-assigned
    /// session id.
    pub fn connect_as(
        addr: impl ToSocketAddrs,
        db: &str,
        user: &str,
    ) -> Result<(ServeClient, u64), ClientError> {
        let mut client = ServeClient::connect(addr)?;
        let session = client.hello(db, user)?;
        Ok((client, session))
    }

    /// Send one frame without waiting for the reply (pipelining).
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let mut line = req.encode();
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Block for the next response frame. `ERR` frames are returned as
    /// `Ok(Response::Err { .. })` here — use the typed helpers to turn them
    /// into [`ClientError::Server`].
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut chunk = [0u8; 4096];
        loop {
            while let Some(frame) = self.decoder.next_frame() {
                let text = String::from_utf8(frame)
                    .map_err(|_| ClientError::Proto(ProtoError::new("non-UTF-8 frame")))?;
                let trimmed = text.trim_end_matches(['\n', '\r']);
                if trimmed.is_empty() {
                    continue;
                }
                return Ok(Response::parse(trimmed)?);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.decoder.feed(&chunk[..n]);
        }
    }

    /// Send one frame and block for its reply, mapping `ERR` to
    /// [`ClientError::Server`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        match self.recv()? {
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Bind this session's identity; returns the session id.
    pub fn hello(&mut self, db: &str, user: &str) -> Result<u64, ClientError> {
        match self.call(&Request::Hello {
            db: db.into(),
            user: user.into(),
        })? {
            Response::Hello { session } => Ok(session),
            other => Err(unexpected(other)),
        }
    }

    /// Execute one batch (SQL or ECA command).
    pub fn exec(&mut self, sql: &str) -> Result<ExecResult, ClientError> {
        match self.call(&Request::Exec { sql: sql.into() })? {
            Response::Exec {
                actions,
                failed,
                rows,
                text,
            } => Ok(ExecResult {
                actions,
                failed,
                rows,
                text,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Counter snapshot as (key, value) pairs in server order.
    pub fn stats(&mut self) -> Result<Vec<(String, String)>, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { fields } => Ok(fields),
            other => Err(unexpected(other)),
        }
    }

    /// One numeric stats field, or an error if absent/non-numeric.
    pub fn stat_u64(&mut self, key: &str) -> Result<u64, ClientError> {
        let fields = self.stats()?;
        fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| {
                ClientError::Proto(ProtoError::new(format!("no numeric stats field '{key}'")))
            })
    }

    /// Ask the service to quiesce; returns (quiescent, detached, outcomes).
    pub fn drain(&mut self) -> Result<(bool, u64, u64), ClientError> {
        match self.call(&Request::Drain)? {
            Response::Drain {
                quiescent,
                detached,
                outcomes,
            } => Ok((quiescent, detached, outcomes)),
            other => Err(unexpected(other)),
        }
    }

    /// Lift the drain latch.
    pub fn resume(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Resume)? {
            Response::Resume => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Close the session politely (waits for `BYE`).
    pub fn quit(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Quit)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> ClientError {
    ClientError::Proto(ProtoError::new(format!(
        "unexpected response frame: {}",
        resp.encode()
    )))
}

/// Decoded `OK EXEC` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Rule actions the batch triggered.
    pub actions: u64,
    /// Of those, how many failed (after retries).
    pub failed: u64,
    /// Result rows across the batch.
    pub rows: u64,
    /// Rendered output (server messages, agent messages, action output).
    pub text: String,
}
