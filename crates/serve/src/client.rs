//! A small synchronous client for the wire protocol, used by `eca_serve`
//! tooling, the E11 benchmark and the integration tests.
//!
//! Two styles:
//!
//! - request/response helpers ([`ServeClient::exec`], [`ServeClient::stats`],
//!   …) that send one frame and block for its reply;
//! - raw [`ServeClient::send`] / [`ServeClient::recv`] for pipelining many
//!   frames before reading any replies — this is what actually exercises
//!   the server's bounded-queue backpressure.

use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{
    busy_retry_hint, stamp, strip_stamp, FrameDecoder, ProtoError, Request, Response, CODE_BUSY,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket trouble (includes the server closing the connection).
    Io(std::io::Error),
    /// The server sent a frame we cannot parse.
    Proto(ProtoError),
    /// The server answered `ERR code message`.
    Server { code: String, message: String },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            ClientError::Server { .. } => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Reconnect/backoff tuning for [`ServeClient::connect_resilient`]:
/// capped exponential backoff with deterministic (seeded) jitter.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// First-retry delay; doubles per attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Reconnect attempts per call before giving up with an I/O error.
    pub max_retries: u32,
    /// Jitter seed — two clients with different seeds desynchronize
    /// their retry storms.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(250),
            max_retries: 32,
            seed: 0x5EED_F00D,
        }
    }
}

/// State behind a resilient session (DESIGN.md §16): the resume token,
/// the request seq cursor, and the reconnect policy.
struct ResilientState {
    addr: String,
    db: String,
    user: String,
    /// Seq to stamp on the next request.
    next_seq: u64,
    /// Highest seq whose response this client has consumed.
    last_acked: u64,
    policy: ReconnectPolicy,
    rng: u64,
    /// Reconnections performed over this client's lifetime.
    reconnects: u64,
}

/// One connection to an `eca_serve` server. Responses are reassembled
/// through the same incremental [`FrameDecoder`] the server's reactor
/// uses, so both halves of the protocol exercise one codec.
///
/// A client built with [`ServeClient::connect_resilient`] additionally
/// stamps every request with a session-monotonic seq and transparently
/// reconnects on socket failure: it re-`ATTACH`es with its resume token,
/// consumes the server's replay window, and only re-submits a request
/// the server provably never saw — making [`ServeClient::call`]
/// exactly-once across connection loss.
pub struct ServeClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Resume token from the `HELLO` response (empty before `hello`).
    token: String,
    resilient: Option<ResilientState>,
}

impl ServeClient {
    /// Connect without binding an identity (server defaults apply).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Ok(ServeClient {
            stream,
            decoder: FrameDecoder::new(),
            token: String::new(),
            resilient: None,
        })
    }

    /// Connect and bind a session identity; returns the server-assigned
    /// session id.
    pub fn connect_as(
        addr: impl ToSocketAddrs,
        db: &str,
        user: &str,
    ) -> Result<(ServeClient, u64), ClientError> {
        let mut client = ServeClient::connect(addr)?;
        let session = client.hello(db, user)?;
        Ok((client, session))
    }

    /// Connect in resilient mode: every subsequent [`ServeClient::call`]
    /// is stamped and survives connection loss exactly-once.
    pub fn connect_resilient(
        addr: &str,
        db: &str,
        user: &str,
        policy: ReconnectPolicy,
    ) -> Result<(ServeClient, u64), ClientError> {
        let mut client = ServeClient::connect(addr)?;
        let session = client.hello(db, user)?;
        client.resilient = Some(ResilientState {
            addr: addr.to_string(),
            db: db.to_string(),
            user: user.to_string(),
            next_seq: 1,
            last_acked: 0,
            rng: policy.seed | 1,
            policy,
            reconnects: 0,
        });
        Ok((client, session))
    }

    /// The resume token the server issued at `HELLO` (empty before).
    pub fn resume_token(&self) -> &str {
        &self.token
    }

    /// Reconnections this client has performed (resilient mode only).
    pub fn reconnects(&self) -> u64 {
        self.resilient.as_ref().map_or(0, |st| st.reconnects)
    }

    /// Send one frame without waiting for the reply (pipelining).
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let mut line = req.encode();
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Block for the next raw (trimmed, possibly stamped) response line.
    fn recv_line(&mut self) -> Result<String, ClientError> {
        let mut chunk = [0u8; 4096];
        loop {
            while let Some(frame) = self.decoder.next_frame() {
                let text = String::from_utf8(frame)
                    .map_err(|_| ClientError::Proto(ProtoError::new("non-UTF-8 frame")))?;
                let trimmed = text.trim_end_matches(['\n', '\r']);
                if trimmed.is_empty() {
                    continue;
                }
                return Ok(trimmed.to_string());
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.decoder.feed(&chunk[..n]);
        }
    }

    /// Block for the next response frame. `ERR` frames are returned as
    /// `Ok(Response::Err { .. })` here — use the typed helpers to turn them
    /// into [`ClientError::Server`].
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let line = self.recv_line()?;
        Ok(Response::parse(&line)?)
    }

    /// Send one frame and block for its reply, mapping `ERR` to
    /// [`ClientError::Server`]. In resilient mode the request is stamped
    /// and transparently retried across reconnects, exactly-once.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        if self.resilient.is_some() {
            return self.call_resilient(req);
        }
        self.send(req)?;
        match self.recv()? {
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    fn call_resilient(&mut self, req: &Request) -> Result<Response, ClientError> {
        let (seq, line) = {
            let st = self.resilient.as_ref().expect("resilient mode");
            (st.next_seq, stamp(st.next_seq, &req.encode()))
        };
        let resp = self.roundtrip_stamped(seq, &line)?;
        let st = self.resilient.as_mut().expect("resilient mode");
        st.last_acked = seq;
        st.next_seq = seq + 1;
        match resp {
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Drive one stamped request to its response, reconnecting (and
    /// consuming the server's replay window) as often as the policy
    /// allows. At most one request is ever outstanding, so a response
    /// stamped `seq` is unambiguous.
    fn roundtrip_stamped(&mut self, seq: u64, line: &str) -> Result<Response, ClientError> {
        let mut attempt: u32 = 0;
        let mut need_send = true;
        loop {
            let tried: Result<Response, ClientError> = (|| {
                if need_send {
                    self.stream.write_all(line.as_bytes())?;
                    self.stream.write_all(b"\n")?;
                }
                loop {
                    let text = self.recv_line()?;
                    let (s, rest) = strip_stamp(&text);
                    if s == Some(seq) {
                        return Ok(Response::parse(rest)?);
                    }
                    // A stale replay of an earlier seq (already consumed)
                    // or leftover noise: skip and keep reading.
                }
            })();
            match tried {
                Ok(resp) => return Ok(resp),
                Err(ClientError::Io(_)) => match self.reattach(seq, &mut attempt)? {
                    Some(resp) => return Ok(resp),
                    None => need_send = true,
                },
                Err(e) => return Err(e),
            }
        }
    }

    /// Reconnect and `ATTACH`. Returns `Ok(Some(resp))` when the replay
    /// window already held the answer for `seq`, `Ok(None)` when the
    /// server provably never received it (safe to re-send).
    fn reattach(&mut self, seq: u64, attempt: &mut u32) -> Result<Option<Response>, ClientError> {
        loop {
            let (addr, attach_line, delay) = {
                let st = self.resilient.as_mut().expect("resilient mode");
                if *attempt >= st.policy.max_retries {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "reconnect retries exhausted",
                    )));
                }
                let delay = backoff_delay(st, *attempt);
                let req = Request::Attach {
                    token: self.token.clone(),
                    last_acked: st.last_acked,
                    db: st.db.clone(),
                    user: st.user.clone(),
                };
                (st.addr.clone(), req.encode(), delay)
            };
            *attempt += 1;
            std::thread::sleep(delay);
            let Ok(stream) = TcpStream::connect(&addr) else {
                continue;
            };
            self.stream = stream;
            self.decoder = FrameDecoder::new();
            if let Some(st) = self.resilient.as_mut() {
                st.reconnects += 1;
            }
            if self
                .stream
                .write_all(format!("{attach_line}\n").as_bytes())
                .is_err()
            {
                continue;
            }
            let Ok(first) = self.recv_line() else {
                continue;
            };
            match Response::parse(&first) {
                Ok(Response::Attach {
                    replayed, inflight, ..
                }) => {
                    let mut answer = None;
                    let mut io_ok = true;
                    for _ in 0..replayed {
                        let Ok(l) = self.recv_line() else {
                            io_ok = false;
                            break;
                        };
                        let (s, rest) = strip_stamp(&l);
                        if s == Some(seq) {
                            answer = Some(Response::parse(rest)?);
                        }
                    }
                    if let Some(resp) = answer {
                        return Ok(Some(resp));
                    }
                    if !io_ok {
                        continue; // died mid-replay: attach again
                    }
                    if inflight == Some(seq) {
                        // Still executing server-side; its response will
                        // land in the window — poll by re-attaching.
                        continue;
                    }
                    return Ok(None);
                }
                Ok(Response::Err { code, message }) if code == CODE_BUSY => {
                    // Honor the server's backoff hint before retrying.
                    if let Some(ms) = busy_retry_hint(&message) {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    continue;
                }
                Ok(Response::Err { code, message }) => {
                    return Err(ClientError::Server { code, message })
                }
                _ => continue,
            }
        }
    }

    /// Bind this session's identity; returns the session id and stores
    /// the resume token for later `ATTACH`es.
    pub fn hello(&mut self, db: &str, user: &str) -> Result<u64, ClientError> {
        match self.call(&Request::Hello {
            db: db.into(),
            user: user.into(),
        })? {
            Response::Hello { session, token } => {
                self.token = token;
                Ok(session)
            }
            other => Err(unexpected(other)),
        }
    }

    /// Execute one batch (SQL or ECA command).
    pub fn exec(&mut self, sql: &str) -> Result<ExecResult, ClientError> {
        match self.call(&Request::Exec { sql: sql.into() })? {
            Response::Exec {
                actions,
                failed,
                rows,
                text,
            } => Ok(ExecResult {
                actions,
                failed,
                rows,
                text,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Counter snapshot as (key, value) pairs in server order.
    pub fn stats(&mut self) -> Result<Vec<(String, String)>, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { fields } => Ok(fields),
            other => Err(unexpected(other)),
        }
    }

    /// One numeric stats field, or an error if absent/non-numeric.
    pub fn stat_u64(&mut self, key: &str) -> Result<u64, ClientError> {
        let fields = self.stats()?;
        fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| {
                ClientError::Proto(ProtoError::new(format!("no numeric stats field '{key}'")))
            })
    }

    /// Ask the service to quiesce; returns (quiescent, detached, outcomes).
    pub fn drain(&mut self) -> Result<(bool, u64, u64), ClientError> {
        match self.call(&Request::Drain)? {
            Response::Drain {
                quiescent,
                detached,
                outcomes,
            } => Ok((quiescent, detached, outcomes)),
            other => Err(unexpected(other)),
        }
    }

    /// Lift the drain latch.
    pub fn resume(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Resume)? {
            Response::Resume => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Close the session politely (waits for `BYE`).
    pub fn quit(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Quit)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

/// Capped exponential backoff with deterministic xorshift jitter in
/// `[d/2, d]` — two clients with different seeds spread their retries.
fn backoff_delay(st: &mut ResilientState, attempt: u32) -> Duration {
    let base = st.policy.base_delay.as_millis().max(1) as u64;
    let max = st.policy.max_delay.as_millis().max(1) as u64;
    let d = base.saturating_mul(1u64 << attempt.min(16)).min(max);
    st.rng ^= st.rng << 13;
    st.rng ^= st.rng >> 7;
    st.rng ^= st.rng << 17;
    let jitter = st.rng % (d / 2 + 1);
    Duration::from_millis(d / 2 + jitter)
}

fn unexpected(resp: Response) -> ClientError {
    ClientError::Proto(ProtoError::new(format!(
        "unexpected response frame: {}",
        resp.encode()
    )))
}

/// Decoded `OK EXEC` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Rule actions the batch triggered.
    pub actions: u64,
    /// Of those, how many failed (after retries).
    pub failed: u64,
    /// Result rows across the batch.
    pub rows: u64,
    /// Rendered output (server messages, agent messages, action output).
    pub text: String,
}
