//! Session bookkeeping: one entry per live TCP connection, plus the
//! aggregate counters the `STATS` frame reports.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Per-session counters, shared between the session's reader/worker
/// threads and the stats reporting path.
#[derive(Debug, Default)]
pub struct SessionCounters {
    /// Frames read off the socket (well-formed or not).
    pub received: AtomicU64,
    /// Frames executed to completion (an `ERR` response still counts as
    /// executed — the frame was processed).
    pub executed: AtomicU64,
    /// Frames answered with an `ERR` response.
    pub errors: AtomicU64,
    /// High-water mark of the bounded submission queue — how close this
    /// session came to blocking its reader (backpressure).
    pub queue_high_water: AtomicUsize,
}

impl SessionCounters {
    /// Record a queue depth observation, keeping the maximum.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Immutable snapshot of one session's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionSnapshot {
    pub id: u64,
    pub received: u64,
    pub executed: u64,
    pub errors: u64,
    pub queue_high_water: usize,
}

pub(crate) struct SessionEntry {
    pub id: u64,
    pub counters: Arc<SessionCounters>,
    /// Kept so shutdown can close the socket out from under a blocked
    /// reader.
    pub stream: TcpStream,
}

/// Aggregate serve-layer counters (the per-server half of `STATS`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Sessions accepted over the server's lifetime.
    pub sessions_opened: u64,
    /// Sessions currently connected.
    pub sessions_active: u64,
    /// Connections turned away at the session limit.
    pub sessions_rejected: u64,
    /// Frames processed across all sessions.
    pub requests: u64,
    /// Frames answered with `ERR` across all sessions.
    pub errors: u64,
}

/// Tracks every live session and the aggregate counters.
pub struct SessionManager {
    max_sessions: usize,
    next_id: AtomicU64,
    opened: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    active: Mutex<HashMap<u64, SessionEntry>>,
}

impl SessionManager {
    pub fn new(max_sessions: usize) -> Self {
        SessionManager {
            max_sessions,
            next_id: AtomicU64::new(0),
            opened: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            active: Mutex::new(HashMap::new()),
        }
    }

    /// Admit a connection, or reject it at the session limit. The returned
    /// counters are shared with the entry kept here for stats/shutdown.
    pub(crate) fn try_open(&self, stream: &TcpStream) -> Option<(u64, Arc<SessionCounters>)> {
        let mut active = self.active.lock();
        if active.len() >= self.max_sessions {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.opened.fetch_add(1, Ordering::Relaxed);
        let counters = Arc::new(SessionCounters::default());
        let entry = SessionEntry {
            id,
            counters: Arc::clone(&counters),
            stream: stream.try_clone().ok()?,
        };
        active.insert(id, entry);
        Some((id, counters))
    }

    /// Session finished: fold its counters into the aggregate and forget
    /// it.
    pub(crate) fn close(&self, id: u64) {
        let entry = self.active.lock().remove(&id);
        if let Some(entry) = entry {
            self.requests.fetch_add(
                entry.counters.executed.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
            self.errors.fetch_add(
                entry.counters.errors.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
    }

    /// Half-close every live session's read side. Blocked readers see EOF
    /// and exit; workers still answer the frames already queued, because
    /// the write side stays open until the worker finishes.
    pub(crate) fn shutdown_sockets(&self) {
        for entry in self.active.lock().values() {
            let _ = entry.stream.shutdown(std::net::Shutdown::Read);
        }
    }

    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Aggregate counters. Live sessions' in-progress counts are folded in
    /// on top of the totals from closed sessions.
    pub fn stats(&self) -> ServeStats {
        let active = self.active.lock();
        let mut requests = self.requests.load(Ordering::Relaxed);
        let mut errors = self.errors.load(Ordering::Relaxed);
        for entry in active.values() {
            requests += entry.counters.executed.load(Ordering::Relaxed);
            errors += entry.counters.errors.load(Ordering::Relaxed);
        }
        ServeStats {
            sessions_opened: self.opened.load(Ordering::Relaxed),
            sessions_active: active.len() as u64,
            sessions_rejected: self.rejected.load(Ordering::Relaxed),
            requests,
            errors,
        }
    }

    /// Per-session snapshots, id-ordered (for diagnostics).
    pub fn sessions(&self) -> Vec<SessionSnapshot> {
        let active = self.active.lock();
        let mut v: Vec<SessionSnapshot> = active
            .values()
            .map(|e| SessionSnapshot {
                id: e.id,
                received: e.counters.received.load(Ordering::Relaxed),
                executed: e.counters.executed.load(Ordering::Relaxed),
                errors: e.counters.errors.load(Ordering::Relaxed),
                queue_high_water: e.counters.queue_high_water.load(Ordering::Relaxed),
            })
            .collect();
        v.sort_by_key(|s| s.id);
        v
    }
}
