//! Session bookkeeping: one entry per live TCP connection, the per-shard
//! reactor counters, and the aggregate counters the `STATS` frame reports.
//!
//! Sessions no longer own threads — a reactor shard owns the socket and
//! the manager only tracks admission (the `max_sessions` limit), the
//! per-session counters, and the aggregates folded from closed sessions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Per-session counters, shared between the owning reactor shard, the
/// execution workers and the stats reporting path.
#[derive(Debug, Default)]
pub struct SessionCounters {
    /// Frames read off the socket (well-formed or not).
    pub received: AtomicU64,
    /// Frames executed to completion (an `ERR` response still counts as
    /// executed — the frame was processed).
    pub executed: AtomicU64,
    /// Frames answered with an `ERR` response.
    pub errors: AtomicU64,
    /// High-water mark of the bounded submission queue — how close this
    /// session came to having its read interest parked (backpressure).
    pub queue_high_water: AtomicUsize,
}

impl SessionCounters {
    /// Record a queue depth observation, keeping the maximum.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Immutable snapshot of one session's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionSnapshot {
    pub id: u64,
    pub received: u64,
    pub executed: u64,
    pub errors: u64,
    pub queue_high_water: usize,
}

pub(crate) struct SessionEntry {
    pub id: u64,
    pub counters: Arc<SessionCounters>,
}

/// Counters one reactor shard maintains about itself. Aggregated across
/// shards into [`ServeStats`] and surfaced per shard through
/// [`crate::ServeHandle::reactor_stats`].
#[derive(Debug, Default)]
pub struct ReactorShardStats {
    /// Live sessions owned by this shard (gauge).
    pub sessions: AtomicU64,
    /// Of those, sessions with nothing queued, nothing executing and
    /// nothing waiting to be written (gauge).
    pub sessions_idle: AtomicU64,
    /// Times the shard's waker fired (completion notifications, new-session
    /// handoffs, shutdown).
    pub wakeups: AtomicU64,
    /// Socket reads that left an incomplete frame in the decode buffer —
    /// the signature of incremental decoding at work.
    pub partial_reads: AtomicU64,
    /// Socket writes that hit `WOULDBLOCK` and registered write interest —
    /// slow readers exerting real TCP backpressure.
    pub write_blocked: AtomicU64,
    /// Accept-queue overflow events: `accept(2)` failures other than
    /// "nothing pending" (fd exhaustion, aborted connections). The shard
    /// throttles briefly and retries; the counter makes the pressure
    /// visible.
    pub accept_overflows: AtomicU64,
}

/// Immutable snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorShardSnapshot {
    pub shard: usize,
    pub sessions: u64,
    pub sessions_idle: u64,
    pub wakeups: u64,
    pub partial_reads: u64,
    pub write_blocked: u64,
    pub accept_overflows: u64,
}

/// Aggregate serve-layer counters (the per-server half of `STATS`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Sessions accepted over the server's lifetime.
    pub sessions_opened: u64,
    /// Sessions currently connected.
    pub sessions_active: u64,
    /// Connections turned away at the session limit.
    pub sessions_rejected: u64,
    /// Frames processed across all sessions.
    pub requests: u64,
    /// Frames answered with `ERR` across all sessions.
    pub errors: u64,
    /// Reactor shards serving connections (fixed at start).
    pub reactor_shards: u64,
    /// Sessions currently idle (empty queue, nothing in flight or pending
    /// write) across all shards.
    pub sessions_idle: u64,
    /// Shard wakeups across all shards.
    pub wakeups: u64,
    /// Reads that left a partial frame buffered, across all shards.
    pub partial_reads: u64,
    /// Writes parked on `WOULDBLOCK`, across all shards.
    pub write_blocked: u64,
    /// Accept-queue overflow events, across all shards.
    pub accept_overflows: u64,
}

/// Tracks every live session and the aggregate counters.
pub struct SessionManager {
    max_sessions: usize,
    next_id: AtomicU64,
    opened: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    active: Mutex<HashMap<u64, SessionEntry>>,
    /// Per-shard reactor counters, installed once at server start.
    reactors: Mutex<Vec<Arc<ReactorShardStats>>>,
}

impl SessionManager {
    pub fn new(max_sessions: usize) -> Self {
        SessionManager {
            max_sessions,
            next_id: AtomicU64::new(0),
            opened: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            active: Mutex::new(HashMap::new()),
            reactors: Mutex::new(Vec::new()),
        }
    }

    /// Install the reactor shard counters (server start, before accepts).
    pub(crate) fn set_reactors(&self, shards: Vec<Arc<ReactorShardStats>>) {
        *self.reactors.lock() = shards;
    }

    /// Admit a connection, or reject it at the session limit. The returned
    /// counters are shared with the entry kept here for stats.
    pub(crate) fn try_open(&self) -> Option<(u64, Arc<SessionCounters>)> {
        let mut active = self.active.lock();
        if active.len() >= self.max_sessions {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.opened.fetch_add(1, Ordering::Relaxed);
        let counters = Arc::new(SessionCounters::default());
        let entry = SessionEntry {
            id,
            counters: Arc::clone(&counters),
        };
        active.insert(id, entry);
        Some((id, counters))
    }

    /// Session finished: fold its counters into the aggregate and forget
    /// it.
    pub(crate) fn close(&self, id: u64) {
        let entry = self.active.lock().remove(&id);
        if let Some(entry) = entry {
            self.requests.fetch_add(
                entry.counters.executed.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
            self.errors.fetch_add(
                entry.counters.errors.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
    }

    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Per-shard reactor counter snapshots, shard-ordered.
    pub fn reactor_stats(&self) -> Vec<ReactorShardSnapshot> {
        self.reactors
            .lock()
            .iter()
            .enumerate()
            .map(|(shard, r)| ReactorShardSnapshot {
                shard,
                sessions: r.sessions.load(Ordering::Relaxed),
                sessions_idle: r.sessions_idle.load(Ordering::Relaxed),
                wakeups: r.wakeups.load(Ordering::Relaxed),
                partial_reads: r.partial_reads.load(Ordering::Relaxed),
                write_blocked: r.write_blocked.load(Ordering::Relaxed),
                accept_overflows: r.accept_overflows.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Aggregate counters. Live sessions' in-progress counts are folded in
    /// on top of the totals from closed sessions.
    pub fn stats(&self) -> ServeStats {
        let active = self.active.lock();
        let mut requests = self.requests.load(Ordering::Relaxed);
        let mut errors = self.errors.load(Ordering::Relaxed);
        for entry in active.values() {
            requests += entry.counters.executed.load(Ordering::Relaxed);
            errors += entry.counters.errors.load(Ordering::Relaxed);
        }
        let mut stats = ServeStats {
            sessions_opened: self.opened.load(Ordering::Relaxed),
            sessions_active: active.len() as u64,
            sessions_rejected: self.rejected.load(Ordering::Relaxed),
            requests,
            errors,
            ..ServeStats::default()
        };
        drop(active);
        for shard in self.reactors.lock().iter() {
            stats.reactor_shards += 1;
            stats.sessions_idle += shard.sessions_idle.load(Ordering::Relaxed);
            stats.wakeups += shard.wakeups.load(Ordering::Relaxed);
            stats.partial_reads += shard.partial_reads.load(Ordering::Relaxed);
            stats.write_blocked += shard.write_blocked.load(Ordering::Relaxed);
            stats.accept_overflows += shard.accept_overflows.load(Ordering::Relaxed);
        }
        stats
    }

    /// Per-session snapshots, id-ordered (for diagnostics).
    pub fn sessions(&self) -> Vec<SessionSnapshot> {
        let active = self.active.lock();
        let mut v: Vec<SessionSnapshot> = active
            .values()
            .map(|e| SessionSnapshot {
                id: e.id,
                received: e.counters.received.load(Ordering::Relaxed),
                executed: e.counters.executed.load(Ordering::Relaxed),
                errors: e.counters.errors.load(Ordering::Relaxed),
                queue_high_water: e.counters.queue_high_water.load(Ordering::Relaxed),
            })
            .collect();
        v.sort_by_key(|s| s.id);
        v
    }
}
