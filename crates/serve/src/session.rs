//! Session bookkeeping: one entry per live TCP connection, the per-shard
//! reactor counters, and the aggregate counters the `STATS` frame reports.
//!
//! Sessions no longer own threads — a reactor shard owns the socket and
//! the manager only tracks admission (the `max_sessions` limit), the
//! per-session counters, and the aggregates folded from closed sessions.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;
use relsql::SessionCtx;

/// Per-session counters, shared between the owning reactor shard, the
/// execution workers and the stats reporting path.
#[derive(Debug, Default)]
pub struct SessionCounters {
    /// Frames read off the socket (well-formed or not).
    pub received: AtomicU64,
    /// Frames executed to completion (an `ERR` response still counts as
    /// executed — the frame was processed).
    pub executed: AtomicU64,
    /// Frames answered with an `ERR` response.
    pub errors: AtomicU64,
    /// High-water mark of the bounded submission queue — how close this
    /// session came to having its read interest parked (backpressure).
    pub queue_high_water: AtomicUsize,
}

impl SessionCounters {
    /// Record a queue depth observation, keeping the maximum.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Immutable snapshot of one session's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionSnapshot {
    pub id: u64,
    pub received: u64,
    pub executed: u64,
    pub errors: u64,
    pub queue_high_water: usize,
}

/// The survivable half of a session (DESIGN.md §16): everything a fresh
/// connection needs to pick up where a dead one left off. Shared between
/// the owning reactor shard and the worker executing the session's
/// in-flight job; the worker records the response here *before* posting
/// its completion, so a connection dying at any moment never loses it.
#[derive(Debug)]
pub(crate) struct ResumeState {
    /// Lowest request seq with no recorded response yet.
    pub next_seq: u64,
    /// Request seq currently executing on the worker pool.
    pub busy_seq: Option<u64>,
    /// `(seq, stamped encoded response line)` ascending — the bounded
    /// replay window `ATTACH` serves lost responses from.
    pub window: VecDeque<(u64, String)>,
    /// Attach generation: bumped whenever a connection adopts the
    /// session. A conn holding a stale generation has been stolen by a
    /// newer `ATTACH` and must stand down.
    pub generation: u64,
    /// Session identity to restore on re-attach.
    pub ctx: SessionCtx,
}

impl ResumeState {
    pub fn new(ctx: SessionCtx) -> ResumeState {
        ResumeState {
            next_seq: 1,
            busy_seq: None,
            window: VecDeque::new(),
            generation: 0,
            ctx,
        }
    }

    /// Record a response line for `seq`, bounding the window to `cap`.
    pub fn record(&mut self, seq: u64, line: String, cap: usize) {
        self.window.push_back((seq, line));
        while self.window.len() > cap {
            self.window.pop_front();
        }
        if seq >= self.next_seq {
            self.next_seq = seq + 1;
        }
    }

    /// The stored response line for `seq`, if still windowed.
    pub fn lookup(&self, seq: u64) -> Option<&String> {
        self.window
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, line)| line)
    }

    /// Drop window entries the client has acknowledged.
    pub fn ack(&mut self, last_acked: u64) {
        while self.window.front().is_some_and(|(s, _)| *s <= last_acked) {
            self.window.pop_front();
        }
    }
}

pub(crate) struct SessionEntry {
    pub id: u64,
    pub counters: Arc<SessionCounters>,
    /// Resume token handed out by `HELLO`; empty only for the stranded
    /// provisional entries closed during `ATTACH` adoption.
    pub token: String,
    pub resume: Arc<Mutex<ResumeState>>,
}

/// A session whose connection died, parked until its TTL or an `ATTACH`.
struct DetachedEntry {
    entry: SessionEntry,
    expires_at: Instant,
}

/// What [`SessionManager::try_open`] hands a freshly admitted connection.
pub(crate) struct Admitted {
    pub id: u64,
    pub token: String,
    pub counters: Arc<SessionCounters>,
    pub resume: Arc<Mutex<ResumeState>>,
}

/// What [`SessionManager::attach`] decided.
pub(crate) enum AttachOutcome {
    /// The token was adopted (or, for an unknown token, re-created so the
    /// durable journal can dedup). `replay` holds the stored stamped
    /// response lines above the client's `last_acked`, in seq order.
    Attached {
        id: u64,
        counters: Arc<SessionCounters>,
        resume: Arc<Mutex<ResumeState>>,
        generation: u64,
        ctx: SessionCtx,
        replay: Vec<String>,
        next: u64,
        inflight: Option<u64>,
    },
    /// Unknown token and the session limit is full.
    Busy,
    /// The client acknowledged responses this session never produced.
    SeqAhead,
}

/// Counters one reactor shard maintains about itself. Aggregated across
/// shards into [`ServeStats`] and surfaced per shard through
/// [`crate::ServeHandle::reactor_stats`].
#[derive(Debug, Default)]
pub struct ReactorShardStats {
    /// Live sessions owned by this shard (gauge).
    pub sessions: AtomicU64,
    /// Of those, sessions with nothing queued, nothing executing and
    /// nothing waiting to be written (gauge).
    pub sessions_idle: AtomicU64,
    /// Times the shard's waker fired (completion notifications, new-session
    /// handoffs, shutdown).
    pub wakeups: AtomicU64,
    /// Socket reads that left an incomplete frame in the decode buffer —
    /// the signature of incremental decoding at work.
    pub partial_reads: AtomicU64,
    /// Socket writes that hit `WOULDBLOCK` and registered write interest —
    /// slow readers exerting real TCP backpressure.
    pub write_blocked: AtomicU64,
    /// Accept-queue overflow events: `accept(2)` failures other than
    /// "nothing pending" (fd exhaustion, aborted connections). The shard
    /// throttles briefly and retries; the counter makes the pressure
    /// visible.
    pub accept_overflows: AtomicU64,
}

/// Immutable snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorShardSnapshot {
    pub shard: usize,
    pub sessions: u64,
    pub sessions_idle: u64,
    pub wakeups: u64,
    pub partial_reads: u64,
    pub write_blocked: u64,
    pub accept_overflows: u64,
}

/// Aggregate serve-layer counters (the per-server half of `STATS`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Sessions accepted over the server's lifetime.
    pub sessions_opened: u64,
    /// Sessions currently connected.
    pub sessions_active: u64,
    /// Connections turned away at the session limit.
    pub sessions_rejected: u64,
    /// Frames processed across all sessions.
    pub requests: u64,
    /// Frames answered with `ERR` across all sessions.
    pub errors: u64,
    /// Reactor shards serving connections (fixed at start).
    pub reactor_shards: u64,
    /// Sessions currently idle (empty queue, nothing in flight or pending
    /// write) across all shards.
    pub sessions_idle: u64,
    /// Shard wakeups across all shards.
    pub wakeups: u64,
    /// Reads that left a partial frame buffered, across all shards.
    pub partial_reads: u64,
    /// Writes parked on `WOULDBLOCK`, across all shards.
    pub write_blocked: u64,
    /// Accept-queue overflow events, across all shards.
    pub accept_overflows: u64,
    /// Sessions adopted by an `ATTACH` after their connection died.
    pub sessions_resumed: u64,
    /// Detached sessions that outlived their TTL and were dropped.
    pub sessions_expired: u64,
    /// Idle sessions closed by the reaper (`idle_timeout`).
    pub sessions_reaped: u64,
    /// Sessions currently parked awaiting an `ATTACH` (gauge).
    pub sessions_detached: u64,
    /// Responses served from a replay window instead of re-execution.
    pub replays_served: u64,
    /// Requests answered `ERR TIMEOUT` (queue-wait deadline) plus
    /// partial-frame (slow-loris) expiries.
    pub requests_timed_out: u64,
}

/// Tracks every live session and the aggregate counters.
pub struct SessionManager {
    max_sessions: usize,
    next_id: AtomicU64,
    opened: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    resumed: AtomicU64,
    expired: AtomicU64,
    reaped: AtomicU64,
    replays: AtomicU64,
    timeouts: AtomicU64,
    /// Mirror of `detached.len()`, readable without the map lock.
    detached_count: AtomicU64,
    active: Mutex<HashMap<u64, SessionEntry>>,
    /// Resume token → active session id.
    tokens: Mutex<HashMap<String, u64>>,
    /// Resume token → parked session awaiting `ATTACH` (or expiry).
    detached: Mutex<HashMap<String, DetachedEntry>>,
    /// Per-shard reactor counters, installed once at server start.
    reactors: Mutex<Vec<Arc<ReactorShardStats>>>,
}

impl SessionManager {
    pub fn new(max_sessions: usize) -> Self {
        SessionManager {
            max_sessions,
            next_id: AtomicU64::new(0),
            opened: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            replays: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            detached_count: AtomicU64::new(0),
            active: Mutex::new(HashMap::new()),
            tokens: Mutex::new(HashMap::new()),
            detached: Mutex::new(HashMap::new()),
            reactors: Mutex::new(Vec::new()),
        }
    }

    /// Mint a resume token: unique within the process (a counter) and
    /// unique across restarts with high probability (clock + pid mixed
    /// through an xorshift64* finalizer) — a restarted server must never
    /// alias a pre-restart token, or stale `SysWireJournal` rows could
    /// masquerade as replays for a brand-new session.
    fn issue_token(&self, id: u64) -> String {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_nanos() as u64;
        let mut x =
            nanos ^ ((std::process::id() as u64) << 32) ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        format!("s{id:x}-{x:016x}")
    }

    /// Install the reactor shard counters (server start, before accepts).
    pub(crate) fn set_reactors(&self, shards: Vec<Arc<ReactorShardStats>>) {
        *self.reactors.lock() = shards;
    }

    /// Admit a connection, or reject it at the session limit. The returned
    /// counters/resume state are shared with the entry kept here.
    pub(crate) fn try_open(&self, ctx: SessionCtx) -> Option<Admitted> {
        let mut active = self.active.lock();
        if active.len() >= self.max_sessions {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.opened.fetch_add(1, Ordering::Relaxed);
        let token = self.issue_token(id);
        let counters = Arc::new(SessionCounters::default());
        let resume = Arc::new(Mutex::new(ResumeState::new(ctx)));
        active.insert(
            id,
            SessionEntry {
                id,
                counters: Arc::clone(&counters),
                token: token.clone(),
                resume: Arc::clone(&resume),
            },
        );
        drop(active);
        self.tokens.lock().insert(token.clone(), id);
        Some(Admitted {
            id,
            token,
            counters,
            resume,
        })
    }

    fn fold(&self, entry: &SessionEntry) {
        self.requests.fetch_add(
            entry.counters.executed.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.errors.fetch_add(
            entry.counters.errors.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Session finished for good: fold its counters into the aggregate
    /// and forget it (token included — no `ATTACH` can revive it).
    pub(crate) fn close(&self, id: u64) {
        let entry = self.active.lock().remove(&id);
        if let Some(entry) = entry {
            self.tokens.lock().remove(&entry.token);
            self.fold(&entry);
        }
    }

    /// Connection died but the session may be resurrected: park the entry
    /// under its token until `ttl` runs out or an `ATTACH` adopts it.
    pub(crate) fn detach(&self, id: u64, ttl: Duration) {
        let entry = self.active.lock().remove(&id);
        if let Some(entry) = entry {
            self.tokens.lock().remove(&entry.token);
            let token = entry.token.clone();
            let mut detached = self.detached.lock();
            detached.insert(
                token,
                DetachedEntry {
                    entry,
                    expires_at: Instant::now() + ttl,
                },
            );
            self.detached_count
                .store(detached.len() as u64, Ordering::Relaxed);
        }
    }

    /// Drop detached sessions past their TTL. Returns the expired tokens
    /// so the caller can prune their `SysWireJournal` rows.
    pub(crate) fn sweep_expired(&self) -> Vec<String> {
        let now = Instant::now();
        let mut detached = self.detached.lock();
        let expired: Vec<String> = detached
            .iter()
            .filter(|(_, e)| now >= e.expires_at)
            .map(|(t, _)| t.clone())
            .collect();
        for token in &expired {
            if let Some(e) = detached.remove(token) {
                self.fold(&e.entry);
                self.expired.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.detached_count
            .store(detached.len() as u64, Ordering::Relaxed);
        expired
    }

    /// Resolve an `ATTACH`: adopt the token's parked (or still-active)
    /// session, or — unknown token, e.g. after a process restart — mint a
    /// fresh session whose seq space starts where the client left off so
    /// the durable journal can dedup re-submissions.
    pub(crate) fn attach(
        &self,
        token: &str,
        last_acked: u64,
        db: &str,
        user: &str,
        default_ctx: &SessionCtx,
    ) -> AttachOutcome {
        // Adopt from the detached pool, or steal from a live connection
        // (the client gave up on it; latest ATTACH wins).
        let entry = {
            let mut detached = self.detached.lock();
            let found = detached.remove(token);
            self.detached_count
                .store(detached.len() as u64, Ordering::Relaxed);
            drop(detached);
            match found {
                Some(e) => Some(e.entry),
                None => {
                    let id = self.tokens.lock().get(token).copied();
                    id.and_then(|id| self.active.lock().remove(&id))
                }
            }
        };
        let (entry, resumed) = match entry {
            Some(e) => (e, true),
            None => {
                // Unknown token: mint a session that continues the
                // client's seq space. Dedup of re-submitted EXECs then
                // rests on the durable journal alone.
                let Some(admitted) = self.try_open(default_ctx.clone()) else {
                    return AttachOutcome::Busy;
                };
                // Re-key the minted entry under the client's token (the
                // journal rows to dedup against carry *that* token) and
                // continue the client's seq space.
                let mut entry = self
                    .active
                    .lock()
                    .remove(&admitted.id)
                    .expect("just admitted");
                self.tokens.lock().remove(&entry.token);
                entry.token = token.to_string();
                entry.resume.lock().next_seq = last_acked + 1;
                (entry, false)
            }
        };
        let (generation, ctx, replay, next, inflight) = {
            let mut st = entry.resume.lock();
            if last_acked + 1 > st.next_seq && st.busy_seq.is_none() && resumed {
                // The client claims acks for responses never produced.
                // Put the entry back where it came from and refuse.
                drop(st);
                let token = entry.token.clone();
                let id = entry.id;
                self.active.lock().insert(id, entry);
                self.tokens.lock().insert(token, id);
                return AttachOutcome::SeqAhead;
            }
            st.generation += 1;
            st.ack(last_acked);
            if !db.is_empty() {
                st.ctx = SessionCtx::new(db, user);
            }
            let replay: Vec<String> = st.window.iter().map(|(_, line)| line.clone()).collect();
            (
                st.generation,
                st.ctx.clone(),
                replay,
                st.next_seq,
                st.busy_seq,
            )
        };
        let id = entry.id;
        let counters = Arc::clone(&entry.counters);
        let resume = Arc::clone(&entry.resume);
        self.active.lock().insert(id, entry);
        self.tokens.lock().insert(token.to_string(), id);
        if resumed {
            self.resumed.fetch_add(1, Ordering::Relaxed);
        }
        AttachOutcome::Attached {
            id,
            counters,
            resume,
            generation,
            ctx,
            replay,
            next,
            inflight,
        }
    }

    /// Idle-reaper bookkeeping (the shard detached the session already).
    pub(crate) fn note_reaped(&self) {
        self.reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// A response was served from a replay window / the durable journal.
    pub(crate) fn note_replay(&self) {
        self.replays.fetch_add(1, Ordering::Relaxed);
    }

    /// A request expired before execution (or a partial frame timed out).
    pub(crate) fn note_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether any detached sessions are parked (drives the reactor tick).
    pub(crate) fn has_detached(&self) -> bool {
        self.detached_count.load(Ordering::Relaxed) > 0
    }

    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Per-shard reactor counter snapshots, shard-ordered.
    pub fn reactor_stats(&self) -> Vec<ReactorShardSnapshot> {
        self.reactors
            .lock()
            .iter()
            .enumerate()
            .map(|(shard, r)| ReactorShardSnapshot {
                shard,
                sessions: r.sessions.load(Ordering::Relaxed),
                sessions_idle: r.sessions_idle.load(Ordering::Relaxed),
                wakeups: r.wakeups.load(Ordering::Relaxed),
                partial_reads: r.partial_reads.load(Ordering::Relaxed),
                write_blocked: r.write_blocked.load(Ordering::Relaxed),
                accept_overflows: r.accept_overflows.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Aggregate counters. Live sessions' in-progress counts are folded in
    /// on top of the totals from closed sessions.
    pub fn stats(&self) -> ServeStats {
        let active = self.active.lock();
        let mut requests = self.requests.load(Ordering::Relaxed);
        let mut errors = self.errors.load(Ordering::Relaxed);
        for entry in active.values() {
            requests += entry.counters.executed.load(Ordering::Relaxed);
            errors += entry.counters.errors.load(Ordering::Relaxed);
        }
        let sessions_active = active.len() as u64;
        drop(active);
        // Parked sessions' in-progress counts must not vanish from the
        // aggregate while they await an ATTACH.
        for parked in self.detached.lock().values() {
            requests += parked.entry.counters.executed.load(Ordering::Relaxed);
            errors += parked.entry.counters.errors.load(Ordering::Relaxed);
        }
        let mut stats = ServeStats {
            sessions_opened: self.opened.load(Ordering::Relaxed),
            sessions_active,
            sessions_rejected: self.rejected.load(Ordering::Relaxed),
            requests,
            errors,
            sessions_resumed: self.resumed.load(Ordering::Relaxed),
            sessions_expired: self.expired.load(Ordering::Relaxed),
            sessions_reaped: self.reaped.load(Ordering::Relaxed),
            sessions_detached: self.detached_count.load(Ordering::Relaxed),
            replays_served: self.replays.load(Ordering::Relaxed),
            requests_timed_out: self.timeouts.load(Ordering::Relaxed),
            ..ServeStats::default()
        };
        for shard in self.reactors.lock().iter() {
            stats.reactor_shards += 1;
            stats.sessions_idle += shard.sessions_idle.load(Ordering::Relaxed);
            stats.wakeups += shard.wakeups.load(Ordering::Relaxed);
            stats.partial_reads += shard.partial_reads.load(Ordering::Relaxed);
            stats.write_blocked += shard.write_blocked.load(Ordering::Relaxed);
            stats.accept_overflows += shard.accept_overflows.load(Ordering::Relaxed);
        }
        stats
    }

    /// Per-session snapshots, id-ordered (for diagnostics).
    pub fn sessions(&self) -> Vec<SessionSnapshot> {
        let active = self.active.lock();
        let mut v: Vec<SessionSnapshot> = active
            .values()
            .map(|e| SessionSnapshot {
                id: e.id,
                received: e.counters.received.load(Ordering::Relaxed),
                executed: e.counters.executed.load(Ordering::Relaxed),
                errors: e.counters.errors.load(Ordering::Relaxed),
                queue_high_water: e.counters.queue_high_water.load(Ordering::Relaxed),
            })
            .collect();
        v.sort_by_key(|s| s.id);
        v
    }
}
