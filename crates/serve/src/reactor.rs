//! The sharded reactor: N event-loop threads, each owning a slab of
//! nonblocking sessions, plus a small execution worker pool.
//!
//! Shard ownership: a session's socket, decode buffer, bounded frame
//! queue and write buffer live on exactly one shard and are touched by
//! exactly one thread — no per-connection locks. Shard 0 additionally
//! owns the listener and accepts via readiness events (no sleep
//! backoff); new sessions are handed to shards round-robin through a
//! per-shard inbox + waker.
//!
//! Execution: cheap control frames (`HELLO`, `PING`, `QUIT`, `RESUME`,
//! protocol errors) are answered inline on the shard. Frames that can
//! block or run long (`EXEC`, `STATS`, `DRAIN`) are dispatched to the
//! worker pool — at most one in flight per session — and the completion
//! is pushed back to the owning shard's inbox followed by a waker nudge
//! (eventfd on Linux, self-pipe otherwise). The shard never blocks on
//! the service.
//!
//! Backpressure: a session's read interest is dropped while its frame
//! queue sits at `queue_depth` or its write buffer is above the
//! high-water mark; the kernel receive buffer then fills and TCP flow
//! control pushes back on the client — same contract as the old
//! thread-pair model, without the threads. Writes that hit `WOULDBLOCK`
//! register write interest and resume on writability.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use eca_core::service::ActiveService;
use parking_lot::Mutex;
use relsql::SessionCtx;

use crate::poll::{Event, Interest, Poller, Waker};
use crate::proto::{FrameDecoder, ProtoError, Request, Response, CODE_PROTO};
use crate::server::process;
use crate::session::{ReactorShardStats, SessionCounters, SessionManager};

/// Reserved token for the shard's waker fd.
const TOKEN_WAKER: u64 = 0;
/// Reserved token for the listener (shard 0 only).
const TOKEN_LISTENER: u64 = 1;
/// Connection tokens start here; token = TOKEN_BASE + slab slot.
const TOKEN_BASE: u64 = 2;

/// Stop reading a session once this much response data is waiting to be
/// written — a slow reader should not buffer unboundedly server-side.
const WBUF_HIGH: usize = 256 * 1024;
/// Compact the write buffer once the consumed prefix passes this.
const WBUF_COMPACT: usize = 64 * 1024;
/// Shared per-shard read scratch buffer size.
const READ_CHUNK: usize = 16 * 1024;

/// During drain, a session with in-flight work is closed only once it
/// has been quiet this long — pipelined frames still on the wire when
/// shutdown starts get read, executed and answered first.
const DRAIN_QUIET_GRACE: Duration = Duration::from_millis(25);
/// Poll cadence while draining live sessions.
const DRAIN_TICK_MS: i32 = 5;

/// A statement dispatched to the execution worker pool.
pub(crate) struct Job {
    shard: usize,
    token: u64,
    session_id: u64,
    req: Request,
    ctx: SessionCtx,
    counters: Arc<SessionCounters>,
}

/// A finished job on its way back to the owning shard.
pub(crate) struct Completion {
    token: u64,
    session_id: u64,
    resp: Response,
    quit: bool,
}

/// A freshly admitted connection on its way to its owning shard.
pub(crate) struct NewSession {
    pub stream: TcpStream,
    pub id: u64,
    pub counters: Arc<SessionCounters>,
}

/// Cross-thread mailbox for one shard; producers push then wake.
#[derive(Default)]
pub(crate) struct Inbox {
    new_conns: Vec<NewSession>,
    completions: Vec<Completion>,
}

/// The shared face of one shard: how other threads reach it.
pub(crate) struct ShardHandle {
    pub waker: Arc<Waker>,
    pub inbox: Arc<Mutex<Inbox>>,
    pub stats: Arc<ReactorShardStats>,
}

impl ShardHandle {
    pub(crate) fn send_new_session(&self, ns: NewSession) {
        self.inbox.lock().new_conns.push(ns);
        self.waker.wake();
    }

    fn send_completion(&self, c: Completion) {
        self.inbox.lock().completions.push(c);
        self.waker.wake();
    }

    /// Shutdown sweep: release sessions handed to a shard that had
    /// already exited (an accept racing the stop flag). Called after
    /// every shard thread is joined.
    pub(crate) fn close_stranded(&self, manager: &SessionManager) {
        let mut inbox = self.inbox.lock();
        for ns in inbox.new_conns.drain(..) {
            manager.close(ns.id);
        }
        inbox.completions.clear();
    }
}

/// One session as its owning shard sees it.
struct Conn {
    id: u64,
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Parsed frames awaiting execution; bounded by `queue_depth` (read
    /// interest is parked at the limit, so growth past it is capped by
    /// what one read chunk decodes to).
    queue: VecDeque<Result<Request, ProtoError>>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// A job for this session is in flight on the worker pool.
    busy: bool,
    /// Socket failed while a job was in flight: resources are released,
    /// the slot waits for the completion before being reused.
    dead: bool,
    read_closed: bool,
    /// Answer what is buffered, flush, then close.
    closing: bool,
    interest: Interest,
    idle: bool,
    /// Last moment this session read bytes or finished a response —
    /// drives the drain quiet-grace decision.
    last_active: Instant,
    ctx: SessionCtx,
    counters: Arc<SessionCounters>,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// Everything one shard thread owns and runs on.
pub(crate) struct Shard {
    pub index: usize,
    pub poller: Poller,
    pub waker: Arc<Waker>,
    pub listener: Option<TcpListener>,
    pub handles: Arc<Vec<ShardHandle>>,
    pub inbox: Arc<Mutex<Inbox>>,
    pub stats: Arc<ReactorShardStats>,
    pub manager: Arc<SessionManager>,
    pub service: Arc<dyn ActiveService>,
    pub job_tx: Sender<Job>,
    pub stop: Arc<AtomicBool>,
    pub queue_depth: usize,
    pub drain_timeout: Duration,
    pub default_ctx: SessionCtx,
}

/// Per-thread reactor state (the non-shared parts live here).
struct Reactor {
    s: Shard,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Slots freed mid-batch; reusable only after the batch completes so
    /// stale readiness events cannot land on a recycled slot.
    deferred_free: Vec<usize>,
    scratch: Vec<u8>,
    /// Accept failed hard (fd exhaustion); listener is parked and
    /// re-armed after a short poll timeout instead of spinning.
    listener_parked: bool,
    draining: bool,
    /// Hard stop for the drain: sessions still live past this point are
    /// half-closed regardless of activity.
    drain_deadline: Option<Instant>,
    next_shard: usize,
}

fn token_for(slot: usize) -> u64 {
    TOKEN_BASE + slot as u64
}

fn slot_for(token: u64) -> usize {
    (token - TOKEN_BASE) as usize
}

/// Pull bytes until `WOULDBLOCK`/EOF or the queue/write-buffer gates
/// close, decoding frames incrementally as they arrive.
fn read_some(conn: &mut Conn, scratch: &mut [u8], stats: &ReactorShardStats, queue_depth: usize) {
    while !conn.read_closed
        && !conn.closing
        && conn.queue.len() < queue_depth
        && conn.pending_write() < WBUF_HIGH
    {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.read_closed = true;
            }
            Ok(n) => {
                conn.last_active = Instant::now();
                conn.decoder.feed(&scratch[..n]);
                while let Some(line) = conn.decoder.next_frame() {
                    let Ok(text) = String::from_utf8(line) else {
                        // Parity with the old buffered-reader path: a
                        // non-UTF-8 line ends the read side; frames
                        // already queued still execute and answer.
                        conn.read_closed = true;
                        conn.decoder = FrameDecoder::new();
                        break;
                    };
                    let trimmed = text.trim_end_matches(['\n', '\r']);
                    if trimmed.is_empty() {
                        continue;
                    }
                    conn.counters.received.fetch_add(1, Ordering::Relaxed);
                    conn.queue.push_back(Request::parse(trimmed));
                    conn.counters.observe_queue_depth(conn.queue.len());
                }
                if conn.decoder.has_partial() {
                    stats.partial_reads.fetch_add(1, Ordering::Relaxed);
                }
                if n < scratch.len() {
                    break; // short read: the kernel buffer is drained
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.read_closed = true;
            }
        }
    }
}

/// Append an encoded response to the write buffer and bump counters —
/// the single point every answered frame funnels through.
fn finish_response(conn: &mut Conn, resp: Response, quit: bool) {
    conn.last_active = Instant::now();
    conn.counters.executed.fetch_add(1, Ordering::Relaxed);
    if matches!(resp, Response::Err { .. }) {
        conn.counters.errors.fetch_add(1, Ordering::Relaxed);
    }
    conn.wbuf.extend_from_slice(resp.encode().as_bytes());
    conn.wbuf.push(b'\n');
    if quit {
        // BYE answers immediately; anything still queued is dropped,
        // matching the old worker loop which returned on quit.
        conn.queue.clear();
        conn.closing = true;
        let _ = conn.stream.shutdown(Shutdown::Read);
    }
}

/// True for frames that may block or run long — these go to the worker
/// pool so the shard's event loop stays responsive.
fn needs_worker(req: &Request) -> bool {
    matches!(req, Request::Exec { .. } | Request::Stats | Request::Drain)
}

/// Drain the frame queue: answer cheap frames inline, dispatch at most
/// one worker job, stop at the write high-water mark.
#[allow(clippy::too_many_arguments)]
fn pump(
    conn: &mut Conn,
    shard: usize,
    token: u64,
    job_tx: &Sender<Job>,
    service: &Arc<dyn ActiveService>,
    manager: &SessionManager,
    drain_timeout: Duration,
) {
    while !conn.busy && !conn.closing && conn.pending_write() < WBUF_HIGH {
        let Some(frame) = conn.queue.pop_front() else {
            break;
        };
        match frame {
            Err(proto) => finish_response(
                conn,
                Response::Err {
                    code: CODE_PROTO.into(),
                    message: proto.message,
                },
                false,
            ),
            Ok(req) if needs_worker(&req) => {
                conn.busy = true;
                let _ = job_tx.send(Job {
                    shard,
                    token,
                    session_id: conn.id,
                    req,
                    ctx: conn.ctx.clone(),
                    counters: Arc::clone(&conn.counters),
                });
            }
            Ok(req) => {
                let (resp, quit) = process(
                    req,
                    service,
                    &conn.counters,
                    manager,
                    conn.id,
                    &mut conn.ctx,
                    drain_timeout,
                );
                finish_response(conn, resp, quit);
            }
        }
    }
    // EOF with nothing left to do: the session is over once the write
    // buffer flushes.
    if conn.read_closed && conn.queue.is_empty() && !conn.busy {
        conn.closing = true;
    }
}

/// Write as much buffered response data as the socket accepts. Returns
/// `false` on a fatal socket error.
fn flush(conn: &mut Conn, stats: &ReactorShardStats) -> bool {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return false,
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                stats.write_blocked.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
        if conn.wbuf.capacity() > WBUF_COMPACT {
            conn.wbuf.shrink_to(READ_CHUNK);
        }
    } else if conn.wpos > WBUF_COMPACT {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    true
}

fn desired_interest(conn: &Conn, queue_depth: usize) -> Interest {
    let read = !conn.read_closed
        && !conn.closing
        && conn.queue.len() < queue_depth
        && conn.pending_write() < WBUF_HIGH;
    let write = conn.pending_write() > 0;
    Interest::new(read, write)
}

impl Reactor {
    fn new(s: Shard) -> Reactor {
        Reactor {
            s,
            conns: Vec::new(),
            free: Vec::new(),
            deferred_free: Vec::new(),
            scratch: vec![0u8; READ_CHUNK],
            listener_parked: false,
            draining: false,
            drain_deadline: None,
            next_shard: 0,
        }
    }

    fn live(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    fn set_idle(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let idle = !conn.busy
            && conn.queue.is_empty()
            && conn.pending_write() == 0
            && !conn.closing
            && !conn.dead;
        if idle != conn.idle {
            conn.idle = idle;
            if idle {
                self.s.stats.sessions_idle.fetch_add(1, Ordering::Relaxed);
            } else {
                self.s.stats.sessions_idle.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Tear a session down: deregister, release the admission slot, and
    /// free (or park, if a job is still in flight) the slab slot.
    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.dead {
            return; // already torn down, waiting on its completion
        }
        if conn.idle {
            conn.idle = false;
            self.s.stats.sessions_idle.fetch_sub(1, Ordering::Relaxed);
        }
        let fd = conn.stream.as_raw_fd();
        let _ = self.s.poller.remove(fd);
        self.s.manager.close(conn.id);
        self.s.stats.sessions.fetch_sub(1, Ordering::Relaxed);
        if conn.busy {
            // The worker still holds this session's token: keep the slot
            // reserved (and the fd open) until the completion arrives.
            conn.dead = true;
        } else {
            self.conns[slot] = None;
            self.deferred_free.push(slot);
        }
    }

    /// Post-I/O bookkeeping for one session: close it if finished,
    /// otherwise refresh poller interest and the idle gauge.
    fn settle(&mut self, slot: usize, io_ok: bool) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.dead {
            return;
        }
        if !io_ok || (conn.closing && conn.pending_write() == 0) {
            self.close_conn(slot);
            return;
        }
        let want = desired_interest(conn, self.s.queue_depth);
        if want != conn.interest {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            let _ = self.s.poller.modify(fd, token_for(slot), want);
        }
        self.set_idle(slot);
    }

    /// Run the full I/O cycle for one session after a readiness event.
    fn service_conn(&mut self, slot: usize, readable: bool, writable: bool) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return; // freed earlier in this batch
        };
        if conn.dead {
            return;
        }
        let mut ok = true;
        if writable {
            ok = flush(conn, &self.s.stats);
        }
        if ok && readable {
            read_some(conn, &mut self.scratch, &self.s.stats, self.s.queue_depth);
        }
        if ok {
            pump(
                conn,
                self.s.index,
                token_for(slot),
                &self.s.job_tx,
                &self.s.service,
                &self.s.manager,
                self.s.drain_timeout,
            );
            ok = flush(conn, &self.s.stats);
        }
        self.settle(slot, ok);
    }

    /// Adopt a new session into the slab (it may have been accepted on
    /// another shard).
    fn install(&mut self, ns: NewSession) {
        if self.draining || ns.stream.set_nonblocking(true).is_err() {
            self.s.manager.close(ns.id);
            return;
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let fd = ns.stream.as_raw_fd();
        if self
            .s
            .poller
            .add(fd, token_for(slot), Interest::READ)
            .is_err()
        {
            self.free.push(slot);
            self.s.manager.close(ns.id);
            return;
        }
        self.conns[slot] = Some(Conn {
            id: ns.id,
            stream: ns.stream,
            decoder: FrameDecoder::new(),
            queue: VecDeque::new(),
            wbuf: Vec::new(),
            wpos: 0,
            busy: false,
            dead: false,
            read_closed: false,
            closing: false,
            interest: Interest::READ,
            idle: false,
            last_active: Instant::now(),
            ctx: self.s.default_ctx.clone(),
            counters: ns.counters,
        });
        self.s.stats.sessions.fetch_add(1, Ordering::Relaxed);
        self.set_idle(slot);
    }

    fn apply_completion(&mut self, c: Completion) {
        let Some(conn) = self
            .conns
            .get_mut(slot_for(c.token))
            .and_then(|s| s.as_mut())
        else {
            return;
        };
        if conn.id != c.session_id {
            return; // slot was recycled; the original session is gone
        }
        let slot = slot_for(c.token);
        conn.busy = false;
        if conn.dead {
            // Socket died while the job ran; resources were already
            // released — just free the parked slot.
            self.conns[slot] = None;
            self.deferred_free.push(slot);
            return;
        }
        finish_response(conn, c.resp, c.quit);
        pump(
            conn,
            self.s.index,
            c.token,
            &self.s.job_tx,
            &self.s.service,
            &self.s.manager,
            self.s.drain_timeout,
        );
        // The queue may have room again: pull whatever the kernel
        // buffered while read interest was parked.
        read_some(conn, &mut self.scratch, &self.s.stats, self.s.queue_depth);
        pump(
            conn,
            self.s.index,
            c.token,
            &self.s.job_tx,
            &self.s.service,
            &self.s.manager,
            self.s.drain_timeout,
        );
        let ok = flush(conn, &self.s.stats);
        self.settle(slot, ok);
    }

    /// Accept everything pending (shard 0 only). Hard accept failures
    /// park the listener briefly instead of spinning.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.s.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => match self.s.manager.try_open() {
                    None => reject_busy(&stream),
                    Some((id, counters)) => {
                        let ns = NewSession {
                            stream,
                            id,
                            counters,
                        };
                        let target = self.next_shard;
                        self.next_shard = (self.next_shard + 1) % self.s.handles.len();
                        if target == self.s.index {
                            self.install(ns);
                        } else {
                            self.s.handles[target].send_new_session(ns);
                        }
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Accept-queue overflow (fd exhaustion, aborted
                    // connection storms): count it, park the listener and
                    // retry after a short poll timeout.
                    self.s
                        .stats
                        .accept_overflows
                        .fetch_add(1, Ordering::Relaxed);
                    let fd = listener.as_raw_fd();
                    let _ = self.s.poller.remove(fd);
                    self.listener_parked = true;
                    return;
                }
            }
        }
    }

    fn drain_inbox(&mut self) {
        let (completions, new_conns) = {
            let mut inbox = self.s.inbox.lock();
            (
                std::mem::take(&mut inbox.completions),
                std::mem::take(&mut inbox.new_conns),
            )
        };
        for c in completions {
            self.apply_completion(c);
        }
        for ns in new_conns {
            self.install(ns);
        }
    }

    /// Shutdown entry: stop accepting and start sweeping sessions out.
    /// Sessions with in-flight work stay open until they go quiet (or
    /// the deadline hits) so pipelined frames still on the wire are read,
    /// executed and answered — the "answer what was already queued"
    /// shutdown contract, without a thread blocked per session.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.s.drain_timeout);
        if let Some(listener) = self.s.listener.take() {
            let _ = self.s.poller.remove(listener.as_raw_fd());
            self.listener_parked = false;
        }
        self.sweep_drain();
    }

    /// One drain pass: half-close and retire every session that has been
    /// quiet for [`DRAIN_QUIET_GRACE`] (idle sessions qualify at once);
    /// past the deadline, everyone is half-closed regardless and only
    /// the already-queued frames are answered.
    fn sweep_drain(&mut self) {
        let deadline_passed = self.drain_deadline.is_some_and(|d| Instant::now() >= d);
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.dead || conn.closing || conn.read_closed {
                continue;
            }
            let quiet = !conn.busy && conn.queue.is_empty() && conn.pending_write() == 0;
            let grace_over = quiet && conn.last_active.elapsed() >= DRAIN_QUIET_GRACE;
            if !deadline_passed && !grace_over {
                continue;
            }
            // Final read: anything that raced the close decision onto the
            // wire is pulled in now (unbounded — nothing more will ever
            // be read past this point).
            read_some(conn, &mut self.scratch, &self.s.stats, usize::MAX);
            let woke = conn.busy
                || !conn.queue.is_empty()
                || conn.pending_write() > 0
                || conn.last_active.elapsed() < DRAIN_QUIET_GRACE;
            if deadline_passed || !woke {
                let _ = conn.stream.shutdown(Shutdown::Read);
                conn.read_closed = true;
            }
            pump(
                conn,
                self.s.index,
                token_for(slot),
                &self.s.job_tx,
                &self.s.service,
                &self.s.manager,
                self.s.drain_timeout,
            );
            let ok = flush(conn, &self.s.stats);
            self.settle(slot, ok);
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = if self.listener_parked || self.draining {
                DRAIN_TICK_MS
            } else {
                -1
            };
            if self.s.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            let mut accept = false;
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    TOKEN_WAKER => {
                        self.s.waker.drain();
                        self.s.stats.wakeups.fetch_add(1, Ordering::Relaxed);
                    }
                    TOKEN_LISTENER => accept = true,
                    token => self.service_conn(slot_for(token), ev.readable, ev.writable),
                }
            }
            events = batch;
            // Slots freed during the batch become reusable only now, so
            // stale events above could not land on a recycled slot.
            self.free.append(&mut self.deferred_free);
            self.drain_inbox();
            if self.listener_parked {
                if let Some(listener) = self.s.listener.as_ref() {
                    if self
                        .s
                        .poller
                        .add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
                        .is_ok()
                    {
                        self.listener_parked = false;
                        accept = true;
                    }
                }
            }
            if accept {
                self.accept_ready();
            }
            if self.s.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            } else if self.draining {
                self.sweep_drain();
            }
            if self.draining && self.live() == 0 {
                // One last inbox sweep: a handoff or completion racing
                // the exit is closed out rather than stranded.
                self.drain_inbox();
                if self.live() == 0 {
                    break;
                }
            }
        }
    }
}

/// Over the session limit: answer `ERR BUSY` on the still-blocking
/// accepted socket and drop it.
fn reject_busy(stream: &TcpStream) {
    let mut s = stream;
    let resp = Response::Err {
        code: crate::proto::CODE_BUSY.into(),
        message: "session limit reached".into(),
    };
    let _ = s.write_all(format!("{}\n", resp.encode()).as_bytes());
    let _ = s.flush();
}

/// Entry point for one shard thread.
pub(crate) fn run_shard(shard: Shard) {
    Reactor::new(shard).run();
}

/// Entry point for one execution worker thread. Exits when the job
/// channel disconnects (all shards gone).
pub(crate) fn run_worker(
    rx: Receiver<Job>,
    service: Arc<dyn ActiveService>,
    manager: Arc<SessionManager>,
    handles: Arc<Vec<ShardHandle>>,
    drain_timeout: Duration,
) {
    while let Ok(job) = rx.recv() {
        let mut ctx = job.ctx;
        let (resp, quit) = process(
            job.req,
            &service,
            &job.counters,
            &manager,
            job.session_id,
            &mut ctx,
            drain_timeout,
        );
        handles[job.shard].send_completion(Completion {
            token: job.token,
            session_id: job.session_id,
            resp,
            quit,
        });
    }
}
