//! The sharded reactor: N event-loop threads, each owning a slab of
//! nonblocking sessions, plus a small execution worker pool.
//!
//! Shard ownership: a session's socket, decode buffer, bounded frame
//! queue and write buffer live on exactly one shard and are touched by
//! exactly one thread — no per-connection locks. Shard 0 additionally
//! owns the listener and accepts via readiness events (no sleep
//! backoff); new sessions are handed to shards round-robin through a
//! per-shard inbox + waker.
//!
//! Execution: cheap control frames (`HELLO`, `PING`, `QUIT`, `RESUME`,
//! protocol errors) are answered inline on the shard. Frames that can
//! block or run long (`EXEC`, `STATS`, `DRAIN`) are dispatched to the
//! worker pool — at most one in flight per session — and the completion
//! is pushed back to the owning shard's inbox followed by a waker nudge
//! (eventfd on Linux, self-pipe otherwise). The shard never blocks on
//! the service.
//!
//! Backpressure: a session's read interest is dropped while its frame
//! queue sits at `queue_depth` or its write buffer is above the
//! high-water mark; the kernel receive buffer then fills and TCP flow
//! control pushes back on the client — same contract as the old
//! thread-pair model, without the threads. Writes that hit `WOULDBLOCK`
//! register write interest and resume on writability.
//!
//! Resilience (DESIGN.md §16): connections and sessions are decoupled.
//! A connection that dies without `QUIT` *detaches* its session — the
//! [`ResumeState`] (replay window, seq cursor, identity) parks under the
//! session's resume token until an `ATTACH` adopts it or its TTL runs
//! out. Stamped requests (`@<seq> EXEC …`) are triaged against the
//! window so re-submissions replay the recorded response verbatim;
//! stamped `EXEC`s additionally run through the service's durable
//! journal ([`ActiveService::execute_once`]) so exactly-once holds even
//! across a `kill -9` and restart. Per-request deadlines and an idle
//! reaper bound how long a slow or silent peer can hold resources.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use eca_core::service::ActiveService;
use eca_core::ExecOutcome;
use parking_lot::Mutex;
use relsql::SessionCtx;

use crate::poll::{Event, Interest, Poller, Waker};
use crate::proto::{
    busy_message, stamp, strip_stamp, FrameDecoder, ProtoError, Request, Response, CODE_BUSY,
    CODE_PROTO, CODE_SEQ, CODE_TIMEOUT,
};
use crate::server::{process, render_exec};
use crate::session::{
    AttachOutcome, ReactorShardStats, ResumeState, SessionCounters, SessionManager,
};

/// Reserved token for the shard's waker fd.
const TOKEN_WAKER: u64 = 0;
/// Reserved token for the listener (shard 0 only).
const TOKEN_LISTENER: u64 = 1;
/// Connection tokens start here; token = TOKEN_BASE + slab slot.
const TOKEN_BASE: u64 = 2;

/// Stop reading a session once this much response data is waiting to be
/// written — a slow reader should not buffer unboundedly server-side.
const WBUF_HIGH: usize = 256 * 1024;
/// Compact the write buffer once the consumed prefix passes this.
const WBUF_COMPACT: usize = 64 * 1024;
/// Shared per-shard read scratch buffer size.
const READ_CHUNK: usize = 16 * 1024;

/// During drain, a session with in-flight work is closed only once it
/// has been quiet this long — pipelined frames still on the wire when
/// shutdown starts get read, executed and answered first.
const DRAIN_QUIET_GRACE: Duration = Duration::from_millis(25);
/// Poll cadence while draining live sessions.
const DRAIN_TICK_MS: i32 = 5;
/// Poll cadence on shard 0 while detached sessions await expiry and no
/// finer-grained timer is configured.
const DETACHED_TICK_MS: u64 = 250;
/// Every this-many stamped requests, a worker prunes the session's
/// acked journal rows (piggybacked on execution, no dedicated timer).
const JOURNAL_PRUNE_STRIDE: u64 = 64;

/// A statement dispatched to the execution worker pool.
pub(crate) struct Job {
    shard: usize,
    token: u64,
    session_id: u64,
    /// Request stamp — `Some` routes the job through the exactly-once
    /// journal and the replay window.
    seq: Option<u64>,
    /// The session's resume token (idempotency-key prefix).
    wire_token: String,
    resume: Arc<Mutex<ResumeState>>,
    req: Request,
    ctx: SessionCtx,
    counters: Arc<SessionCounters>,
}

/// A finished job on its way back to the owning shard. The response is
/// pre-encoded (and stamped, for stamped requests) on the worker so the
/// exact bytes recorded in the replay window are the bytes written.
pub(crate) struct Completion {
    token: u64,
    session_id: u64,
    line: String,
    is_err: bool,
    quit: bool,
}

/// A freshly admitted connection on its way to its owning shard.
pub(crate) struct NewSession {
    pub stream: TcpStream,
    pub id: u64,
    pub token: String,
    pub counters: Arc<SessionCounters>,
    pub resume: Arc<Mutex<ResumeState>>,
}

/// Cross-thread mailbox for one shard; producers push then wake.
#[derive(Default)]
pub(crate) struct Inbox {
    new_conns: Vec<NewSession>,
    completions: Vec<Completion>,
}

/// The shared face of one shard: how other threads reach it.
pub(crate) struct ShardHandle {
    pub waker: Arc<Waker>,
    pub inbox: Arc<Mutex<Inbox>>,
    pub stats: Arc<ReactorShardStats>,
}

impl ShardHandle {
    pub(crate) fn send_new_session(&self, ns: NewSession) {
        self.inbox.lock().new_conns.push(ns);
        self.waker.wake();
    }

    fn send_completion(&self, c: Completion) {
        self.inbox.lock().completions.push(c);
        self.waker.wake();
    }

    /// Shutdown sweep: release sessions handed to a shard that had
    /// already exited (an accept racing the stop flag). Called after
    /// every shard thread is joined.
    pub(crate) fn close_stranded(&self, manager: &SessionManager) {
        let mut inbox = self.inbox.lock();
        for ns in inbox.new_conns.drain(..) {
            manager.close(ns.id);
        }
        inbox.completions.clear();
    }
}

/// One parsed (or unparseable) frame waiting its turn, with the stamp
/// it arrived under and its arrival time for the request deadline.
struct QueuedFrame {
    seq: Option<u64>,
    req: Result<Request, ProtoError>,
    at: Instant,
}

/// One session as its owning shard sees it.
struct Conn {
    id: u64,
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Parsed frames awaiting execution; bounded by `queue_depth` (read
    /// interest is parked at the limit, so growth past it is capped by
    /// what one read chunk decodes to).
    queue: VecDeque<QueuedFrame>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// A job for this session is in flight on the worker pool.
    busy: bool,
    /// Socket failed while a job was in flight: resources are released,
    /// the slot waits for the completion before being reused.
    dead: bool,
    read_closed: bool,
    /// Answer what is buffered, flush, then close.
    closing: bool,
    /// The client said goodbye (`QUIT`) — close the session for good
    /// instead of parking it for resurrection.
    quit: bool,
    /// A newer `ATTACH` adopted this connection's session; stand down
    /// without touching the session on the way out.
    stolen: bool,
    interest: Interest,
    idle: bool,
    /// Last moment this session read bytes or finished a response —
    /// drives the drain quiet-grace decision and the idle reaper.
    last_active: Instant,
    /// When the decode buffer first held an incomplete frame — a peer
    /// trickling bytes forever (slow loris) trips the request deadline.
    partial_since: Option<Instant>,
    /// Resume token (also the idempotency-key prefix in the journal).
    token: String,
    /// Attach generation this connection adopted the session at; the
    /// session's [`ResumeState`] moving past it means it was stolen.
    generation: u64,
    resume: Arc<Mutex<ResumeState>>,
    ctx: SessionCtx,
    counters: Arc<SessionCounters>,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// Everything one shard thread owns and runs on.
pub(crate) struct Shard {
    pub index: usize,
    pub poller: Poller,
    pub waker: Arc<Waker>,
    pub listener: Option<TcpListener>,
    pub handles: Arc<Vec<ShardHandle>>,
    pub inbox: Arc<Mutex<Inbox>>,
    pub stats: Arc<ReactorShardStats>,
    pub manager: Arc<SessionManager>,
    pub service: Arc<dyn ActiveService>,
    pub job_tx: Sender<Job>,
    pub stop: Arc<AtomicBool>,
    pub queue_depth: usize,
    pub drain_timeout: Duration,
    pub default_ctx: SessionCtx,
    pub idle_timeout: Option<Duration>,
    pub request_timeout: Option<Duration>,
    pub replay_window: usize,
    pub detached_ttl: Duration,
    pub busy_retry_ms: u64,
}

/// Per-thread reactor state (the non-shared parts live here).
struct Reactor {
    s: Shard,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Slots freed mid-batch; reusable only after the batch completes so
    /// stale readiness events cannot land on a recycled slot.
    deferred_free: Vec<usize>,
    scratch: Vec<u8>,
    /// Accept failed hard (fd exhaustion); listener is parked and
    /// re-armed after a short poll timeout instead of spinning.
    listener_parked: bool,
    draining: bool,
    /// Hard stop for the drain: sessions still live past this point are
    /// half-closed regardless of activity.
    drain_deadline: Option<Instant>,
    next_shard: usize,
}

fn token_for(slot: usize) -> u64 {
    TOKEN_BASE + slot as u64
}

fn slot_for(token: u64) -> usize {
    (token - TOKEN_BASE) as usize
}

/// Pull bytes until `WOULDBLOCK`/EOF or the queue/write-buffer gates
/// close, decoding frames incrementally as they arrive. Stamps are
/// stripped here so the queue holds `(seq, request)` pairs.
fn read_some(conn: &mut Conn, scratch: &mut [u8], stats: &ReactorShardStats, queue_depth: usize) {
    while !conn.read_closed
        && !conn.closing
        && conn.queue.len() < queue_depth
        && conn.pending_write() < WBUF_HIGH
    {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.read_closed = true;
            }
            Ok(n) => {
                conn.last_active = Instant::now();
                conn.decoder.feed(&scratch[..n]);
                while let Some(line) = conn.decoder.next_frame() {
                    let Ok(text) = String::from_utf8(line) else {
                        // Parity with the old buffered-reader path: a
                        // non-UTF-8 line ends the read side; frames
                        // already queued still execute and answer.
                        conn.read_closed = true;
                        conn.decoder = FrameDecoder::new();
                        break;
                    };
                    let trimmed = text.trim_end_matches(['\n', '\r']);
                    if trimmed.is_empty() {
                        continue;
                    }
                    conn.counters.received.fetch_add(1, Ordering::Relaxed);
                    let (seq, rest) = strip_stamp(trimmed);
                    conn.queue.push_back(QueuedFrame {
                        seq,
                        req: Request::parse(rest),
                        at: Instant::now(),
                    });
                    conn.counters.observe_queue_depth(conn.queue.len());
                }
                if conn.decoder.has_partial() {
                    stats.partial_reads.fetch_add(1, Ordering::Relaxed);
                }
                if n < scratch.len() {
                    break; // short read: the kernel buffer is drained
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.read_closed = true;
            }
        }
    }
    if conn.decoder.has_partial() {
        if conn.partial_since.is_none() {
            conn.partial_since = Some(Instant::now());
        }
    } else {
        conn.partial_since = None;
    }
}

/// Append a pre-encoded response line to the write buffer and bump
/// counters — the single point every answered frame funnels through.
fn finish_line(conn: &mut Conn, line: &str, is_err: bool, quit: bool) {
    conn.last_active = Instant::now();
    conn.counters.executed.fetch_add(1, Ordering::Relaxed);
    if is_err {
        conn.counters.errors.fetch_add(1, Ordering::Relaxed);
    }
    conn.wbuf.extend_from_slice(line.as_bytes());
    conn.wbuf.push(b'\n');
    if quit {
        // BYE answers immediately; anything still queued is dropped,
        // matching the old worker loop which returned on quit.
        conn.quit = true;
        conn.queue.clear();
        conn.closing = true;
        let _ = conn.stream.shutdown(Shutdown::Read);
    }
}

/// Answer a frame: stamped responses are recorded in the replay window
/// under the exact bytes written, unstamped ones go straight out.
fn answer(conn: &mut Conn, seq: Option<u64>, resp: Response, quit: bool, replay_window: usize) {
    let is_err = matches!(resp, Response::Err { .. });
    match seq {
        Some(s) => {
            let line = stamp(s, &resp.encode());
            conn.resume.lock().record(s, line.clone(), replay_window);
            finish_line(conn, &line, is_err, quit);
        }
        None => finish_line(conn, &resp.encode(), is_err, quit),
    }
}

/// Whether a (possibly stamped) encoded response line is an `ERR`.
fn line_is_err(line: &str) -> bool {
    let (_, rest) = strip_stamp(line);
    rest.starts_with("ERR")
}

/// True for frames that may block or run long — these go to the worker
/// pool so the shard's event loop stays responsive.
fn needs_worker(req: &Request) -> bool {
    matches!(req, Request::Exec { .. } | Request::Stats | Request::Drain)
}

/// What the replay-window triage decided for a stamped request.
enum Triage {
    /// Already answered: write the recorded line verbatim.
    Replay(String),
    /// Currently executing: drop the duplicate; the client discovers the
    /// in-flight seq via `ATTACH` and polls.
    Drop,
    /// Fresh: execute it.
    Run,
}

/// Write as much buffered response data as the socket accepts. Returns
/// `false` on a fatal socket error.
fn flush(conn: &mut Conn, stats: &ReactorShardStats) -> bool {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return false,
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                stats.write_blocked.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
        if conn.wbuf.capacity() > WBUF_COMPACT {
            conn.wbuf.shrink_to(READ_CHUNK);
        }
    } else if conn.wpos > WBUF_COMPACT {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    true
}

fn desired_interest(conn: &Conn, queue_depth: usize) -> Interest {
    let read = !conn.read_closed
        && !conn.closing
        && conn.queue.len() < queue_depth
        && conn.pending_write() < WBUF_HIGH;
    let write = conn.pending_write() > 0;
    Interest::new(read, write)
}

impl Reactor {
    fn new(s: Shard) -> Reactor {
        Reactor {
            s,
            conns: Vec::new(),
            free: Vec::new(),
            deferred_free: Vec::new(),
            scratch: vec![0u8; READ_CHUNK],
            listener_parked: false,
            draining: false,
            drain_deadline: None,
            next_shard: 0,
        }
    }

    fn live(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    fn set_idle(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let idle = !conn.busy
            && conn.queue.is_empty()
            && conn.pending_write() == 0
            && !conn.closing
            && !conn.dead;
        if idle != conn.idle {
            conn.idle = idle;
            if idle {
                self.s.stats.sessions_idle.fetch_add(1, Ordering::Relaxed);
            } else {
                self.s.stats.sessions_idle.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Tear a connection down. What happens to its *session* depends on
    /// how it ended: `QUIT` (or server drain) closes it for good and
    /// drops its journal rows; a stolen connection leaves the session —
    /// now owned by a newer `ATTACH` — untouched; anything else (socket
    /// death, EOF, reaper) parks it for resurrection.
    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.dead {
            return; // already torn down, waiting on its completion
        }
        if conn.idle {
            conn.idle = false;
            self.s.stats.sessions_idle.fetch_sub(1, Ordering::Relaxed);
        }
        let fd = conn.stream.as_raw_fd();
        let _ = self.s.poller.remove(fd);
        if conn.stolen {
            // The session lives on under another connection.
        } else if conn.quit || self.draining {
            if conn.quit {
                let _ = self.s.service.forget_session(&conn.token, u64::MAX);
            }
            self.s.manager.close(conn.id);
        } else {
            self.s.manager.detach(conn.id, self.s.detached_ttl);
            // Shard 0 runs the TTL sweep; make sure it starts ticking.
            self.s.handles[0].waker.wake();
        }
        self.s.stats.sessions.fetch_sub(1, Ordering::Relaxed);
        if conn.busy {
            // The worker still holds this session's token: keep the slot
            // reserved (and the fd open) until the completion arrives.
            conn.dead = true;
        } else {
            self.conns[slot] = None;
            self.deferred_free.push(slot);
        }
    }

    /// Post-I/O bookkeeping for one session: close it if finished,
    /// otherwise refresh poller interest and the idle gauge.
    fn settle(&mut self, slot: usize, io_ok: bool) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.dead {
            return;
        }
        if !io_ok || (conn.closing && conn.pending_write() == 0) {
            self.close_conn(slot);
            return;
        }
        let want = desired_interest(conn, self.s.queue_depth);
        if want != conn.interest {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            let _ = self.s.poller.modify(fd, token_for(slot), want);
        }
        self.set_idle(slot);
    }

    /// Drain the frame queue: answer cheap frames inline (replaying from
    /// the window where the stamp says so), dispatch at most one worker
    /// job, stop at the write high-water mark.
    fn pump(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.busy || conn.closing || conn.pending_write() >= WBUF_HIGH {
                break;
            }
            if conn.resume.lock().generation != conn.generation {
                // A newer ATTACH took the session; this connection is a
                // zombie the client already abandoned.
                conn.stolen = true;
                conn.queue.clear();
                conn.closing = true;
                let _ = conn.stream.shutdown(Shutdown::Both);
                break;
            }
            let Some(frame) = conn.queue.pop_front() else {
                break;
            };
            if self
                .s
                .request_timeout
                .is_some_and(|rt| frame.at.elapsed() >= rt)
            {
                self.s.manager.note_timeout();
                answer(
                    conn,
                    frame.seq,
                    Response::Err {
                        code: CODE_TIMEOUT.into(),
                        message: "request deadline exceeded before execution".into(),
                    },
                    false,
                    self.s.replay_window,
                );
                continue;
            }
            match frame.req {
                Err(proto) => answer(
                    conn,
                    frame.seq,
                    Response::Err {
                        code: CODE_PROTO.into(),
                        message: proto.message,
                    },
                    false,
                    self.s.replay_window,
                ),
                Ok(Request::Attach {
                    token,
                    last_acked,
                    db,
                    user,
                }) => {
                    self.handle_attach(slot, token, last_acked, db, user);
                    continue;
                }
                Ok(req) => {
                    if let Some(s) = frame.seq {
                        let triage = {
                            let mut st = conn.resume.lock();
                            if let Some(line) = st.lookup(s) {
                                Triage::Replay(line.clone())
                            } else if st.busy_seq == Some(s) {
                                Triage::Drop
                            } else {
                                if needs_worker(&req) {
                                    st.busy_seq = Some(s);
                                }
                                Triage::Run
                            }
                        };
                        match triage {
                            Triage::Replay(line) => {
                                self.s.manager.note_replay();
                                let is_err = line_is_err(&line);
                                finish_line(conn, &line, is_err, false);
                                continue;
                            }
                            Triage::Drop => continue,
                            Triage::Run => {}
                        }
                    }
                    if needs_worker(&req) {
                        conn.busy = true;
                        let _ = self.s.job_tx.send(Job {
                            shard: self.s.index,
                            token: token_for(slot),
                            session_id: conn.id,
                            seq: frame.seq,
                            wire_token: conn.token.clone(),
                            resume: Arc::clone(&conn.resume),
                            req,
                            ctx: conn.ctx.clone(),
                            counters: Arc::clone(&conn.counters),
                        });
                    } else {
                        let (resp, quit) = process(
                            req,
                            &self.s.service,
                            &conn.counters,
                            &self.s.manager,
                            conn.id,
                            &conn.token,
                            &mut conn.ctx,
                            self.s.drain_timeout,
                        );
                        answer(conn, frame.seq, resp, quit, self.s.replay_window);
                    }
                }
            }
        }
        // EOF with nothing left to do: the session is over once the
        // write buffer flushes.
        if let Some(conn) = self.conns[slot].as_mut() {
            if conn.read_closed && conn.queue.is_empty() && !conn.busy {
                conn.closing = true;
            }
        }
    }

    /// Resolve an `ATTACH` frame: rebind this connection to the token's
    /// session and replay the un-acked window.
    fn handle_attach(
        &mut self,
        slot: usize,
        token: String,
        last_acked: u64,
        db: String,
        user: String,
    ) {
        let outcome = self
            .s
            .manager
            .attach(&token, last_acked, &db, &user, &self.s.default_ctx);
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        match outcome {
            AttachOutcome::Attached {
                id,
                counters,
                resume,
                generation,
                ctx,
                replay,
                next,
                inflight,
            } => {
                let old_id = conn.id;
                conn.id = id;
                conn.counters = counters;
                conn.resume = resume;
                conn.token = token;
                conn.generation = generation;
                conn.ctx = ctx;
                if old_id != id {
                    // Release the provisional admission this connection
                    // held since accept.
                    self.s.manager.close(old_id);
                }
                let Some(conn) = self.conns[slot].as_mut() else {
                    return;
                };
                let resp = Response::Attach {
                    session: id,
                    replayed: replay.len() as u64,
                    next,
                    inflight,
                };
                finish_line(conn, &resp.encode(), false, false);
                for line in &replay {
                    conn.wbuf.extend_from_slice(line.as_bytes());
                    conn.wbuf.push(b'\n');
                    self.s.manager.note_replay();
                }
            }
            AttachOutcome::Busy => {
                let resp = Response::Err {
                    code: CODE_BUSY.into(),
                    message: busy_message(self.s.busy_retry_ms, "session limit reached"),
                };
                finish_line(conn, &resp.encode(), true, true);
            }
            AttachOutcome::SeqAhead => {
                let resp = Response::Err {
                    code: CODE_SEQ.into(),
                    message: "last_acked is ahead of this session's responses".into(),
                };
                finish_line(conn, &resp.encode(), true, true);
            }
        }
    }

    /// Run the full I/O cycle for one session after a readiness event.
    fn service_conn(&mut self, slot: usize, readable: bool, writable: bool) {
        let mut ok = true;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return; // freed earlier in this batch
            };
            if conn.dead {
                return;
            }
            if writable {
                ok = flush(conn, &self.s.stats);
            }
            if ok && readable {
                read_some(conn, &mut self.scratch, &self.s.stats, self.s.queue_depth);
            }
        }
        if ok {
            self.pump(slot);
            if let Some(conn) = self.conns[slot].as_mut() {
                ok = flush(conn, &self.s.stats);
            }
        }
        self.settle(slot, ok);
    }

    /// Adopt a new session into the slab (it may have been accepted on
    /// another shard).
    fn install(&mut self, ns: NewSession) {
        if self.draining || ns.stream.set_nonblocking(true).is_err() {
            self.s.manager.close(ns.id);
            return;
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let fd = ns.stream.as_raw_fd();
        if self
            .s
            .poller
            .add(fd, token_for(slot), Interest::READ)
            .is_err()
        {
            self.free.push(slot);
            self.s.manager.close(ns.id);
            return;
        }
        self.conns[slot] = Some(Conn {
            id: ns.id,
            stream: ns.stream,
            decoder: FrameDecoder::new(),
            queue: VecDeque::new(),
            wbuf: Vec::new(),
            wpos: 0,
            busy: false,
            dead: false,
            read_closed: false,
            closing: false,
            quit: false,
            stolen: false,
            interest: Interest::READ,
            idle: false,
            last_active: Instant::now(),
            partial_since: None,
            token: ns.token,
            generation: 0,
            resume: ns.resume,
            ctx: self.s.default_ctx.clone(),
            counters: ns.counters,
        });
        self.s.stats.sessions.fetch_add(1, Ordering::Relaxed);
        self.set_idle(slot);
    }

    fn apply_completion(&mut self, c: Completion) {
        let slot = slot_for(c.token);
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) else {
                return;
            };
            if conn.id != c.session_id {
                return; // slot was recycled; the original session is gone
            }
            conn.busy = false;
            if conn.dead {
                // Socket died while the job ran; resources were already
                // released — just free the parked slot. The response is
                // safe in the replay window for the next ATTACH.
                self.conns[slot] = None;
                self.deferred_free.push(slot);
                return;
            }
            if conn.resume.lock().generation != conn.generation {
                // Stolen mid-job: the adopting connection replays the
                // recorded response; this one stands down silently.
                conn.stolen = true;
                conn.queue.clear();
                conn.closing = true;
            } else {
                finish_line(conn, &c.line, c.is_err, c.quit);
            }
        }
        self.pump(slot);
        // The queue may have room again: pull whatever the kernel
        // buffered while read interest was parked.
        if let Some(conn) = self.conns[slot].as_mut() {
            if !conn.dead {
                read_some(conn, &mut self.scratch, &self.s.stats, self.s.queue_depth);
            }
        }
        self.pump(slot);
        let mut ok = true;
        if let Some(conn) = self.conns[slot].as_mut() {
            if conn.dead {
                return;
            }
            ok = flush(conn, &self.s.stats);
        }
        self.settle(slot, ok);
    }

    /// Accept everything pending (shard 0 only). Hard accept failures
    /// park the listener briefly instead of spinning.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.s.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => match self.s.manager.try_open(self.s.default_ctx.clone()) {
                    None => reject_busy(&stream, self.s.busy_retry_ms),
                    Some(adm) => {
                        let ns = NewSession {
                            stream,
                            id: adm.id,
                            token: adm.token,
                            counters: adm.counters,
                            resume: adm.resume,
                        };
                        let target = self.next_shard;
                        self.next_shard = (self.next_shard + 1) % self.s.handles.len();
                        if target == self.s.index {
                            self.install(ns);
                        } else {
                            self.s.handles[target].send_new_session(ns);
                        }
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Accept-queue overflow (fd exhaustion, aborted
                    // connection storms): count it, park the listener and
                    // retry after a short poll timeout.
                    self.s
                        .stats
                        .accept_overflows
                        .fetch_add(1, Ordering::Relaxed);
                    let fd = listener.as_raw_fd();
                    let _ = self.s.poller.remove(fd);
                    self.listener_parked = true;
                    return;
                }
            }
        }
    }

    fn drain_inbox(&mut self) {
        let (completions, new_conns) = {
            let mut inbox = self.s.inbox.lock();
            (
                std::mem::take(&mut inbox.completions),
                std::mem::take(&mut inbox.new_conns),
            )
        };
        for c in completions {
            self.apply_completion(c);
        }
        for ns in new_conns {
            self.install(ns);
        }
    }

    /// Timer sweep, run on every timed poll tick: per-request deadlines
    /// (queue wait and slow-loris partial frames) and the idle reaper.
    fn sweep_timers(&mut self) {
        if self.s.request_timeout.is_none() && self.s.idle_timeout.is_none() {
            return;
        }
        for slot in 0..self.conns.len() {
            let mut reap = false;
            let mut touched = false;
            {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                if conn.dead || conn.closing {
                    continue;
                }
                if let Some(rt) = self.s.request_timeout {
                    if conn.partial_since.is_some_and(|t| t.elapsed() >= rt) {
                        // Slow loris: a frame trickling in forever. No
                        // seq is known yet, so close outright.
                        self.s.manager.note_timeout();
                        finish_line(
                            conn,
                            &Response::Err {
                                code: CODE_TIMEOUT.into(),
                                message: "partial frame exceeded request deadline".into(),
                            }
                            .encode(),
                            true,
                            true,
                        );
                        touched = true;
                    } else {
                        // Expire queued frames oldest-first, even while a
                        // job is in flight ahead of them.
                        while conn.queue.front().is_some_and(|f| f.at.elapsed() >= rt) {
                            let frame = conn.queue.pop_front().expect("checked front");
                            self.s.manager.note_timeout();
                            answer(
                                conn,
                                frame.seq,
                                Response::Err {
                                    code: CODE_TIMEOUT.into(),
                                    message: "request deadline exceeded before execution".into(),
                                },
                                false,
                                self.s.replay_window,
                            );
                            touched = true;
                        }
                    }
                }
                if !touched {
                    if let Some(it) = self.s.idle_timeout {
                        if conn.idle && conn.last_active.elapsed() >= it {
                            reap = true;
                        }
                    }
                }
            }
            if reap {
                // Reaped sessions detach (the work they might want to
                // resume is exactly why the reaper is safe to run).
                self.s.manager.note_reaped();
                self.close_conn(slot);
                continue;
            }
            if touched {
                let mut ok = true;
                if let Some(conn) = self.conns[slot].as_mut() {
                    ok = flush(conn, &self.s.stats);
                }
                self.settle(slot, ok);
            }
        }
    }

    /// Shutdown entry: stop accepting and start sweeping sessions out.
    /// Sessions with in-flight work stay open until they go quiet (or
    /// the deadline hits) so pipelined frames still on the wire are read,
    /// executed and answered — the "answer what was already queued"
    /// shutdown contract, without a thread blocked per session.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.s.drain_timeout);
        if let Some(listener) = self.s.listener.take() {
            let _ = self.s.poller.remove(listener.as_raw_fd());
            self.listener_parked = false;
        }
        self.sweep_drain();
    }

    /// One drain pass: half-close and retire every session that has been
    /// quiet for [`DRAIN_QUIET_GRACE`] (idle sessions qualify at once);
    /// past the deadline, everyone is half-closed regardless and only
    /// the already-queued frames are answered.
    fn sweep_drain(&mut self) {
        let deadline_passed = self.drain_deadline.is_some_and(|d| Instant::now() >= d);
        for slot in 0..self.conns.len() {
            {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                if conn.dead || conn.closing || conn.read_closed {
                    continue;
                }
                let quiet = !conn.busy && conn.queue.is_empty() && conn.pending_write() == 0;
                let grace_over = quiet && conn.last_active.elapsed() >= DRAIN_QUIET_GRACE;
                if !deadline_passed && !grace_over {
                    continue;
                }
                // Final read: anything that raced the close decision onto
                // the wire is pulled in now (unbounded — nothing more
                // will ever be read past this point).
                read_some(conn, &mut self.scratch, &self.s.stats, usize::MAX);
                let woke = conn.busy
                    || !conn.queue.is_empty()
                    || conn.pending_write() > 0
                    || conn.last_active.elapsed() < DRAIN_QUIET_GRACE;
                if deadline_passed || !woke {
                    let _ = conn.stream.shutdown(Shutdown::Read);
                    conn.read_closed = true;
                }
            }
            self.pump(slot);
            let mut ok = true;
            if let Some(conn) = self.conns[slot].as_mut() {
                if conn.dead {
                    continue;
                }
                ok = flush(conn, &self.s.stats);
            }
            self.settle(slot, ok);
        }
    }

    /// Poll timeout: event-driven (-1) unless something needs a clock —
    /// draining, a parked listener, configured deadline/idle timers, or
    /// (shard 0) detached sessions whose TTLs need sweeping.
    fn tick_timeout(&self) -> i32 {
        if self.listener_parked || self.draining {
            return DRAIN_TICK_MS;
        }
        let mut tick: Option<u64> = None;
        for d in [self.s.idle_timeout, self.s.request_timeout]
            .into_iter()
            .flatten()
        {
            let q = (d.as_millis() as u64 / 4).clamp(5, 1000);
            tick = Some(tick.map_or(q, |t| t.min(q)));
        }
        if tick.is_none() && self.s.index == 0 && self.s.manager.has_detached() {
            tick = Some(DETACHED_TICK_MS);
        }
        tick.map_or(-1, |t| t as i32)
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.tick_timeout();
            if self.s.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            let mut accept = false;
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    TOKEN_WAKER => {
                        self.s.waker.drain();
                        self.s.stats.wakeups.fetch_add(1, Ordering::Relaxed);
                    }
                    TOKEN_LISTENER => accept = true,
                    token => self.service_conn(slot_for(token), ev.readable, ev.writable),
                }
            }
            events = batch;
            // Slots freed during the batch become reusable only now, so
            // stale events above could not land on a recycled slot.
            self.free.append(&mut self.deferred_free);
            self.drain_inbox();
            if self.s.index == 0 && self.s.manager.has_detached() {
                for token in self.s.manager.sweep_expired() {
                    let _ = self.s.service.forget_session(&token, u64::MAX);
                }
            }
            self.sweep_timers();
            if self.listener_parked {
                if let Some(listener) = self.s.listener.as_ref() {
                    if self
                        .s
                        .poller
                        .add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
                        .is_ok()
                    {
                        self.listener_parked = false;
                        accept = true;
                    }
                }
            }
            if accept {
                self.accept_ready();
            }
            if self.s.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            } else if self.draining {
                self.sweep_drain();
            }
            if self.draining && self.live() == 0 {
                // One last inbox sweep: a handoff or completion racing
                // the exit is closed out rather than stranded.
                self.drain_inbox();
                if self.live() == 0 {
                    break;
                }
            }
        }
    }
}

/// Over the session limit: answer `ERR BUSY` (with the retry-after
/// backoff hint) on the still-blocking accepted socket and drop it.
fn reject_busy(stream: &TcpStream, retry_ms: u64) {
    let mut s = stream;
    let resp = Response::Err {
        code: CODE_BUSY.into(),
        message: busy_message(retry_ms, "session limit reached"),
    };
    let _ = s.write_all(format!("{}\n", resp.encode()).as_bytes());
    let _ = s.flush();
}

/// Entry point for one shard thread.
pub(crate) fn run_shard(shard: Shard) {
    Reactor::new(shard).run();
}

/// Execute one stamped request on a worker: `EXEC` goes through the
/// durable exactly-once journal, everything else executes normally.
/// Returns the final (stamped) line, whether it is an error, and quit.
fn execute_stamped(
    job: &mut Job,
    seq: u64,
    service: &Arc<dyn ActiveService>,
    manager: &SessionManager,
    ctx: &mut SessionCtx,
    drain_timeout: Duration,
) -> (String, bool, bool) {
    match std::mem::replace(&mut job.req, Request::Ping) {
        Request::Exec { sql } => match service.execute_once(&sql, ctx, &job.wire_token, seq) {
            Ok(ExecOutcome::Fresh(resp)) => {
                let line = stamp(seq, &render_exec(&resp).encode());
                // Backfill the journal row so a replay after a process
                // restart answers with these exact bytes.
                let _ = service.record_response(&job.wire_token, seq, &line);
                (line, false, false)
            }
            Ok(ExecOutcome::Replayed(Some(stored))) => {
                manager.note_replay();
                let is_err = line_is_err(&stored);
                (stored, is_err, false)
            }
            Ok(ExecOutcome::Replayed(None)) => {
                // Journaled (the effects applied) but the response line
                // was lost to a crash before backfill: acknowledge the
                // application without inventing a result.
                manager.note_replay();
                let resp = Response::Exec {
                    actions: 0,
                    failed: 0,
                    rows: 0,
                    text: "(replayed: applied before restart)".into(),
                };
                let line = stamp(seq, &resp.encode());
                let _ = service.record_response(&job.wire_token, seq, &line);
                (line, false, false)
            }
            Err(e) => {
                let resp = Response::Err {
                    code: e.code().into(),
                    message: e.to_string(),
                };
                let line = stamp(seq, &resp.encode());
                // A failed attempt is an attempt: journal the ERR too so
                // a post-restart replay does not re-run the batch.
                let _ = service.record_response(&job.wire_token, seq, &line);
                (line, true, false)
            }
        },
        other => {
            let (resp, quit) = process(
                other,
                service,
                &job.counters,
                manager,
                job.session_id,
                &job.wire_token,
                ctx,
                drain_timeout,
            );
            let is_err = matches!(resp, Response::Err { .. });
            (stamp(seq, &resp.encode()), is_err, quit)
        }
    }
}

/// Entry point for one execution worker thread. Exits when the job
/// channel disconnects (all shards gone).
pub(crate) fn run_worker(
    rx: Receiver<Job>,
    service: Arc<dyn ActiveService>,
    manager: Arc<SessionManager>,
    handles: Arc<Vec<ShardHandle>>,
    drain_timeout: Duration,
    replay_window: usize,
) {
    while let Ok(mut job) = rx.recv() {
        let mut ctx = job.ctx.clone();
        let (line, is_err, quit) = match job.seq {
            Some(seq) => {
                let out =
                    execute_stamped(&mut job, seq, &service, &manager, &mut ctx, drain_timeout);
                // Record the response in the replay window *before*
                // posting the completion: if the connection is already
                // dead, the next ATTACH still finds the answer.
                {
                    let mut st = job.resume.lock();
                    st.record(seq, out.0.clone(), replay_window);
                    if st.busy_seq == Some(seq) {
                        st.busy_seq = None;
                    }
                }
                // Piggybacked journal upkeep: rows the client can no
                // longer re-ask about (far behind the window) go away.
                if seq % JOURNAL_PRUNE_STRIDE == 0 {
                    let below = seq.saturating_sub(2 * replay_window as u64);
                    let _ = service.forget_session(&job.wire_token, below);
                }
                out
            }
            None => {
                let req = std::mem::replace(&mut job.req, Request::Ping);
                let (resp, quit) = process(
                    req,
                    &service,
                    &job.counters,
                    &manager,
                    job.session_id,
                    &job.wire_token,
                    &mut ctx,
                    drain_timeout,
                );
                let is_err = matches!(resp, Response::Err { .. });
                (resp.encode(), is_err, quit)
            }
        };
        handles[job.shard].send_completion(Completion {
            token: job.token,
            session_id: job.session_id,
            line,
            is_err,
            quit,
        });
    }
}
