//! The wire protocol: newline-delimited request/response frames.
//!
//! One frame is one line; embedded newlines, carriage returns and
//! backslashes in payloads are backslash-escaped so framing never breaks.
//! The grammar (documented normatively in DESIGN.md §7):
//!
//! ```text
//! request  := stamp? "HELLO" SP db SP user
//!           | stamp? "EXEC" SP sql     ; sql is escaped
//!           | "ATTACH" SP token SP last_acked (SP db SP user)?
//!           | stamp? "STATS"
//!           | stamp? "DRAIN"
//!           | "RESUME"
//!           | "PING"
//!           | "QUIT"
//! response := stamp? "OK" SP body
//!           | stamp? "ERR" SP code SP message ; message is escaped
//! stamp    := "@" seq SP               ; monotonically increasing per session
//! body     := "HELLO" SP "session=" n (SP "token=" tok)?
//!           | "EXEC" SP "actions=" n SP "failed=" n SP "rows=" n SP "text=" escaped
//!           | "ATTACH" SP "session=" n SP "replayed=" n SP "next=" n (SP "inflight=" n)?
//!           | "STATS" (SP key "=" value)*
//!           | "DRAIN" SP "quiescent=" bool SP "detached=" n SP "outcomes=" n
//!           | "RESUME" | "PONG" | "BYE"
//! ```
//!
//! `code` on an `ERR` frame is either a stable agent error code
//! ([`eca_core::EcaErrorKind::code`]) or one of the serve-layer codes
//! `PROTO` (malformed frame), `BUSY` (session limit reached — the message
//! starts with a `retry_after_ms=<n>` hint), `TIMEOUT` (request expired
//! before execution, or a partial frame starved the reactor) and `SEQ`
//! (an `ATTACH` acknowledged responses the server never produced).
//! Both ends share these encode/parse routines, so the grammar cannot
//! drift between server and client.
//!
//! Resilient sessions (DESIGN.md §16): `HELLO` returns a resume token;
//! clients that stamp requests with `@seq` get stamped responses the
//! server also keeps in a bounded replay window. After a connection dies,
//! `ATTACH token last_acked` on a fresh connection adopts the old session
//! and replays every stored response above `last_acked`; re-submitted
//! stamped `EXEC`s are deduplicated against the `SysWireJournal` table,
//! so each applies to the engine exactly once.

use std::fmt;

/// Serve-layer error code for malformed frames.
pub const CODE_PROTO: &str = "PROTO";
/// Serve-layer error code for connections rejected at the session limit.
pub const CODE_BUSY: &str = "BUSY";
/// Serve-layer error code for requests that expired before execution
/// (queue-wait deadline) or a partial frame that outlived the deadline.
pub const CODE_TIMEOUT: &str = "TIMEOUT";
/// Serve-layer error code for an `ATTACH` whose `last_acked` is ahead of
/// anything the session produced (protocol violation).
pub const CODE_SEQ: &str = "SEQ";

/// Prefix a frame line with a request/response sequence stamp.
pub fn stamp(seq: u64, line: &str) -> String {
    format!("@{seq} {line}")
}

/// Split a sequence stamp off a frame line: `"@12 EXEC ..."` becomes
/// `(Some(12), "EXEC ...")`; unstamped lines pass through unchanged.
pub fn strip_stamp(line: &str) -> (Option<u64>, &str) {
    if let Some(rest) = line.strip_prefix('@') {
        if let Some((num, payload)) = rest.split_once(' ') {
            if let Ok(seq) = num.parse::<u64>() {
                return (Some(seq), payload);
            }
        }
    }
    (None, line)
}

/// Render the `BUSY` error message with its machine-readable retry hint.
pub fn busy_message(retry_after_ms: u64, detail: &str) -> String {
    format!("retry_after_ms={retry_after_ms} {detail}")
}

/// Extract the `retry_after_ms` hint from a `BUSY` error message.
pub fn busy_retry_hint(message: &str) -> Option<u64> {
    let rest = message.strip_prefix("retry_after_ms=")?;
    let end = rest.find(' ').unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Escape a payload for embedding in a single-line frame.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// [`escape`] plus space → `\s`, for values embedded in space-delimited
/// frame bodies (`STATS` fields).
pub fn escape_token(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in escape(s).chars() {
        if c == ' ' {
            out.push_str("\\s");
        } else {
            out.push(c);
        }
    }
    out
}

/// Inverse of [`escape`] (and of [`escape_token`] — `\s` maps back to a
/// space). Unknown escape sequences pass through verbatim.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('s') => out.push(' '),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// One client→server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Bind this connection's session identity (optional; defaults apply).
    Hello { db: String, user: String },
    /// Execute one batch (SQL or ECA command).
    Exec { sql: String },
    /// Adopt a detached (or restarted-away) session after a reconnect.
    /// `last_acked` is the highest stamped response sequence the client
    /// processed; `db`/`user` restore the identity when the server no
    /// longer remembers the token (process restart).
    Attach {
        token: String,
        last_acked: u64,
        db: String,
        user: String,
    },
    /// Read agent + serve counters.
    Stats,
    /// Quiesce the service (notifier pump, in-flight actions).
    Drain,
    /// Lift the drain latch.
    Resume,
    /// Liveness probe.
    Ping,
    /// Close this session.
    Quit,
}

impl Request {
    /// Render as a single frame line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Hello { db, user } => format!("HELLO {} {}", escape(db), escape(user)),
            Request::Exec { sql } => format!("EXEC {}", escape(sql)),
            Request::Attach {
                token,
                last_acked,
                db,
                user,
            } => format!(
                "ATTACH {} {last_acked} {} {}",
                escape_token(token),
                escape_token(db),
                escape_token(user)
            ),
            Request::Stats => "STATS".into(),
            Request::Drain => "DRAIN".into(),
            Request::Resume => "RESUME".into(),
            Request::Ping => "PING".into(),
            Request::Quit => "QUIT".into(),
        }
    }

    /// Parse one frame line (without its newline).
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let line = line.trim_end_matches('\r');
        let (op, rest) = match line.split_once(' ') {
            Some((op, rest)) => (op, rest),
            None => (line, ""),
        };
        match op {
            "HELLO" => {
                let (db, user) = rest
                    .split_once(' ')
                    .ok_or_else(|| ProtoError::new("HELLO needs <db> <user>"))?;
                if db.is_empty() || user.is_empty() || user.contains(' ') {
                    return Err(ProtoError::new("HELLO needs <db> <user>"));
                }
                Ok(Request::Hello {
                    db: unescape(db),
                    user: unescape(user),
                })
            }
            "EXEC" => {
                if rest.is_empty() {
                    return Err(ProtoError::new("EXEC needs a statement"));
                }
                Ok(Request::Exec {
                    sql: unescape(rest),
                })
            }
            "ATTACH" => {
                let mut parts = rest.split(' ').filter(|p| !p.is_empty());
                let (Some(token), Some(acked)) = (parts.next(), parts.next()) else {
                    return Err(ProtoError::new("ATTACH needs <token> <last_acked>"));
                };
                let last_acked: u64 = acked
                    .parse()
                    .map_err(|_| ProtoError::new("ATTACH last_acked is not a number"))?;
                let db = parts.next().map(unescape).unwrap_or_default();
                let user = parts.next().map(unescape).unwrap_or_default();
                if parts.next().is_some() {
                    return Err(ProtoError::new("ATTACH has trailing garbage"));
                }
                Ok(Request::Attach {
                    token: unescape(token),
                    last_acked,
                    db,
                    user,
                })
            }
            "STATS" if rest.is_empty() => Ok(Request::Stats),
            "DRAIN" if rest.is_empty() => Ok(Request::Drain),
            "RESUME" if rest.is_empty() => Ok(Request::Resume),
            "PING" if rest.is_empty() => Ok(Request::Ping),
            "QUIT" if rest.is_empty() => Ok(Request::Quit),
            _ => Err(ProtoError::new(format!("unknown request '{op}'"))),
        }
    }
}

/// Incremental frame decoder: feed raw socket bytes in whatever chunks
/// the kernel hands over, pull complete frames (lines) back out. This is
/// what the reactor shards use instead of a blocking `read_line`, and what
/// [`crate::ServeClient`] uses for responses — both ends decode through
/// the same code, and `tests/proto_decode.rs` pins byte-at-a-time feeding
/// to whole-buffer parsing.
///
/// Frames come back as raw bytes (without the terminating `\n`); the
/// caller decides UTF-8 policy, mirroring how a failed `read_line` used to
/// end a session.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    start: usize,
}

/// Shrink-back threshold: a session that once buffered a huge frame should
/// not pin that allocation forever (idle-session memory budget).
const DECODER_SHRINK_BYTES: usize = 16 * 1024;

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append raw bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, or `None` if the buffer holds only a
    /// partial line (or nothing).
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        let rest = &self.buf[self.start..];
        let nl = rest.iter().position(|&b| b == b'\n')?;
        let line = rest[..nl].to_vec();
        self.start += nl + 1;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
            if self.buf.capacity() > DECODER_SHRINK_BYTES {
                self.buf.shrink_to(DECODER_SHRINK_BYTES);
            }
        } else if self.start > DECODER_SHRINK_BYTES {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Some(line)
    }

    /// Bytes of an incomplete frame still waiting for more input.
    pub fn partial_len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when `feed` bytes arrived that do not yet form a full frame.
    pub fn has_partial(&self) -> bool {
        self.partial_len() > 0
    }
}

/// A malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    pub message: String,
}

impl ProtoError {
    pub fn new(message: impl Into<String>) -> Self {
        ProtoError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtoError {}

/// One server→client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Session bound; `session` is the server-unique session id and
    /// `token` the resume token an `ATTACH` presents after a reconnect
    /// (empty from pre-resilience servers).
    Hello {
        session: u64,
        token: String,
    },
    /// Session adopted: `replayed` stored stamped response lines follow
    /// this frame; `next` is the lowest request seq the server has no
    /// response for; `inflight` is a seq still executing (re-attach after
    /// a short wait to collect it rather than re-submitting).
    Attach {
        session: u64,
        replayed: u64,
        next: u64,
        inflight: Option<u64>,
    },
    /// Batch executed. `actions`/`failed` count rule actions triggered by
    /// the batch; `rows` counts result rows; `text` carries the rendered
    /// messages (server + agent + action output), newline-joined.
    Exec {
        actions: u64,
        failed: u64,
        rows: u64,
        text: String,
    },
    /// Counter snapshot, in stable key order.
    Stats {
        fields: Vec<(String, String)>,
    },
    /// Drain accomplished.
    Drain {
        quiescent: bool,
        detached: u64,
        outcomes: u64,
    },
    Resume,
    Pong,
    Bye,
    /// Failure; `code` is stable (see module docs).
    Err {
        code: String,
        message: String,
    },
}

impl Response {
    /// Render as a single frame line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Hello { session, token } => {
                if token.is_empty() {
                    format!("OK HELLO session={session}")
                } else {
                    format!("OK HELLO session={session} token={}", escape_token(token))
                }
            }
            Response::Attach {
                session,
                replayed,
                next,
                inflight,
            } => {
                let mut line =
                    format!("OK ATTACH session={session} replayed={replayed} next={next}");
                if let Some(seq) = inflight {
                    line.push_str(&format!(" inflight={seq}"));
                }
                line
            }
            Response::Exec {
                actions,
                failed,
                rows,
                text,
            } => format!(
                "OK EXEC actions={actions} failed={failed} rows={rows} text={}",
                escape(text)
            ),
            Response::Stats { fields } => {
                let mut line = String::from("OK STATS");
                for (k, v) in fields {
                    line.push(' ');
                    line.push_str(k);
                    line.push('=');
                    line.push_str(&escape_token(v));
                }
                line
            }
            Response::Drain {
                quiescent,
                detached,
                outcomes,
            } => format!("OK DRAIN quiescent={quiescent} detached={detached} outcomes={outcomes}"),
            Response::Resume => "OK RESUME".into(),
            Response::Pong => "OK PONG".into(),
            Response::Bye => "OK BYE".into(),
            Response::Err { code, message } => format!("ERR {code} {}", escape(message)),
        }
    }

    /// Parse one frame line (without its newline).
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let line = line.trim_end_matches('\r');
        if let Some(rest) = line.strip_prefix("ERR ") {
            let (code, message) = rest
                .split_once(' ')
                .ok_or_else(|| ProtoError::new("ERR needs <code> <message>"))?;
            return Ok(Response::Err {
                code: code.to_string(),
                message: unescape(message),
            });
        }
        let rest = line
            .strip_prefix("OK ")
            .ok_or_else(|| ProtoError::new("response must start with OK or ERR"))?;
        let (body, args) = match rest.split_once(' ') {
            Some((b, a)) => (b, a),
            None => (rest, ""),
        };
        match body {
            "HELLO" => {
                let session = field_u64(args, "session")?;
                // Token is optional for compatibility with pre-resilience
                // servers (field_str tolerates extra fields either way).
                let token = field_str(args, "token").map(unescape).unwrap_or_default();
                Ok(Response::Hello { session, token })
            }
            "ATTACH" => Ok(Response::Attach {
                session: field_u64(args, "session")?,
                replayed: field_u64(args, "replayed")?,
                next: field_u64(args, "next")?,
                inflight: field_u64(args, "inflight").ok(),
            }),
            "EXEC" => {
                let actions = field_u64(args, "actions")?;
                let failed = field_u64(args, "failed")?;
                let rows = field_u64(args, "rows")?;
                let text = args
                    .split_once("text=")
                    .map(|(_, t)| unescape(t))
                    .ok_or_else(|| ProtoError::new("EXEC response missing text="))?;
                Ok(Response::Exec {
                    actions,
                    failed,
                    rows,
                    text,
                })
            }
            "STATS" => {
                let mut fields = Vec::new();
                for pair in args.split(' ').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| ProtoError::new(format!("bad stats field '{pair}'")))?;
                    fields.push((k.to_string(), unescape(v)));
                }
                Ok(Response::Stats { fields })
            }
            "DRAIN" => Ok(Response::Drain {
                quiescent: field_str(args, "quiescent")? == "true",
                detached: field_u64(args, "detached")?,
                outcomes: field_u64(args, "outcomes")?,
            }),
            "RESUME" if args.is_empty() => Ok(Response::Resume),
            "PONG" if args.is_empty() => Ok(Response::Pong),
            "BYE" if args.is_empty() => Ok(Response::Bye),
            _ => Err(ProtoError::new(format!("unknown response body '{body}'"))),
        }
    }

    /// The stats snapshot as a lookup, for clients.
    pub fn stats_field(&self, key: &str) -> Option<&str> {
        match self {
            Response::Stats { fields } => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }
}

fn field_str<'a>(args: &'a str, key: &str) -> Result<&'a str, ProtoError> {
    for pair in args.split(' ') {
        if let Some(v) = pair.strip_prefix(key) {
            if let Some(v) = v.strip_prefix('=') {
                return Ok(v);
            }
        }
    }
    Err(ProtoError::new(format!("missing field '{key}'")))
}

fn field_u64(args: &str, key: &str) -> Result<u64, ProtoError> {
    field_str(args, key)?
        .parse()
        .map_err(|_| ProtoError::new(format!("field '{key}' is not a number")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_hostile_payloads() {
        for s in [
            "plain",
            "two\nlines",
            "back\\slash",
            "cr\r\nlf",
            "trailing\\",
            "mix \\n literal",
        ] {
            let escaped = escape(s);
            assert!(!escaped.contains('\n'), "framing intact for {s:?}");
            assert_eq!(unescape(&escaped), s);
            let token = escape_token(s);
            assert!(!token.contains(' '), "token form is space-free for {s:?}");
            assert_eq!(unescape(&token), s);
        }
    }

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Hello {
                db: "db".into(),
                user: "u".into(),
            },
            Request::Exec {
                sql: "insert t values (1)\nselect * from t".into(),
            },
            Request::Attach {
                token: "tok-1f2e".into(),
                last_acked: 41,
                db: "db".into(),
                user: "u".into(),
            },
            Request::Stats,
            Request::Drain,
            Request::Resume,
            Request::Ping,
            Request::Quit,
        ];
        for req in cases {
            assert_eq!(Request::parse(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Hello {
                session: 7,
                token: "tok-9a".into(),
            },
            Response::Hello {
                session: 7,
                token: String::new(),
            },
            Response::Attach {
                session: 3,
                replayed: 2,
                next: 12,
                inflight: Some(11),
            },
            Response::Attach {
                session: 3,
                replayed: 0,
                next: 1,
                inflight: None,
            },
            Response::Exec {
                actions: 2,
                failed: 1,
                rows: 10,
                text: "rule fired\nrows follow".into(),
            },
            Response::Stats {
                fields: vec![
                    ("notifications".into(), "12".into()),
                    ("mode".into(), "exactly once".into()),
                ],
            },
            Response::Drain {
                quiescent: true,
                detached: 3,
                outcomes: 4,
            },
            Response::Resume,
            Response::Pong,
            Response::Bye,
            Response::Err {
                code: "SQL".into(),
                message: "table 't' does not exist".into(),
            },
        ];
        for resp in cases {
            assert_eq!(Response::parse(&resp.encode()), Ok(resp));
        }
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("EXEC").is_err());
        assert!(Request::parse("HELLO justdb").is_err());
        assert!(Request::parse("NOSUCH op").is_err());
        assert!(Request::parse("ATTACH tokonly").is_err());
        assert!(Request::parse("ATTACH tok notanumber").is_err());
        assert!(Request::parse("ATTACH tok 3 db u extra").is_err());
        assert!(Response::parse("YES fine").is_err());
        assert!(Response::parse("OK EXEC actions=x failed=0 rows=0 text=").is_err());
        assert!(Response::parse("ERR JUSTCODE").is_err());
    }

    #[test]
    fn stamps_round_trip_and_pass_through() {
        assert_eq!(stamp(12, "EXEC select 1"), "@12 EXEC select 1");
        assert_eq!(
            strip_stamp("@12 EXEC select 1"),
            (Some(12), "EXEC select 1")
        );
        assert_eq!(strip_stamp("EXEC select 1"), (None, "EXEC select 1"));
        // Not a stamp: no space, non-numeric, or empty seq.
        assert_eq!(strip_stamp("@12"), (None, "@12"));
        assert_eq!(strip_stamp("@x PING"), (None, "@x PING"));
        assert_eq!(strip_stamp("@ PING"), (None, "@ PING"));
        // Stamped request/response lines parse after stripping.
        let (seq, rest) = strip_stamp("@3 PING");
        assert_eq!(seq, Some(3));
        assert_eq!(Request::parse(rest), Ok(Request::Ping));
    }

    #[test]
    fn busy_retry_hint_round_trips() {
        let msg = busy_message(250, "session limit reached");
        assert_eq!(msg, "retry_after_ms=250 session limit reached");
        assert_eq!(busy_retry_hint(&msg), Some(250));
        assert_eq!(busy_retry_hint("session limit reached"), None);
        assert_eq!(busy_retry_hint("retry_after_ms=x y"), None);
    }

    #[test]
    fn decoder_reassembles_split_frames() {
        let mut d = FrameDecoder::new();
        d.feed(b"PI");
        assert_eq!(d.next_frame(), None);
        assert!(d.has_partial());
        d.feed(b"NG\nSTATS\nQU");
        assert_eq!(d.next_frame().as_deref(), Some(&b"PING"[..]));
        assert_eq!(d.next_frame().as_deref(), Some(&b"STATS"[..]));
        assert_eq!(d.next_frame(), None);
        assert_eq!(d.partial_len(), 2);
        d.feed(b"IT\n");
        assert_eq!(d.next_frame().as_deref(), Some(&b"QUIT"[..]));
        assert!(!d.has_partial());
        // Empty lines are frames too (the caller skips them, as the old
        // reader loop did).
        d.feed(b"\n\nPING\n");
        assert_eq!(d.next_frame().as_deref(), Some(&b""[..]));
        assert_eq!(d.next_frame().as_deref(), Some(&b""[..]));
        assert_eq!(d.next_frame().as_deref(), Some(&b"PING"[..]));
    }

    #[test]
    fn stats_field_lookup() {
        let resp = Response::Stats {
            fields: vec![("a".into(), "1".into()), ("b".into(), "2".into())],
        };
        assert_eq!(resp.stats_field("b"), Some("2"));
        assert_eq!(resp.stats_field("c"), None);
        assert_eq!(Response::Pong.stats_field("a"), None);
    }
}
