//! The wire protocol: newline-delimited request/response frames.
//!
//! One frame is one line; embedded newlines, carriage returns and
//! backslashes in payloads are backslash-escaped so framing never breaks.
//! The grammar (documented normatively in DESIGN.md §7):
//!
//! ```text
//! request  := "HELLO" SP db SP user
//!           | "EXEC" SP sql            ; sql is escaped
//!           | "STATS"
//!           | "DRAIN"
//!           | "RESUME"
//!           | "PING"
//!           | "QUIT"
//! response := "OK" SP body
//!           | "ERR" SP code SP message ; message is escaped
//! body     := "HELLO" SP "session=" n
//!           | "EXEC" SP "actions=" n SP "failed=" n SP "rows=" n SP "text=" escaped
//!           | "STATS" (SP key "=" value)*
//!           | "DRAIN" SP "quiescent=" bool SP "detached=" n SP "outcomes=" n
//!           | "RESUME" | "PONG" | "BYE"
//! ```
//!
//! `code` on an `ERR` frame is either a stable agent error code
//! ([`eca_core::EcaErrorKind::code`]) or one of the serve-layer codes
//! `PROTO` (malformed frame) and `BUSY` (session limit reached).
//! Both ends share these encode/parse routines, so the grammar cannot
//! drift between server and client.

use std::fmt;

/// Serve-layer error code for malformed frames.
pub const CODE_PROTO: &str = "PROTO";
/// Serve-layer error code for connections rejected at the session limit.
pub const CODE_BUSY: &str = "BUSY";

/// Escape a payload for embedding in a single-line frame.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// [`escape`] plus space → `\s`, for values embedded in space-delimited
/// frame bodies (`STATS` fields).
pub fn escape_token(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in escape(s).chars() {
        if c == ' ' {
            out.push_str("\\s");
        } else {
            out.push(c);
        }
    }
    out
}

/// Inverse of [`escape`] (and of [`escape_token`] — `\s` maps back to a
/// space). Unknown escape sequences pass through verbatim.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('s') => out.push(' '),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// One client→server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Bind this connection's session identity (optional; defaults apply).
    Hello { db: String, user: String },
    /// Execute one batch (SQL or ECA command).
    Exec { sql: String },
    /// Read agent + serve counters.
    Stats,
    /// Quiesce the service (notifier pump, in-flight actions).
    Drain,
    /// Lift the drain latch.
    Resume,
    /// Liveness probe.
    Ping,
    /// Close this session.
    Quit,
}

impl Request {
    /// Render as a single frame line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Hello { db, user } => format!("HELLO {} {}", escape(db), escape(user)),
            Request::Exec { sql } => format!("EXEC {}", escape(sql)),
            Request::Stats => "STATS".into(),
            Request::Drain => "DRAIN".into(),
            Request::Resume => "RESUME".into(),
            Request::Ping => "PING".into(),
            Request::Quit => "QUIT".into(),
        }
    }

    /// Parse one frame line (without its newline).
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let line = line.trim_end_matches('\r');
        let (op, rest) = match line.split_once(' ') {
            Some((op, rest)) => (op, rest),
            None => (line, ""),
        };
        match op {
            "HELLO" => {
                let (db, user) = rest
                    .split_once(' ')
                    .ok_or_else(|| ProtoError::new("HELLO needs <db> <user>"))?;
                if db.is_empty() || user.is_empty() || user.contains(' ') {
                    return Err(ProtoError::new("HELLO needs <db> <user>"));
                }
                Ok(Request::Hello {
                    db: unescape(db),
                    user: unescape(user),
                })
            }
            "EXEC" => {
                if rest.is_empty() {
                    return Err(ProtoError::new("EXEC needs a statement"));
                }
                Ok(Request::Exec {
                    sql: unescape(rest),
                })
            }
            "STATS" if rest.is_empty() => Ok(Request::Stats),
            "DRAIN" if rest.is_empty() => Ok(Request::Drain),
            "RESUME" if rest.is_empty() => Ok(Request::Resume),
            "PING" if rest.is_empty() => Ok(Request::Ping),
            "QUIT" if rest.is_empty() => Ok(Request::Quit),
            _ => Err(ProtoError::new(format!("unknown request '{op}'"))),
        }
    }
}

/// Incremental frame decoder: feed raw socket bytes in whatever chunks
/// the kernel hands over, pull complete frames (lines) back out. This is
/// what the reactor shards use instead of a blocking `read_line`, and what
/// [`crate::ServeClient`] uses for responses — both ends decode through
/// the same code, and `tests/proto_decode.rs` pins byte-at-a-time feeding
/// to whole-buffer parsing.
///
/// Frames come back as raw bytes (without the terminating `\n`); the
/// caller decides UTF-8 policy, mirroring how a failed `read_line` used to
/// end a session.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    start: usize,
}

/// Shrink-back threshold: a session that once buffered a huge frame should
/// not pin that allocation forever (idle-session memory budget).
const DECODER_SHRINK_BYTES: usize = 16 * 1024;

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append raw bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, or `None` if the buffer holds only a
    /// partial line (or nothing).
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        let rest = &self.buf[self.start..];
        let nl = rest.iter().position(|&b| b == b'\n')?;
        let line = rest[..nl].to_vec();
        self.start += nl + 1;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
            if self.buf.capacity() > DECODER_SHRINK_BYTES {
                self.buf.shrink_to(DECODER_SHRINK_BYTES);
            }
        } else if self.start > DECODER_SHRINK_BYTES {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Some(line)
    }

    /// Bytes of an incomplete frame still waiting for more input.
    pub fn partial_len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when `feed` bytes arrived that do not yet form a full frame.
    pub fn has_partial(&self) -> bool {
        self.partial_len() > 0
    }
}

/// A malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    pub message: String,
}

impl ProtoError {
    pub fn new(message: impl Into<String>) -> Self {
        ProtoError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtoError {}

/// One server→client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Session bound; `session` is the server-unique session id.
    Hello {
        session: u64,
    },
    /// Batch executed. `actions`/`failed` count rule actions triggered by
    /// the batch; `rows` counts result rows; `text` carries the rendered
    /// messages (server + agent + action output), newline-joined.
    Exec {
        actions: u64,
        failed: u64,
        rows: u64,
        text: String,
    },
    /// Counter snapshot, in stable key order.
    Stats {
        fields: Vec<(String, String)>,
    },
    /// Drain accomplished.
    Drain {
        quiescent: bool,
        detached: u64,
        outcomes: u64,
    },
    Resume,
    Pong,
    Bye,
    /// Failure; `code` is stable (see module docs).
    Err {
        code: String,
        message: String,
    },
}

impl Response {
    /// Render as a single frame line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Hello { session } => format!("OK HELLO session={session}"),
            Response::Exec {
                actions,
                failed,
                rows,
                text,
            } => format!(
                "OK EXEC actions={actions} failed={failed} rows={rows} text={}",
                escape(text)
            ),
            Response::Stats { fields } => {
                let mut line = String::from("OK STATS");
                for (k, v) in fields {
                    line.push(' ');
                    line.push_str(k);
                    line.push('=');
                    line.push_str(&escape_token(v));
                }
                line
            }
            Response::Drain {
                quiescent,
                detached,
                outcomes,
            } => format!("OK DRAIN quiescent={quiescent} detached={detached} outcomes={outcomes}"),
            Response::Resume => "OK RESUME".into(),
            Response::Pong => "OK PONG".into(),
            Response::Bye => "OK BYE".into(),
            Response::Err { code, message } => format!("ERR {code} {}", escape(message)),
        }
    }

    /// Parse one frame line (without its newline).
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let line = line.trim_end_matches('\r');
        if let Some(rest) = line.strip_prefix("ERR ") {
            let (code, message) = rest
                .split_once(' ')
                .ok_or_else(|| ProtoError::new("ERR needs <code> <message>"))?;
            return Ok(Response::Err {
                code: code.to_string(),
                message: unescape(message),
            });
        }
        let rest = line
            .strip_prefix("OK ")
            .ok_or_else(|| ProtoError::new("response must start with OK or ERR"))?;
        let (body, args) = match rest.split_once(' ') {
            Some((b, a)) => (b, a),
            None => (rest, ""),
        };
        match body {
            "HELLO" => {
                let session = field_u64(args, "session")?;
                Ok(Response::Hello { session })
            }
            "EXEC" => {
                let actions = field_u64(args, "actions")?;
                let failed = field_u64(args, "failed")?;
                let rows = field_u64(args, "rows")?;
                let text = args
                    .split_once("text=")
                    .map(|(_, t)| unescape(t))
                    .ok_or_else(|| ProtoError::new("EXEC response missing text="))?;
                Ok(Response::Exec {
                    actions,
                    failed,
                    rows,
                    text,
                })
            }
            "STATS" => {
                let mut fields = Vec::new();
                for pair in args.split(' ').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| ProtoError::new(format!("bad stats field '{pair}'")))?;
                    fields.push((k.to_string(), unescape(v)));
                }
                Ok(Response::Stats { fields })
            }
            "DRAIN" => Ok(Response::Drain {
                quiescent: field_str(args, "quiescent")? == "true",
                detached: field_u64(args, "detached")?,
                outcomes: field_u64(args, "outcomes")?,
            }),
            "RESUME" if args.is_empty() => Ok(Response::Resume),
            "PONG" if args.is_empty() => Ok(Response::Pong),
            "BYE" if args.is_empty() => Ok(Response::Bye),
            _ => Err(ProtoError::new(format!("unknown response body '{body}'"))),
        }
    }

    /// The stats snapshot as a lookup, for clients.
    pub fn stats_field(&self, key: &str) -> Option<&str> {
        match self {
            Response::Stats { fields } => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }
}

fn field_str<'a>(args: &'a str, key: &str) -> Result<&'a str, ProtoError> {
    for pair in args.split(' ') {
        if let Some(v) = pair.strip_prefix(key) {
            if let Some(v) = v.strip_prefix('=') {
                return Ok(v);
            }
        }
    }
    Err(ProtoError::new(format!("missing field '{key}'")))
}

fn field_u64(args: &str, key: &str) -> Result<u64, ProtoError> {
    field_str(args, key)?
        .parse()
        .map_err(|_| ProtoError::new(format!("field '{key}' is not a number")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_hostile_payloads() {
        for s in [
            "plain",
            "two\nlines",
            "back\\slash",
            "cr\r\nlf",
            "trailing\\",
            "mix \\n literal",
        ] {
            let escaped = escape(s);
            assert!(!escaped.contains('\n'), "framing intact for {s:?}");
            assert_eq!(unescape(&escaped), s);
            let token = escape_token(s);
            assert!(!token.contains(' '), "token form is space-free for {s:?}");
            assert_eq!(unescape(&token), s);
        }
    }

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Hello {
                db: "db".into(),
                user: "u".into(),
            },
            Request::Exec {
                sql: "insert t values (1)\nselect * from t".into(),
            },
            Request::Stats,
            Request::Drain,
            Request::Resume,
            Request::Ping,
            Request::Quit,
        ];
        for req in cases {
            assert_eq!(Request::parse(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Hello { session: 7 },
            Response::Exec {
                actions: 2,
                failed: 1,
                rows: 10,
                text: "rule fired\nrows follow".into(),
            },
            Response::Stats {
                fields: vec![
                    ("notifications".into(), "12".into()),
                    ("mode".into(), "exactly once".into()),
                ],
            },
            Response::Drain {
                quiescent: true,
                detached: 3,
                outcomes: 4,
            },
            Response::Resume,
            Response::Pong,
            Response::Bye,
            Response::Err {
                code: "SQL".into(),
                message: "table 't' does not exist".into(),
            },
        ];
        for resp in cases {
            assert_eq!(Response::parse(&resp.encode()), Ok(resp));
        }
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("EXEC").is_err());
        assert!(Request::parse("HELLO justdb").is_err());
        assert!(Request::parse("NOSUCH op").is_err());
        assert!(Response::parse("YES fine").is_err());
        assert!(Response::parse("OK EXEC actions=x failed=0 rows=0 text=").is_err());
        assert!(Response::parse("ERR JUSTCODE").is_err());
    }

    #[test]
    fn decoder_reassembles_split_frames() {
        let mut d = FrameDecoder::new();
        d.feed(b"PI");
        assert_eq!(d.next_frame(), None);
        assert!(d.has_partial());
        d.feed(b"NG\nSTATS\nQU");
        assert_eq!(d.next_frame().as_deref(), Some(&b"PING"[..]));
        assert_eq!(d.next_frame().as_deref(), Some(&b"STATS"[..]));
        assert_eq!(d.next_frame(), None);
        assert_eq!(d.partial_len(), 2);
        d.feed(b"IT\n");
        assert_eq!(d.next_frame().as_deref(), Some(&b"QUIT"[..]));
        assert!(!d.has_partial());
        // Empty lines are frames too (the caller skips them, as the old
        // reader loop did).
        d.feed(b"\n\nPING\n");
        assert_eq!(d.next_frame().as_deref(), Some(&b""[..]));
        assert_eq!(d.next_frame().as_deref(), Some(&b""[..]));
        assert_eq!(d.next_frame().as_deref(), Some(&b"PING"[..]));
    }

    #[test]
    fn stats_field_lookup() {
        let resp = Response::Stats {
            fields: vec![("a".into(), "1".into()), ("b".into(), "2".into())],
        };
        assert_eq!(resp.stats_field("b"), Some("2"));
        assert_eq!(resp.stats_field("c"), None);
        assert_eq!(Response::Pong.stats_field("a"), None);
    }
}
