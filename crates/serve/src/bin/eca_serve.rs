//! `eca_serve` — serve a fresh ECA agent over TCP.
//!
//! ```text
//! cargo run -p eca-serve --bin eca_serve -- [--addr HOST:PORT] [--demo]
//!                                           [--max-sessions N] [--queue-depth N]
//!                                           [--shards N] [--exec-workers N]
//!                                           [--data-dir PATH] [--idle-timeout SECS]
//!                                           [--request-timeout-ms MS]
//! ```
//!
//! The server prints the bound address, then blocks reading stdin; EOF or
//! a `quit` line triggers the graceful shutdown path (stop accepting,
//! answer queued frames, drain the agent) and prints the drain report.
//! Talk to it with anything that speaks the newline protocol, e.g.:
//!
//! ```text
//! printf 'EXEC create table t (a int)\nEXEC insert t values (1)\nQUIT\n' | nc 127.0.0.1 7654
//! ```

use std::io::BufRead;
use std::sync::Arc;

use eca_core::{ActiveService, EcaAgent};
use eca_serve::{EcaServer, ServeConfig};
use relsql::{SessionCtx, SqlServer};

fn main() {
    let mut config = ServeConfig::default().with_addr("127.0.0.1:7654");
    let mut demo = false;
    let mut data_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => config.addr = a,
                None => usage("--addr needs HOST:PORT"),
            },
            "--data-dir" => match args.next() {
                Some(d) => data_dir = Some(d),
                None => usage("--data-dir needs a path"),
            },
            "--max-sessions" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => config.max_sessions = n,
                None => usage("--max-sessions needs a number"),
            },
            "--queue-depth" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => config.queue_depth = n,
                _ => usage("--queue-depth needs a positive number"),
            },
            "--shards" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => config.shards = n,
                _ => usage("--shards needs a positive number"),
            },
            "--exec-workers" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => config.exec_workers = n,
                _ => usage("--exec-workers needs a positive number"),
            },
            "--idle-timeout" => match args.next().and_then(|n| n.parse().ok()) {
                Some(secs) if secs > 0 => {
                    config.idle_timeout = Some(std::time::Duration::from_secs(secs))
                }
                _ => usage("--idle-timeout needs a positive number of seconds"),
            },
            "--request-timeout-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(ms) if ms > 0 => {
                    config.request_timeout = Some(std::time::Duration::from_millis(ms))
                }
                _ => usage("--request-timeout-ms needs a positive number of milliseconds"),
            },
            "--demo" => demo = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    let server = match &data_dir {
        Some(dir) => match SqlServer::open(dir, relsql::DurabilityConfig::default()) {
            Ok(server) => {
                let s = server.server_stats();
                println!(
                    "(recovered from {dir}: {} WAL record(s) replayed{})",
                    s.wal_records_replayed,
                    if s.wal_torn_tail > 0 {
                        ", torn tail trimmed"
                    } else {
                        ""
                    }
                );
                server
            }
            Err(e) => {
                eprintln!("eca_serve: cannot open data dir {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => SqlServer::new(),
    };
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    let service: Arc<dyn ActiveService> = Arc::new(agent);
    if demo {
        preload_demo(service.as_ref(), &config);
        println!("(demo state loaded: table `stock`, events addStk/delStk, composite addDel)");
    }

    let handle = match EcaServer::start(Arc::clone(&service), config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("eca_serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("eca_serve listening on {}", handle.addr());
    println!(
        "(reactor: {} shard(s) + {} exec worker(s) = {} serve threads)",
        handle.reactor_shards(),
        handle.exec_workers(),
        handle.serve_threads()
    );
    println!("(EOF or 'quit' on stdin shuts down gracefully)");

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    let stats = handle.serve_stats();
    for shard in handle.reactor_stats() {
        println!(
            "shard {}: {} session(s) ({} idle), {} wakeup(s), {} partial read(s), \
             {} blocked write(s), {} accept overflow(s)",
            shard.shard,
            shard.sessions,
            shard.sessions_idle,
            shard.wakeups,
            shard.partial_reads,
            shard.write_blocked,
            shard.accept_overflows
        );
    }
    let report = handle.shutdown();
    println!(
        "shutdown: {} session(s) served, {} request(s), {} error(s)",
        stats.sessions_opened, stats.requests, stats.errors
    );
    println!(
        "drain: quiescent={}, {} detached action(s) joined, {} async outcome(s)",
        report.quiescent, report.detached_joined, report.async_outcomes
    );
}

fn preload_demo(service: &dyn ActiveService, config: &ServeConfig) {
    let ctx = SessionCtx::new(&config.default_db, &config.default_user);
    service
        .execute("create table stock (symbol varchar(10), price float)", &ctx)
        .expect("demo preload");
    for ddl in [
        "create trigger t_addStk on stock for insert event addStk \
         as print 'trigger t_addStk on primitive event addStk occurs'",
        "create trigger t_delStk on stock for delete event delStk \
         as print 'trigger t_delStk on primitive event delStk occurs'",
        "create trigger t_and event addDel = delStk ^ addStk RECENT \
         as print 'composite addDel detected' select symbol, price from stock.inserted",
    ] {
        service.define_trigger(ddl, &ctx).expect("demo preload");
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("eca_serve: {problem}");
    }
    eprintln!(
        "usage: eca_serve [--addr HOST:PORT] [--demo] [--max-sessions N] [--queue-depth N] \
         [--shards N] [--exec-workers N] [--data-dir PATH] [--idle-timeout SECS] \
         [--request-timeout-ms MS]"
    );
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}
