//! Thin readiness-polling abstraction for the reactor shards.
//!
//! Dependency-light by design (ROADMAP: "hand-rolled readiness polling
//! ... to stay dependency-light"): on Linux this is raw `epoll(7)` via
//! `extern "C"` declarations against the libc every Rust binary already
//! links — no `libc`/`mio` crate. Elsewhere on unix it falls back to
//! `poll(2)` over the registered fd set. Both backends expose the same
//! level-triggered interface:
//!
//! - [`Poller::add`]/[`Poller::modify`]/[`Poller::remove`] manage fds with
//!   a caller-chosen `u64` token and an [`Interest`] (read/write);
//! - [`Poller::wait`] blocks for readiness [`Event`]s;
//! - [`Waker`] wakes a blocked `wait` from another thread (eventfd on
//!   Linux, a self-pipe on the fallback), the completion-notification path
//!   from the execution workers back to the owning shard.
//!
//! Registration is single-threaded (the owning shard); only
//! [`Waker::wake`] crosses threads.

use std::io;
use std::os::fd::RawFd;

/// What readiness a registered fd should report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub read: bool,
    pub write: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };

    pub fn new(read: bool, write: bool) -> Interest {
        Interest { read, write }
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error / hangup on the fd; the owner should try the I/O and let it
    /// fail (or see EOF) rather than interpret this directly.
    pub error: bool,
}

fn last_errno_io() -> io::Error {
    io::Error::last_os_error()
}

fn is_eintr(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::Interrupted
}

// ---------------------------------------------------------------------------
// Linux backend: epoll + eventfd.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::*;
    use std::os::raw::{c_int, c_uint, c_void};

    // The kernel's epoll_event is packed on x86-64 only.
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn interest_mask(interest: Interest) -> u32 {
        let mut mask = 0;
        if interest.read {
            mask |= EPOLLIN;
        }
        if interest.write {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Level-triggered epoll instance owned by one reactor shard.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_errno_io());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_mask(interest),
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                Err(last_errno_io())
            } else {
                Ok(())
            }
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::new(false, false))
        }

        /// Block for readiness; `timeout_ms < 0` waits forever. Fills
        /// `events` (cleared first). EINTR retries.
        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let n = loop {
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let e = last_errno_io();
                if !is_eintr(&e) {
                    return Err(e);
                }
            };
            for raw in &self.buf[..n] {
                let bits = raw.events;
                events.push(Event {
                    token: raw.data,
                    readable: bits & (EPOLLIN | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    /// Cross-thread wakeup: a nonblocking eventfd registered with the
    /// shard's poller under a reserved token.
    pub struct Waker {
        efd: RawFd,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let efd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if efd < 0 {
                return Err(last_errno_io());
            }
            Ok(Waker { efd })
        }

        /// The fd to register for read interest with the shard's poller.
        pub fn read_fd(&self) -> RawFd {
            self.efd
        }

        pub fn wake(&self) {
            let one: u64 = 1;
            // EAGAIN means the counter is already non-zero — a wake is
            // pending, which is all we need.
            unsafe { write(self.efd, (&one as *const u64).cast(), 8) };
        }

        /// Consume pending wakes (called by the owning shard).
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe { read(self.efd, buf.as_mut_ptr().cast(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe { close(self.efd) };
        }
    }

    // Safety: the eventfd is just an fd; write/read on it are thread-safe.
    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}
}

// ---------------------------------------------------------------------------
// Portable unix fallback: poll(2) + self-pipe.
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::*;
    use std::os::raw::{c_int, c_short, c_void};

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn interest_mask(interest: Interest) -> c_short {
        let mut mask = 0;
        if interest.read {
            mask |= POLLIN;
        }
        if interest.write {
            mask |= POLLOUT;
        }
        mask
    }

    /// poll(2) over the registered fd set. Registration mutates the local
    /// table; only `wait` touches the kernel.
    pub struct Poller {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.fds.push(PollFd {
                fd,
                events: interest_mask(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for (slot, tok) in self.fds.iter_mut().zip(self.tokens.iter_mut()) {
                if slot.fd == fd {
                    slot.events = interest_mask(interest);
                    *tok = token;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            if let Some(i) = self.fds.iter().position(|p| p.fd == fd) {
                self.fds.swap_remove(i);
                self.tokens.swap_remove(i);
                Ok(())
            } else {
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            loop {
                let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len(), timeout_ms) };
                if rc >= 0 {
                    break;
                }
                let e = last_errno_io();
                if !is_eintr(&e) {
                    return Err(e);
                }
            }
            for (slot, tok) in self.fds.iter().zip(self.tokens.iter()) {
                let bits = slot.revents;
                if bits == 0 {
                    continue;
                }
                events.push(Event {
                    token: *tok,
                    readable: bits & (POLLIN | POLLHUP) != 0,
                    writable: bits & POLLOUT != 0,
                    error: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    /// Self-pipe wakeup for the poll(2) backend.
    pub struct Waker {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let mut fds: [c_int; 2] = [0; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(last_errno_io());
            }
            Ok(Waker {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        pub fn read_fd(&self) -> RawFd {
            self.read_fd
        }

        pub fn wake(&self) {
            let b = [1u8];
            unsafe { write(self.write_fd, b.as_ptr().cast(), 1) };
        }

        pub fn drain(&self) {
            // The pipe is readable (poll said so); one read empties the
            // coalesced wakes it holds right now.
            let mut buf = [0u8; 64];
            unsafe { read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }

    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}
}

#[cfg(not(unix))]
compile_error!("the eca-serve reactor requires a unix-like platform (epoll or poll(2))");

pub use sys::{Poller, Waker};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn readiness_and_interest_transitions() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "nothing pending yet");

        let mut client = TcpStream::connect(addr).unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "pending connection reports read readiness"
        );

        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .add(server_side.as_raw_fd(), 9, Interest::READ)
            .unwrap();
        client.write_all(b"hi").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.readable));

        // Write interest on an empty send buffer reports writable.
        poller
            .modify(server_side.as_raw_fd(), 9, Interest::new(true, true))
            .unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.writable));

        let mut buf = [0u8; 8];
        let mut s = &server_side;
        assert_eq!(s.read(&mut buf).unwrap(), 2);
        poller.remove(server_side.as_raw_fd()).unwrap();
        poller.remove(listener.as_raw_fd()).unwrap();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "removed fds stay silent");
    }

    #[test]
    fn waker_crosses_threads_and_coalesces() {
        let mut poller = Poller::new().unwrap();
        let waker = Arc::new(Waker::new().unwrap());
        poller.add(waker.read_fd(), 0, Interest::READ).unwrap();

        let w = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w.wake();
            w.wake(); // coalesces with the first
        });
        let mut events = Vec::new();
        poller.wait(&mut events, 5000).unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        t.join().unwrap();
        waker.drain();
        poller.wait(&mut events, 0).unwrap();
        assert!(
            events.is_empty(),
            "drained waker reports no further readiness"
        );
    }
}
