//! End-to-end tests of the TCP service layer: protocol round trips,
//! concurrent clients with zero lost firings, backpressure through the
//! bounded submission queue, session limits, drain semantics, and stable
//! error codes on the wire.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eca_core::{ActiveService, EcaAgent};
use eca_serve::{ClientError, EcaServer, Request, ServeClient, ServeConfig, ServeHandle};
use relsql::SqlServer;

fn start(config: ServeConfig) -> ServeHandle {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    let service: Arc<dyn ActiveService> = Arc::new(agent);
    EcaServer::start(service, config).expect("bind")
}

fn addr(handle: &ServeHandle) -> SocketAddr {
    handle.addr()
}

#[test]
fn roundtrip_sql_rules_and_firings_over_tcp() {
    let handle = start(ServeConfig::default());
    let (mut client, session) = ServeClient::connect_as(addr(&handle), "db", "u").unwrap();
    assert!(session >= 1);
    client.ping().unwrap();

    client.exec("create table t (a int)").unwrap();
    client.exec("create table audit (n int)").unwrap();
    // Primitive rule: its action runs natively inside the server.
    client
        .exec("create trigger tr on t for insert event e1 as insert audit values (1)")
        .unwrap();
    // Composite rule: its action runs through the agent and is reported in
    // the EXEC frame's actions= count.
    client
        .exec("create trigger td on t for delete event e2 as print 'd'")
        .unwrap();
    client
        .exec("create trigger tb event both = e2 ^ e1 as print 'composite'")
        .unwrap();
    let r = client.exec("insert t values (1)").unwrap();
    assert_eq!(r.failed, 0);
    assert_eq!(
        client.exec("select * from audit").unwrap().rows,
        1,
        "the native trigger action wrote through the wire"
    );
    let r = client.exec("delete t").unwrap();
    assert_eq!(
        r.actions, 1,
        "the composite rule action fired over the wire"
    );
    assert!(
        r.text.contains("composite"),
        "action output travels in text="
    );

    // Stats carries agent, serve and per-session counters.
    assert_eq!(client.stat_u64("notifications").unwrap(), 2);
    assert_eq!(client.stat_u64("session_id").unwrap(), session);
    assert!(client.stat_u64("session_executed").unwrap() >= 5);
    assert_eq!(client.stat_u64("sessions_active").unwrap(), 1);
    // Engine access-path counters surface on the wire: the action procs'
    // `shadow.vNo = ver.vNo` probes hit the auto-created shadow indexes.
    assert!(client.stat_u64("index_hits").unwrap() > 0);
    assert!(client.stat_u64("index_misses").is_ok());
    assert!(client.stat_u64("rows_scanned").unwrap() > 0);

    client.quit().unwrap();
    let report = handle.shutdown();
    assert!(report.quiescent);
}

#[test]
fn eight_concurrent_clients_lose_no_firings() {
    let handle = start(ServeConfig::default());
    let a = addr(&handle);
    let (mut setup, _) = ServeClient::connect_as(a, "db", "admin").unwrap();
    setup.exec("create table t (a int)").unwrap();
    setup.exec("create table audit (n int)").unwrap();
    setup
        .exec("create trigger tr on t for insert event e as insert audit values (1)")
        .unwrap();

    let clients = 8;
    let per_client = 50;
    let mut threads = Vec::new();
    for k in 0..clients {
        threads.push(std::thread::spawn(move || {
            let (mut c, _) = ServeClient::connect_as(a, "db", &format!("u{k}")).unwrap();
            for i in 0..per_client {
                c.exec(&format!("insert t values ({i})")).unwrap();
            }
            c.quit().unwrap();
        }));
    }
    for t in threads {
        t.join().unwrap();
    }

    // Every insert fired its rule exactly once — nothing lost, nothing
    // doubled, across 8 interleaved sessions. `rows=` on `select *` is the
    // table's cardinality as seen through the wire.
    let total = (clients * per_client) as u64;
    assert_eq!(count_via_rows(&mut setup, "t"), total);
    assert_eq!(count_via_rows(&mut setup, "audit"), total);
    assert_eq!(setup.stat_u64("notifications").unwrap(), total);
    handle.shutdown();
}

fn count_via_rows(client: &mut ServeClient, table: &str) -> u64 {
    client.exec(&format!("select * from {table}")).unwrap().rows
}

#[test]
fn pipelining_hits_the_bounded_queue_and_answers_in_order() {
    let handle = start(ServeConfig::default().with_queue_depth(2));
    let (mut c, _) = ServeClient::connect_as(addr(&handle), "db", "u").unwrap();
    c.exec("create table t (a int)").unwrap();

    // Pipeline 100 frames without reading a single response: the worker
    // falls behind, the depth-2 queue fills, and the reader blocks — that
    // is the backpressure path.
    let n = 100;
    for i in 0..n {
        c.send(&Request::Exec {
            sql: format!("insert t values ({i})"),
        })
        .unwrap();
    }
    for _ in 0..n {
        match c.recv().unwrap() {
            eca_serve::Response::Exec { failed, .. } => assert_eq!(failed, 0),
            other => panic!("expected EXEC response, got {}", other.encode()),
        }
    }
    assert_eq!(c.exec("select * from t").unwrap().rows, n as u64);
    let high_water = c.stat_u64("session_queue_high_water").unwrap();
    assert!(
        high_water >= 1,
        "pipelining should have filled the bounded queue (high water {high_water})"
    );
    c.quit().unwrap();
    handle.shutdown();
}

#[test]
fn session_limit_rejects_with_busy_then_recovers() {
    let handle = start(ServeConfig::default().with_max_sessions(1));
    let a = addr(&handle);
    let (mut first, _) = ServeClient::connect_as(a, "db", "one").unwrap();
    first.ping().unwrap();

    // Second connection: turned away with a BUSY error frame.
    let mut second = ServeClient::connect(a).unwrap();
    match second.recv().unwrap() {
        eca_serve::Response::Err { code, .. } => assert_eq!(code, "BUSY"),
        other => panic!("expected ERR BUSY, got {}", other.encode()),
    }
    assert_eq!(handle.serve_stats().sessions_rejected, 1);

    // Once the first session closes, the slot frees up.
    first.quit().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if handle.serve_stats().sessions_active == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "session never closed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (mut third, _) = ServeClient::connect_as(a, "db", "three").unwrap();
    third.ping().unwrap();
    third.quit().unwrap();
    handle.shutdown();
}

#[test]
fn drain_rejects_new_work_until_resume() {
    let handle = start(ServeConfig::default());
    let (mut c, _) = ServeClient::connect_as(addr(&handle), "db", "u").unwrap();
    c.exec("create table t (a int)").unwrap();

    let (quiescent, _, _) = c.drain().unwrap();
    assert!(quiescent);
    match c.exec("insert t values (1)") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "UNAVAILABLE"),
        other => panic!("draining service accepted work: {other:?}"),
    }
    // Non-statement frames still work while draining.
    c.ping().unwrap();
    assert_eq!(c.stat_u64("draining").unwrap(), 1);

    c.resume().unwrap();
    assert_eq!(c.exec("insert t values (1)").unwrap().failed, 0);
    assert_eq!(c.stat_u64("draining").unwrap(), 0);
    c.quit().unwrap();
    handle.shutdown();
}

#[test]
fn wire_error_codes_are_stable() {
    let handle = start(ServeConfig::default());
    let a = addr(&handle);
    let (mut c, _) = ServeClient::connect_as(a, "db", "u").unwrap();

    match c.exec("select * from nosuch") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "SQL"),
        other => panic!("expected SQL error, got {other:?}"),
    }
    match c.exec("create trigger tr on nosuch for insert event e as print 'x'") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "NAMING"),
        other => panic!("expected NAMING error, got {other:?}"),
    }

    // A malformed frame sent raw is answered ERR PROTO, and the session
    // survives it.
    let raw = TcpStream::connect(a).unwrap();
    let mut w = raw.try_clone().unwrap();
    let mut r = BufReader::new(raw);
    writeln!(w, "BOGUS frame").unwrap();
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR PROTO "), "got {line:?}");
    writeln!(w, "PING").unwrap();
    line.clear();
    r.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "OK PONG");

    c.quit().unwrap();
    handle.shutdown();
}

#[test]
fn shutdown_answers_frames_already_queued() {
    let handle = start(ServeConfig::default());
    let (mut c, _) = ServeClient::connect_as(addr(&handle), "db", "u").unwrap();
    c.exec("create table t (a int)").unwrap();
    // Pipeline a burst, then shut the server down from under the client:
    // everything already queued must still be answered before the socket
    // closes (half-close shutdown).
    let n = 20;
    for i in 0..n {
        c.send(&Request::Exec {
            sql: format!("insert t values ({i})"),
        })
        .unwrap();
    }
    let shutdown = std::thread::spawn(move || handle.shutdown());
    let mut answered = 0;
    while let Ok(resp) = c.recv() {
        if matches!(resp, eca_serve::Response::Exec { .. }) {
            answered += 1;
        }
        if answered == n {
            break;
        }
    }
    assert_eq!(
        answered, n,
        "queued frames must be answered through shutdown"
    );
    let report = shutdown.join().unwrap();
    assert!(report.quiescent);
}

fn durable_start(storage: Arc<relsql::FaultyStorage>) -> ServeHandle {
    let server = SqlServer::open_with_storage(
        storage,
        relsql::DurabilityConfig {
            fsync: relsql::FsyncPolicy::Always,
            checkpoint_bytes: 0,
        },
        relsql::EngineConfig::default(),
    )
    .expect("open durable");
    let agent = EcaAgent::with_defaults(server).expect("agent start");
    EcaServer::start(
        Arc::new(agent) as Arc<dyn ActiveService>,
        ServeConfig::default(),
    )
    .expect("bind")
}

#[test]
fn wal_failure_answers_io_and_degrades_to_read_only() {
    // Phase 1: a healthy durable run counts the WAL appends consumed by
    // agent startup plus the setup statements, so phase 2 can cut the
    // append budget at a precise point mid-session.
    let probe = relsql::FaultyStorage::new();
    let handle = durable_start(probe);
    let (mut c, _) = ServeClient::connect_as(addr(&handle), "db", "u").unwrap();
    c.exec("create table t (a int)").unwrap();
    c.exec("insert t values (1)").unwrap();
    let setup_records = c.stat_u64("wal_records").unwrap();
    assert!(setup_records >= 2, "setup batches must be logged");
    c.quit().unwrap();
    handle.shutdown();

    // Phase 2: the identical run, but the disk dies after one extra
    // append — the next mutating batch hits the WAL failure while the
    // session is live.
    let storage = relsql::FaultyStorage::with_plan(relsql::DiskFaultPlan {
        fail_appends_after: Some(setup_records + 1),
        ..Default::default()
    });
    let handle = durable_start(storage);
    let (mut c, _) = ServeClient::connect_as(addr(&handle), "db", "u").unwrap();
    c.exec("create table t (a int)").unwrap();
    c.exec("insert t values (1)").unwrap();
    c.exec("insert t values (2)").unwrap(); // consumes the last good append
    match c.exec("insert t values (3)") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "IO"),
        other => panic!("expected IO error over the wire, got {other:?}"),
    }

    // The connection survived the storage failure: the session still
    // answers frames, reads are served, and further writes fail fast with
    // the same stable code instead of touching the engine.
    c.ping().unwrap();
    assert_eq!(c.exec("select * from t").unwrap().rows, 2);
    match c.exec("insert t values (4)") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "IO"),
        other => panic!("expected read-only IO error, got {other:?}"),
    }

    c.quit().unwrap();
    handle.shutdown();
}
