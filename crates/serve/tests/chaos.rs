//! Transport-chaos suite (DESIGN.md §16): deterministic faults injected
//! between unmodified endpoints, verifying that the resilient client +
//! session-resurrection protocol deliver exactly-once EXEC:
//!
//! - kill the connection at **every frame boundary** of a trigger-firing
//!   workload (and at seeded mid-frame offsets, in both directions) and
//!   demand the recovered run be response-for-response identical to a
//!   fault-free reference — no lost firings, no duplicated inserts;
//! - a property test that the server's replay window hands back **byte
//!   identical** response lines under random kill points × ack lags;
//! - a `kill -9`ed and restarted `eca_serve` process, where the durable
//!   wire journal (not the in-memory window) must dedup a resubmitted
//!   in-flight EXEC;
//! - deadline/reaper behavior: slow-loris partial frames answered
//!   `ERR TIMEOUT`, idle sessions reaped and counted.
//!
//! `CHAOS_STRIDE=n` thins the frame-boundary sweep for quick CI runs.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eca_core::{ActiveService, EcaAgent};
use eca_serve::{
    stamp, strip_stamp, ChaosListener, ClientError, ConnPlan, EcaServer, ExecResult,
    ReconnectPolicy, Request, ServeClient, ServeConfig, ServeHandle,
};
use relsql::SqlServer;

fn start(config: ServeConfig) -> ServeHandle {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    EcaServer::start(Arc::new(agent) as Arc<dyn ActiveService>, config).expect("bind")
}

/// Tight backoff so a test-sized retry storm resolves in milliseconds.
fn fast_policy(seed: u64) -> ReconnectPolicy {
    ReconnectPolicy {
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(20),
        max_retries: 500,
        seed,
    }
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

const INSERTS: u64 = 6;

/// A trigger-firing workload: every insert fires a native rule writing
/// `audit`, and the two trailing selects pin both cardinalities into the
/// response stream so a duplicated or lost EXEC changes the transcript.
fn workload() -> Vec<String> {
    let mut v = vec![
        "create table t (a int)".to_string(),
        "create table audit (n int)".to_string(),
        "create trigger tr on t for insert event e as insert audit values (1)".to_string(),
    ];
    for i in 0..INSERTS {
        v.push(format!("insert t values ({i})"));
    }
    v.push("select * from t".to_string());
    v.push("select * from audit".to_string());
    v
}

/// Drive the workload through a resilient client. The initial connect is
/// retried because a fault plan may sever the link inside the `HELLO`
/// exchange, before resilient mode has a token to `ATTACH` with.
fn run_workload(addr: &str, seed: u64) -> Vec<ExecResult> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut client = loop {
        match ServeClient::connect_resilient(addr, "db", "u", fast_policy(seed)) {
            Ok((c, _)) => break c,
            Err(ClientError::Io(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2))
            }
            Err(e) => panic!("connect through chaos proxy: {e}"),
        }
    };
    let results = workload()
        .iter()
        .map(|sql| client.exec(sql).expect("resilient exec"))
        .collect();
    let _ = client.quit();
    results
}

/// Client→server byte offsets of every frame boundary the workload
/// produces: the `HELLO` line, then each stamped `EXEC` (seqs 1..).
fn c2s_frame_boundaries() -> Vec<u64> {
    let hello = Request::Hello {
        db: "db".into(),
        user: "u".into(),
    };
    let mut total = hello.encode().len() as u64 + 1;
    let mut offsets = vec![total];
    for (i, sql) in workload().into_iter().enumerate() {
        let line = stamp(i as u64 + 1, &Request::Exec { sql }.encode());
        total += line.len() as u64 + 1;
        offsets.push(total);
    }
    offsets
}

fn reference_run() -> Vec<ExecResult> {
    let handle = start(ServeConfig::default());
    let reference = run_workload(&handle.addr().to_string(), 1);
    handle.shutdown();
    assert_eq!(reference.len(), workload().len());
    let n = reference.len();
    assert_eq!(reference[n - 2].rows, INSERTS, "reference: rows in t");
    assert_eq!(reference[n - 1].rows, INSERTS, "reference: audit firings");
    reference
}

#[test]
fn kill_at_every_frame_boundary_matches_fault_free_run() {
    let reference = reference_run();
    let stride: usize = std::env::var("CHAOS_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);
    for (i, offset) in c2s_frame_boundaries().into_iter().enumerate() {
        if i % stride != 0 {
            continue;
        }
        let handle = start(ServeConfig::default());
        let proxy = ChaosListener::start(handle.addr(), move |idx| {
            if idx == 0 {
                ConnPlan::kill_c2s(offset)
            } else {
                ConnPlan::clean()
            }
        })
        .expect("proxy");
        let got = run_workload(&proxy.addr().to_string(), 2 + i as u64);
        assert_eq!(
            got, reference,
            "kill at c2s frame boundary {i} (byte {offset}) must replay to the reference transcript"
        );
        let stats = handle.serve_stats();
        if i > 0 {
            // Post-HELLO kills force at least one ATTACH resurrection
            // (kills inside the HELLO exchange may retry from scratch).
            assert!(
                stats.sessions_resumed >= 1,
                "boundary {i}: expected a session resurrection, stats {stats:?}"
            );
        }
        assert_eq!(proxy.counters().killed.load(Ordering::Relaxed), 1);
        handle.shutdown();
    }
}

#[test]
fn seeded_midframe_and_s2c_kills_stay_exactly_once() {
    let reference = reference_run();
    let total_c2s = *c2s_frame_boundaries().last().unwrap();
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    let mut plans = Vec::new();
    for _ in 0..4 {
        rng = xorshift(rng);
        // Mid-frame offsets: anywhere in the request stream, including
        // inside a frame — the decoder never sees the tail.
        plans.push(ConnPlan::kill_c2s(1 + rng % total_c2s));
    }
    for _ in 0..4 {
        rng = xorshift(rng);
        // Server→client kills lose already-computed responses; the replay
        // window must resupply them on ATTACH.
        plans.push(ConnPlan::kill_s2c(1 + rng % 400));
    }
    // Truncated/coalesced/delayed writes: every frame arrives in 3-byte
    // shreds, exercising the incremental decoder on both ends.
    plans.push(ConnPlan::fragmented(3, Duration::from_micros(100)));
    for (case, plan) in plans.into_iter().enumerate() {
        let handle = start(ServeConfig::default());
        let p = plan.clone();
        let proxy = ChaosListener::start(handle.addr(), move |idx| {
            if idx == 0 {
                p.clone()
            } else {
                ConnPlan::clean()
            }
        })
        .expect("proxy");
        let got = run_workload(&proxy.addr().to_string(), 100 + case as u64);
        assert_eq!(got, reference, "case {case} ({plan:?})");
        handle.shutdown();
    }
}

#[test]
fn accept_partition_heals_through_client_backoff() {
    let handle = start(ServeConfig::default());
    let reference = reference_run();
    // The first three connection attempts are refused at accept — a
    // transient partition the client's capped backoff must ride out.
    let proxy = ChaosListener::start(handle.addr(), |idx| {
        if idx < 3 {
            ConnPlan::denied()
        } else {
            ConnPlan::clean()
        }
    })
    .expect("proxy");
    let got = run_workload(&proxy.addr().to_string(), 7);
    assert_eq!(got, reference);
    assert_eq!(proxy.counters().denied.load(Ordering::Relaxed), 3);
    handle.shutdown();
}

/// Raw newline-protocol connection for tests that drive `ATTACH` and the
/// stamped framing by hand.
struct RawConn {
    w: TcpStream,
    r: BufReader<TcpStream>,
}

impl RawConn {
    fn connect(addr: SocketAddr) -> RawConn {
        let deadline = Instant::now() + Duration::from_secs(10);
        let s = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) => {
                    assert!(Instant::now() < deadline, "connect {addr}: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        RawConn {
            r: BufReader::new(s.try_clone().expect("clone")),
            w: s,
        }
    }

    fn send(&mut self, line: &str) {
        self.w.write_all(line.as_bytes()).expect("send");
        self.w.write_all(b"\n").expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.r.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end_matches(['\r', '\n']).to_string()
    }

    fn exec_stamped(&mut self, seq: u64, sql: &str) -> String {
        self.send(&stamp(seq, &Request::Exec { sql: sql.into() }.encode()));
        self.recv()
    }

    /// Drop without `QUIT` — the abrupt disconnect that parks the
    /// session in the detached pool.
    fn drop_abruptly(self) {
        let _ = self.w.shutdown(Shutdown::Both);
    }
}

/// Parse `OK HELLO session=<id> token=<tok>`.
fn parse_hello(line: &str) -> (u64, String) {
    let id = line
        .split("session=")
        .nth(1)
        .and_then(|r| r.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no session id in {line:?}"));
    let token = line
        .split("token=")
        .nth(1)
        .unwrap_or_else(|| panic!("no token in {line:?}"))
        .to_string();
    (id, token)
}

#[test]
fn replay_window_is_byte_identical_across_random_kills_and_ack_lags() {
    let handle = start(ServeConfig::default().with_replay_window(64));
    let addr = handle.addr();
    let mut conn = RawConn::connect(addr);
    conn.send("HELLO db u");
    let (id, token) = parse_hello(&conn.recv());

    let mut seq: u64 = 1;
    let mut responses = vec![String::new()]; // 1-indexed by seq
    responses.push(conn.exec_stamped(seq, "create table t (a int)"));

    // Random kill points × random ack lags: whatever the client claims
    // to have consumed, the window must resupply the rest **verbatim**.
    let mut rng = 0xC0FF_EE11_D00D_F00Du64;
    let mut floor: u64 = 0; // highest last_acked ever presented
    for round in 0..10 {
        rng = xorshift(rng);
        for _ in 0..(1 + rng % 4) {
            seq += 1;
            responses.push(conn.exec_stamped(seq, &format!("insert t values ({seq})")));
        }
        conn.drop_abruptly();
        rng = xorshift(rng);
        let lag = rng % (seq - floor + 1);
        let last_acked = seq - lag;
        floor = floor.max(last_acked);
        conn = RawConn::connect(addr);
        conn.send(&format!("ATTACH {token} {last_acked} db u"));
        assert_eq!(
            conn.recv(),
            format!("OK ATTACH session={id} replayed={lag} next={}", seq + 1),
            "round {round}"
        );
        for k in 1..=lag {
            let at = (last_acked + k) as usize;
            assert_eq!(
                conn.recv(),
                responses[at],
                "round {round}: replayed line for seq {at} must be byte-identical"
            );
        }
    }

    // Acking a seq the server never answered is a protocol breach,
    // rejected with the stable SEQ code instead of a silent resync.
    conn.drop_abruptly();
    conn = RawConn::connect(addr);
    conn.send(&format!("ATTACH {token} {} db u", seq + 5));
    let line = conn.recv();
    assert!(line.starts_with("ERR SEQ "), "got {line:?}");
    assert!(handle.serve_stats().replays_served >= 1);
    handle.shutdown();
}

#[test]
fn slow_loris_partial_frame_times_out_with_stable_code() {
    let handle =
        start(ServeConfig::default().with_request_timeout(Some(Duration::from_millis(80))));
    let mut conn = RawConn::connect(handle.addr());
    conn.send("HELLO db u");
    conn.recv();
    // A frame that trickles in and never finishes must not pin the
    // session forever: the deadline sweep answers and disconnects.
    conn.w.write_all(b"EXEC insert ").expect("partial write");
    let line = conn.recv();
    assert!(line.starts_with("ERR TIMEOUT "), "got {line:?}");
    let mut rest = String::new();
    assert_eq!(
        conn.r.read_line(&mut rest).expect("eof"),
        0,
        "conn must close"
    );
    assert!(handle.serve_stats().requests_timed_out >= 1);
    handle.shutdown();
}

#[test]
fn idle_sessions_are_reaped_and_counted() {
    let handle = start(ServeConfig::default().with_idle_timeout(Some(Duration::from_millis(60))));
    let (mut c, _) = ServeClient::connect_as(handle.addr(), "db", "u").expect("connect");
    c.ping().expect("ping");
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.serve_stats().sessions_reaped == 0 {
        assert!(Instant::now() < deadline, "idle session never reaped");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The reaped session's socket is really gone.
    match c.ping() {
        Err(ClientError::Io(_)) => {}
        other => panic!("reaped session still answers: {other:?}"),
    }
    handle.shutdown();
}

/// Spawn a real `eca_serve` process on an ephemeral port with a durable
/// data dir, parsing the bound address off its stdout.
fn spawn_server(data_dir: &std::path::Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_eca_serve"))
        .args(["--addr", "127.0.0.1:0", "--data-dir"])
        .arg(data_dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn eca_serve");
    let stdout = child.stdout.take().expect("stdout");
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("server stdout");
        assert!(n > 0, "server exited before printing its address");
        if let Some(rest) = line.trim().strip_prefix("eca_serve listening on ") {
            break rest.parse().expect("listen addr");
        }
    };
    // Drain stdout forever so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, addr)
}

#[test]
fn kill_nine_restart_dedups_inflight_exec_via_durable_journal() {
    let dir = std::env::temp_dir().join(format!("eca_chaos_k9_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    let (mut child, addr) = spawn_server(&dir);
    let mut conn = RawConn::connect(addr);
    conn.send("HELLO db u");
    let (_, token) = parse_hello(&conn.recv());
    let mut seq: u64 = 0;
    for sql in workload().iter().take(3) {
        seq += 1;
        let resp = conn.exec_stamped(seq, sql);
        assert!(resp.contains("OK EXEC"), "setup: {resp}");
    }
    for i in 0..(INSERTS - 1) {
        seq += 1;
        conn.exec_stamped(seq, &format!("insert t values ({i})"));
    }
    let last_acked = seq;

    // Send the final insert but DO NOT read its response; wait (via a
    // second session) until it has verifiably been applied, then SIGKILL
    // the server — the classic "did my write land?" ambiguity.
    let inflight = seq + 1;
    conn.send(&stamp(
        inflight,
        &Request::Exec {
            sql: "insert t values (99)".into(),
        }
        .encode(),
    ));
    let mut probe = RawConn::connect(addr);
    probe.send("HELLO db probe");
    probe.recv();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        probe.send("EXEC select * from t");
        let line = probe.recv();
        if line.contains(&format!("rows={INSERTS}")) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "in-flight insert never applied: {line}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // Restart from the same data dir. The in-memory replay window died
    // with the process; only the journaled idempotency key survives.
    let (mut child2, addr2) = spawn_server(&dir);
    let mut conn = RawConn::connect(addr2);
    conn.send(&format!("ATTACH {token} {last_acked} db u"));
    let head = conn.recv();
    assert!(head.starts_with("OK ATTACH "), "got {head:?}");

    // Resubmitting the in-flight EXEC must succeed without re-applying.
    let resp = conn.exec_stamped(inflight, "insert t values (99)");
    let (s, rest) = strip_stamp(&resp);
    assert_eq!(s, Some(inflight));
    assert!(rest.starts_with("OK EXEC"), "resubmit answered {resp:?}");

    seq = inflight;
    for table in ["t", "audit"] {
        seq += 1;
        let line = conn.exec_stamped(seq, &format!("select * from {table}"));
        assert!(
            line.contains(&format!("rows={INSERTS}")),
            "exactly-once violated for {table}: {line}"
        );
    }
    child2.kill().expect("cleanup kill");
    let _ = child2.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
