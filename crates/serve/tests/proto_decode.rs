//! Property/fuzz coverage for incremental frame decoding: however a byte
//! stream is split across reads — one byte at a time, or at random
//! boundaries — the [`FrameDecoder`] must yield exactly the frames (and
//! the parser exactly the `PROTO` errors) that whole-buffer line
//! splitting yields. This is the invariant the reactor's per-session
//! decode path rests on.

use eca_serve::proto::{FrameDecoder, ProtoError, Request};

/// Deterministic xorshift64* — no external PRNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A corpus that exercises every parser edge: valid frames, escapes,
/// malformed verbs, bad argument arity, empty and whitespace lines,
/// CR-LF endings, long payloads and multi-byte UTF-8 (so random splits
/// land mid-character).
fn corpus() -> Vec<u8> {
    let frames: Vec<String> = vec![
        "HELLO db user".into(),
        "HELLO db\\x20with\\x20space user".into(),
        "EXEC select 1".into(),
        "EXEC insert t values (1, 'a b c')".into(),
        format!("EXEC insert wide values ('{}')", "x".repeat(4000)),
        "EXEC sélect «naïve» — über".into(), // multi-byte UTF-8
        "STATS".into(),
        "PING".into(),
        "DRAIN".into(),
        "RESUME".into(),
        "BOGUS frame".into(),
        "HELLO".into(),       // missing args
        "HELLO a b c".into(), // too many args
        "".into(),            // empty line: skipped, not a frame
        "   ".into(),         // whitespace-only: parses (as error)
        "exec lowercase verb".into(),
        "QUIT".into(),
    ];
    let mut bytes = Vec::new();
    for (i, f) in frames.iter().enumerate() {
        bytes.extend_from_slice(f.as_bytes());
        // Alternate line endings; both must decode identically.
        if i % 3 == 1 {
            bytes.extend_from_slice(b"\r\n");
        } else {
            bytes.push(b'\n');
        }
    }
    bytes
}

/// Reference semantics: whole-buffer split on '\n', trim trailing CR,
/// skip empty lines, parse the rest — exactly what the old
/// `BufReader::read_line` server loop did.
fn reference_parse(bytes: &[u8]) -> Vec<Result<Request, ProtoError>> {
    String::from_utf8(bytes.to_vec())
        .unwrap()
        .split('\n')
        .map(|l| l.trim_end_matches(['\n', '\r']))
        .filter(|l| !l.is_empty())
        .map(Request::parse)
        .collect()
}

/// Run the same bytes through a [`FrameDecoder`] fed in the given
/// chunks, mirroring the reactor's read path (skip empty frames, parse
/// the rest).
fn decode_in_chunks(bytes: &[u8], chunks: &[usize]) -> Vec<Result<Request, ProtoError>> {
    let mut decoder = FrameDecoder::new();
    let mut out = Vec::new();
    let mut pos = 0;
    for &len in chunks {
        decoder.feed(&bytes[pos..pos + len]);
        pos += len;
        while let Some(frame) = decoder.next_frame() {
            let text = String::from_utf8(frame).expect("corpus is valid UTF-8");
            let trimmed = text.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            out.push(Request::parse(trimmed));
        }
    }
    assert_eq!(pos, bytes.len(), "chunk plan must cover the input");
    out
}

#[test]
fn byte_at_a_time_matches_whole_buffer() {
    let bytes = corpus();
    let expected = reference_parse(&bytes);
    let chunks = vec![1; bytes.len()];
    let got = decode_in_chunks(&bytes, &chunks);
    assert_eq!(got, expected);
}

#[test]
fn random_split_points_match_whole_buffer() {
    let bytes = corpus();
    let expected = reference_parse(&bytes);
    assert!(
        expected.iter().any(|r| r.is_err()),
        "corpus must include frames that yield PROTO errors"
    );
    assert!(
        expected.iter().any(|r| r.is_ok()),
        "corpus must include well-formed frames"
    );
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    for round in 0..500 {
        let mut chunks = Vec::new();
        let mut left = bytes.len();
        while left > 0 {
            // Mix tiny splits (1..8) with larger ones so boundaries land
            // both mid-frame and mid-UTF-8-character.
            let cap = if round % 2 == 0 { 8 } else { 300 };
            let take = 1 + rng.below(cap.min(left));
            chunks.push(take);
            left -= take;
        }
        let got = decode_in_chunks(&bytes, &chunks);
        assert_eq!(got, expected, "split plan {chunks:?} diverged");
    }
}

fn push_parsed(out: &mut Vec<Result<Request, ProtoError>>, frame: Vec<u8>) {
    let text = String::from_utf8(frame).expect("corpus is valid UTF-8");
    let trimmed = text.trim_end_matches(['\n', '\r']);
    if !trimmed.is_empty() {
        out.push(Request::parse(trimmed));
    }
}

#[test]
fn kill_and_reconnect_boundary_loses_no_frame_and_duplicates_none() {
    // A connection killed mid-frame abandons its decoder — and the
    // partial tail with it. After reconnect the sender re-transmits from
    // the last *frame boundary* (what a seq-stamped resilient client
    // does: whole frames are acknowledged, partial ones re-sent). For
    // every seeded kill point the pre-kill frames plus the re-fed stream
    // must decode to exactly the whole-buffer reference: no frame lost
    // at the boundary, none duplicated by the re-transmission.
    let bytes = corpus();
    let expected = reference_parse(&bytes);
    let mut rng = Rng(0x5EED_CAFE_F00D_BEEF);
    for _ in 0..200 {
        let kill = 1 + rng.below(bytes.len() - 1);
        let mut decoder = FrameDecoder::new();
        let mut out = Vec::new();
        let mut consumed = 0; // bytes up to the last completed frame
        let mut pos = 0;
        while pos < kill {
            let take = 1 + rng.below((kill - pos).min(64));
            decoder.feed(&bytes[pos..pos + take]);
            pos += take;
            while let Some(frame) = decoder.next_frame() {
                consumed += frame.len() + 1; // +1 for the terminating LF
                push_parsed(&mut out, frame);
            }
        }
        // The kill: whatever was mid-frame dies with the connection. A
        // fresh decoder picks up from the last frame boundary.
        drop(decoder);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes[consumed..]);
        while let Some(frame) = decoder.next_frame() {
            push_parsed(&mut out, frame);
        }
        assert_eq!(out, expected, "kill at byte {kill} diverged");
    }
}

#[test]
fn split_inside_crlf_yields_no_phantom_frame() {
    // A read boundary landing between CR and LF must not produce a
    // spurious frame or leak the CR into the next one.
    let mut decoder = FrameDecoder::new();
    decoder.feed(b"PING\r");
    assert!(
        decoder.next_frame().is_none(),
        "CR without LF must not terminate a frame"
    );
    assert!(decoder.has_partial());
    assert_eq!(decoder.partial_len(), 5);
    decoder.feed(b"\nSTATS\n");
    // The frame comes back with its CR (the caller trims, matching what
    // read_line-based loops always saw).
    assert_eq!(decoder.next_frame().unwrap(), b"PING\r".to_vec());
    assert_eq!(decoder.next_frame().unwrap(), b"STATS".to_vec());
    assert!(decoder.next_frame().is_none());
    assert!(!decoder.has_partial());
}

#[test]
fn decoder_buffer_does_not_grow_without_bound() {
    // Long sessions must not accumulate capacity: after a burst of big
    // frames, the retained buffer shrinks back under the documented cap.
    let mut decoder = FrameDecoder::new();
    let big = format!("EXEC insert t values ('{}')\n", "y".repeat(100_000));
    for _ in 0..4 {
        decoder.feed(big.as_bytes());
        while decoder.next_frame().is_some() {}
    }
    assert!(!decoder.has_partial());
    assert_eq!(decoder.partial_len(), 0);
}
