//! E17 — compiled physical plans + vectorized batch execution vs the
//! row-at-a-time interpreter, on the non-indexed hot path: full-scan
//! filters, aggregates, GROUP BY, and selective DML over 10k/100k rows.
//!
//! Two [`SqlServer`]s run the identical statement stream — one with
//! `compiled_exec: true` (the default), one with it off — so the
//! comparison isolates exactly what plan lowering + 1024-row batch
//! execution buys. Going through the server (not a bare `Engine`) also
//! exercises the lowered-plan cache riding the masked-literal plan cache:
//! per-op literals differ but the compiled program is reused.
//!
//! Every operation's result is asserted byte-identical between the two
//! servers, and final table state must match: compiled execution may only
//! change *how fast* answers arrive, never the answers.
//!
//! Plain `fn main` (harness = false): a fixed workload with correctness
//! assertions, not a statistical micro-benchmark.
//!
//! The ≥ 5x speedup bar for scan-filter and aggregate shapes is enforced
//! at the largest scale run when that scale is ≥ 100k rows (below that,
//! per-statement fixed costs dilute the per-row win); `E17_MIN_SPEEDUP`
//! overrides the bar either way.
//!
//! ```text
//! cargo bench -p eca-bench --bench e17_compiled
//! E17_ROWS=10000 E17_OPS=20 cargo bench -p eca-bench --bench e17_compiled  # CI smoke
//! E17_MIN_SPEEDUP=5.0 cargo bench -p eca-bench --bench e17_compiled        # force the bar
//! ```

use std::time::Instant;

use relsql::{EngineConfig, Session, SqlServer};

fn main() {
    let ops = env_or("E17_OPS", 100);
    let max_rows = env_or("E17_ROWS", 100_000);
    let bar_env: Option<f64> = std::env::var("E17_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok());
    println!(
        "# E17 — compiled/vectorized vs interpreted execution: {ops} ops per shape per scale\n"
    );
    println!(
        "| rows | scan filter (c/i us) | speedup | aggregate (c/i us) | speedup | \
         group by (c/i us) | speedup | update (c/i us) | speedup | batches | rows batched |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|");

    let mut largest: Option<(usize, ScaleResult)> = None;
    for n in [10_000usize, 100_000] {
        if n > max_rows {
            continue;
        }
        let r = bench_scale(n, ops);
        largest = Some((n, r));
    }

    let (n, r) = largest.expect("at least one scale must run");
    let bar = bar_env.or_else(|| (n >= 100_000).then_some(5.0));
    println!(
        "\nlargest scale {n}: scan filter {:.1}x, aggregate {:.1}x, group by {:.1}x, update {:.1}x",
        r.filter_speedup, r.agg_speedup, r.group_speedup, r.update_speedup
    );
    if let Some(bar) = bar {
        assert!(
            r.filter_speedup >= bar,
            "scan-filter speedup {:.2}x below the required {bar:.2}x at {n} rows",
            r.filter_speedup
        );
        assert!(
            r.agg_speedup >= bar,
            "aggregate speedup {:.2}x below the required {bar:.2}x at {n} rows",
            r.agg_speedup
        );
    }
}

struct ScaleResult {
    filter_speedup: f64,
    agg_speedup: f64,
    group_speedup: f64,
    update_speedup: f64,
}

fn bench_scale(n: usize, ops: usize) -> ScaleResult {
    let compiled_server = SqlServer::new();
    let interp_server = SqlServer::with_config(EngineConfig {
        compiled_exec: false,
        ..Default::default()
    });
    let compiled = compiled_server.session("db", "u");
    let interp = interp_server.session("db", "u");
    for s in [&compiled, &interp] {
        s.execute("create table t (k int, v int, g int)").unwrap();
    }
    // No indexes: this experiment measures the full-scan path E13 leaves
    // uncovered. Load in 100-row batches to keep setup sane.
    let mut i = 0usize;
    while i < n {
        let vals: Vec<String> = (i..(i + 100).min(n))
            .map(|j| format!("({j}, {}, {})", (j * 7919 + 13) % 10_000, j % 23))
            .collect();
        let sql = format!("insert t values {}", vals.join(", "));
        compiled.execute(&sql).unwrap();
        interp.execute(&sql).unwrap();
        i += 100;
    }

    // Full-scan filter: selective range predicate, no usable index.
    let (fil_c, fil_i) = both(&compiled, &interp, ops, |i| {
        let lo = (i * 131) % 9_000;
        format!("select k, v from t where v > {lo} and v < {}", lo + 200)
    });

    // Whole-table aggregate behind a filter.
    let (agg_c, agg_i) = both(&compiled, &interp, ops, |i| {
        format!(
            "select count(*), sum(v), min(v), max(v), avg(v) from t where k > {}",
            (i * 977) % n
        )
    });

    // GROUP BY with HAVING over every row.
    let (grp_c, grp_i) = both(&compiled, &interp, ops, |i| {
        format!(
            "select g, count(*), sum(v) from t where v < {} group by g having count(*) > 2",
            3_000 + (i * 59) % 4_000
        )
    });

    // Selective non-indexed UPDATE: full scan to find 1 row of n.
    let (upd_c, upd_i) = both(&compiled, &interp, ops, |i| {
        format!("update t set v = v + 1 where k = {}", (i * 7919 + 13) % n)
    });

    // Final state identical: the updates landed on exactly the same rows.
    for probe in ["select sum(v) from t", "select count(*) from t"] {
        let a = compiled.execute(probe).unwrap();
        let b = interp.execute(probe).unwrap();
        assert_eq!(a.scalar(), b.scalar(), "{probe} diverged at n={n}");
    }
    let cs = compiled_server.server_stats();
    assert!(cs.exec_compiled > 0, "compiled path never engaged at n={n}");
    assert!(cs.batches_vectorized > 0, "no vectorized batches at n={n}");
    assert!(
        cs.plan_lowered_hits > 0,
        "lowered plans were never reused at n={n}"
    );
    let is = interp_server.server_stats();
    assert_eq!(is.exec_compiled, 0, "interpreter twin ran compiled plans");

    let filter_speedup = fil_i.as_secs_f64() / fil_c.as_secs_f64();
    let agg_speedup = agg_i.as_secs_f64() / agg_c.as_secs_f64();
    let group_speedup = grp_i.as_secs_f64() / grp_c.as_secs_f64();
    let update_speedup = upd_i.as_secs_f64() / upd_c.as_secs_f64();
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6 / ops as f64;
    println!(
        "| {n} | {:.0}/{:.0} | {filter_speedup:.1}x | {:.0}/{:.0} | {agg_speedup:.1}x | \
         {:.0}/{:.0} | {group_speedup:.1}x | {:.0}/{:.0} | {update_speedup:.1}x | {} | {} |",
        us(fil_c),
        us(fil_i),
        us(agg_c),
        us(agg_i),
        us(grp_c),
        us(grp_i),
        us(upd_c),
        us(upd_i),
        cs.batches_vectorized,
        cs.rows_batched,
    );
    ScaleResult {
        filter_speedup,
        agg_speedup,
        group_speedup,
        update_speedup,
    }
}

/// Run `ops` statements on both servers, assert identical results, and
/// return (compiled, interpreted) wall time.
fn both(
    compiled: &Session,
    interp: &Session,
    ops: usize,
    stmt: impl Fn(usize) -> String,
) -> (std::time::Duration, std::time::Duration) {
    let stmts: Vec<String> = (0..ops).map(&stmt).collect();
    let t0 = Instant::now();
    let mut c_results = Vec::with_capacity(ops);
    for q in &stmts {
        c_results.push(compiled.execute(q).unwrap());
    }
    let c = t0.elapsed();
    let t1 = Instant::now();
    let mut i_results = Vec::with_capacity(ops);
    for q in &stmts {
        i_results.push(interp.execute(q).unwrap());
    }
    let i = t1.elapsed();
    for (k, (a, b)) in c_results.iter().zip(&i_results).enumerate() {
        assert_eq!(a.results.len(), b.results.len(), "stmt {k}: {}", stmts[k]);
        for (ra, rb) in a.results.iter().zip(&b.results) {
            assert_eq!(ra.columns, rb.columns, "stmt {k}: {}", stmts[k]);
            assert_eq!(ra.rows, rb.rows, "stmt {k}: {}", stmts[k]);
        }
    }
    (c, i)
}

fn env_or(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
