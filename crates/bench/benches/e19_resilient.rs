//! E19 — resilient wire sessions under a reconnect storm. Two identical
//! trigger-firing workloads run through a proxy: a fault-free reference,
//! then a chaos leg where every `E19_KILL_EVERY`-th connection is killed
//! at a seeded mid-stream byte offset. The resilient clients must ride
//! the storm with **exactly-once** EXEC — final table cardinality and
//! rule firings equal to the fault-free totals, every lost response
//! resupplied from the replay window — while steady-state throughput
//! stays within `E19_MIN_RATIO` (default 0.9x) of the clean run.
//!
//! Plain `fn main` (harness = false): fixed workload with correctness
//! assertions, not a statistical micro-benchmark.
//!
//! ```text
//! cargo bench -p eca-bench --bench e19_resilient
//! E19_CLIENTS=4 E19_OPS=50 E19_KILL_EVERY=2 cargo bench -p eca-bench --bench e19_resilient
//! ```

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eca_core::{ActiveService, EcaAgent};
use eca_serve::{
    ChaosListener, ConnPlan, EcaServer, ReconnectPolicy, ServeClient, ServeConfig, ServeHandle,
};
use relsql::SqlServer;

fn main() {
    let clients: usize = env_or("E19_CLIENTS", 8);
    let ops: usize = env_or("E19_OPS", 200);
    let kill_every: u64 = env_or("E19_KILL_EVERY", 2) as u64;
    let min_ratio: f64 = std::env::var("E19_MIN_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.9);
    let total = (clients * ops) as u64;

    println!(
        "# E19 — resilient sessions: {clients} clients x {ops} ops; \
         chaos leg kills every {kill_every}th connection mid-stream\n"
    );

    // Both legs traverse the proxy, so the ratio isolates the cost of the
    // faults (reconnect + ATTACH + replay), not the proxy hop itself.
    let base = run(clients, ops, None);
    println!("## fault-free reference (clean proxy)");
    report(&base, total);
    assert_eq!(base.reconnects, 0, "clean leg must not reconnect");

    let chaos = run(clients, ops, Some(kill_every));
    println!("\n## chaos leg (every {kill_every}th connection killed)");
    report(&chaos, total);
    assert!(chaos.killed > 0, "the chaos plan never fired");
    assert!(chaos.reconnects > 0, "kills must force client reconnects");
    assert!(
        chaos.resumed > 0,
        "reconnects must resurrect sessions via ATTACH"
    );

    let ratio = base.secs / chaos.secs;
    println!(
        "\n## steady-state throughput: {:.0} stmt/s clean vs {:.0} stmt/s chaos ({ratio:.2}x, bar {min_ratio:.2}x)",
        total as f64 / base.secs,
        total as f64 / chaos.secs
    );
    assert!(
        ratio >= min_ratio,
        "chaos throughput ratio {ratio:.2} below {min_ratio:.2} bar"
    );
    println!("\nE19 ok");
}

struct RunOut {
    secs: f64,
    /// Client-side reconnections summed over the fleet.
    reconnects: u64,
    /// Server-side ATTACH resurrections.
    resumed: u64,
    /// Responses resupplied from replay windows.
    replays: u64,
    /// EXECs journaled for idempotency.
    journaled: u64,
    /// Connections the proxy killed.
    killed: u64,
}

fn run(clients: usize, ops: usize, kill_every: Option<u64>) -> RunOut {
    let handle = start_server(clients * 4 + 8);
    let direct = handle.addr();
    // Kill offsets scale with the workload (~32 bytes per stamped insert)
    // so the budget is reachable however small the run: each doomed
    // connection still forwards a couple hundred bytes of useful work
    // before the wire dies somewhere unpredictable.
    let span = (ops as u64 * 16).max(600);
    let proxy = ChaosListener::start(direct, move |idx| match kill_every {
        Some(k) if (idx + 1) % k == 0 => {
            let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ idx.wrapping_mul(0xD134_2543_DE82_EF95);
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Alternate directions: request-side kills force re-sends,
            // response-side kills lose already-computed answers and make
            // the replay window earn its keep.
            if x & 1 == 0 {
                ConnPlan::kill_c2s(200 + x % span)
            } else {
                ConnPlan::kill_s2c(200 + x % span)
            }
        }
        _ => ConnPlan::clean(),
    })
    .expect("chaos proxy");
    let addr = proxy.addr().to_string();

    // Admin rides the direct address: setup and verification must not be
    // subject to the fault plan.
    let (mut admin, _) = ServeClient::connect_as(direct, "db", "admin").unwrap();
    admin.exec("create table t (k int, i int)").unwrap();
    admin.exec("create table audit (n int)").unwrap();
    admin
        .exec("create trigger tr on t for insert event e as insert audit values (1)")
        .unwrap();

    let t0 = Instant::now();
    let mut threads = Vec::new();
    for k in 0..clients {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            let policy = ReconnectPolicy {
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(50),
                max_retries: 500,
                seed: 0xE19 + k as u64,
            };
            let (mut c, _) = loop {
                match ServeClient::connect_resilient(&addr, "db", &format!("u{k}"), policy.clone())
                {
                    Ok(pair) => break pair,
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            };
            for i in 0..ops {
                let r = c.exec(&format!("insert t values ({k}, {i})")).unwrap();
                assert_eq!(r.failed, 0, "client {k} op {i} failed an action");
            }
            let reconnects = c.reconnects();
            let _ = c.quit();
            reconnects
        }));
    }
    let reconnects: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    let secs = t0.elapsed().as_secs_f64();

    // Exactly-once: every insert landed exactly once and fired its rule
    // exactly once, reconnect storm or not.
    let total = (clients * ops) as u64;
    let rows = admin.exec("select * from t").unwrap().rows;
    let firings = admin.exec("select * from audit").unwrap().rows;
    assert_eq!(rows, total, "lost or duplicated DML");
    assert_eq!(firings, total, "lost or duplicated firings");
    let journaled = admin.stat_u64("wire_journaled").unwrap();
    assert!(
        journaled >= total,
        "every stamped EXEC must be journaled ({journaled} < {total})"
    );

    let stats = handle.serve_stats();
    let killed = proxy.counters().killed.load(Ordering::Relaxed);
    admin.quit().unwrap();
    drop(proxy);
    handle.shutdown();
    RunOut {
        secs,
        reconnects,
        resumed: stats.sessions_resumed,
        replays: stats.replays_served,
        journaled,
        killed,
    }
}

fn report(out: &RunOut, total: u64) {
    println!(
        "  {total:>6} inserts in {:6.2} s  ({:8.0} stmt/s)",
        out.secs,
        total as f64 / out.secs
    );
    println!(
        "  {} connection(s) killed, {} client reconnect(s), {} session(s) resumed, \
         {} replay(s) served, {} EXEC(s) journaled",
        out.killed, out.reconnects, out.resumed, out.replays, out.journaled
    );
}

fn env_or(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn start_server(max_sessions: usize) -> ServeHandle {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    let service: Arc<dyn ActiveService> = Arc::new(agent);
    EcaServer::start(
        service,
        ServeConfig::default().with_max_sessions(max_sessions),
    )
    .expect("bind")
}
