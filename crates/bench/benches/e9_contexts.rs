//! E9 — Parameter-context comparison (Figure 17, §5.6): the same event
//! stream detected under RECENT / CHRONICLE / CONTINUOUS / CUMULATIVE, in
//! the raw LED and through the full agent stack. CONTINUOUS pays for
//! per-initiator detections; CUMULATIVE pays in parameter volume; RECENT
//! keeps O(1) state.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use eca_bench::{agent_fixture, detector_with_expr};
use led::ParameterContext;

const INITIATORS: usize = 200;
const ROUNDS: usize = 10;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_contexts");
    g.sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Raw LED: ROUNDS × (INITIATORS p0 then one p1) — a bursty pattern that
    // stresses the pairing policy.
    g.throughput(Throughput::Elements((ROUNDS * (INITIATORS + 1)) as u64));
    for ctx in ParameterContext::ALL {
        g.bench_function(BenchmarkId::new("led_seq_burst", ctx.as_str()), |b| {
            b.iter_batched(
                || detector_with_expr(2, "p0 ; p1", ctx),
                |mut d| {
                    let mut ts = 0i64;
                    let mut fired = 0usize;
                    for _ in 0..ROUNDS {
                        for _ in 0..INITIATORS {
                            ts += 1;
                            d.signal("p0", vec![], ts).unwrap();
                        }
                        ts += 1;
                        fired += d.signal("p1", vec![], ts).unwrap().len();
                    }
                    fired
                },
                BatchSize::PerIteration,
            )
        });
    }

    // Full stack: 20 initiators then a terminator, through SQL and the
    // context tmp-table machinery.
    g.throughput(Throughput::Elements(21));
    for ctx in ParameterContext::ALL {
        g.bench_function(BenchmarkId::new("agent_seq_burst", ctx.as_str()), |b| {
            b.iter_batched(
                || {
                    let (agent, client) = agent_fixture();
                    client.execute("create table term (y int)").unwrap();
                    client.execute("create table seen (x float)").unwrap();
                    client
                        .execute("create trigger t1 on stock for insert event ea as print 'a'")
                        .unwrap();
                    client
                        .execute("create trigger t2 on term for insert event eb as print 'b'")
                        .unwrap();
                    client
                        .execute(&format!(
                            "create trigger t3 event pair = ea ; eb {} \
                             as insert seen select price from stock.inserted",
                            ctx.as_str()
                        ))
                        .unwrap();
                    (agent, client)
                },
                |(_agent, client)| {
                    for i in 0..20 {
                        client
                            .execute(&format!("insert stock values ('S{i}', {i}.0)"))
                            .unwrap();
                    }
                    client.execute("insert term values (1)").unwrap();
                },
                BatchSize::PerIteration,
            )
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
