//! E1 — Transparency overhead (Figures 1-2).
//!
//! The mediated architecture's core claim: clients "do not feel" the agent.
//! Measures plain SQL executed directly against the server vs through the
//! agent (no rules), vs through the agent with an active rule on the table.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use eca_bench::{agent_fixture, insert_workload, passive_server, with_primitive_rule};

const BATCH: usize = 50;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_transparency");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(BATCH as u64));

    let stmts = insert_workload(BATCH, 7);

    g.bench_function("insert_direct_server", |b| {
        b.iter_batched(
            passive_server,
            |(_server, session)| {
                for s in &stmts {
                    session.execute(s).unwrap();
                }
            },
            BatchSize::PerIteration,
        )
    });

    g.bench_function("insert_via_agent_no_rules", |b| {
        b.iter_batched(
            agent_fixture,
            |(_agent, client)| {
                for s in &stmts {
                    client.execute(s).unwrap();
                }
            },
            BatchSize::PerIteration,
        )
    });

    g.bench_function("insert_via_agent_primitive_rule", |b| {
        b.iter_batched(
            || {
                let (agent, client) = agent_fixture();
                with_primitive_rule(&client);
                (agent, client)
            },
            |(_agent, client)| {
                for s in &stmts {
                    client.execute(s).unwrap();
                }
            },
            BatchSize::PerIteration,
        )
    });

    // Read path: a query against a populated table.
    g.bench_function("select_direct_server", |b| {
        let (_server, session) = passive_server();
        for s in &stmts {
            session.execute(s).unwrap();
        }
        b.iter(|| {
            for _ in 0..BATCH {
                session
                    .execute("select count(*) from stock where price > 250")
                    .unwrap();
            }
        })
    });

    g.bench_function("select_via_agent", |b| {
        let (_agent, client) = agent_fixture();
        for s in &stmts {
            client.execute(s).unwrap();
        }
        b.iter(|| {
            for _ in 0..BATCH {
                client
                    .execute("select count(*) from stock where price > 250")
                    .unwrap();
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
