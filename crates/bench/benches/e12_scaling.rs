//! E12 — multi-table scaling under the per-table lock scheduler: the E11
//! workload (90% rule-firing inserts, 10% reads) fanned out over 1, 2, 4
//! and 8 disjoint tables with 8 concurrent clients, against a serialized
//! single-client run of the identical workload. With one table every batch
//! contends on the same lock group and throughput should match E11's flat
//! profile; with 8 disjoint tables the scheduler admits batches in
//! parallel and aggregate throughput must pull ahead of the serialized
//! baseline. Correctness bar is the same as E11 at every point: per-table
//! row counts, rule firings and notification counts exactly equal the
//! serialized run (zero lost, zero doubled), and the statement-plan cache
//! must be hot (the workload has only a handful of statement shapes).
//!
//! Plain `fn main` (harness = false): a fixed workload with correctness
//! assertions, not a statistical micro-benchmark.
//!
//! The ≥ 2x speedup bar is enforced automatically at full scale on hosts
//! with at least 4 CPUs; wall-clock speedup on fewer cores is physically
//! bounded by the hardware, so there the run reports the scheduler's
//! `batches_inflight_peak` (≥ 2 proves batches genuinely overlapped
//! inside the engine) and the speedup is informational. Set
//! `E12_MIN_SPEEDUP` to override the bar either way.
//!
//! ```text
//! cargo bench -p eca-bench --bench e12_scaling
//! E12_CLIENTS=4 E12_STATEMENTS=100 cargo bench -p eca-bench --bench e12_scaling
//! E12_MIN_SPEEDUP=2.0 cargo bench -p eca-bench --bench e12_scaling   # enforce the bar
//! ```

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eca_core::{ActiveService, EcaAgent};
use eca_serve::{EcaServer, ServeClient, ServeConfig, ServeHandle};
use relsql::SqlServer;

struct RunCounts {
    rows: Vec<u64>,
    firings: Vec<u64>,
    notifications: u64,
}

fn main() {
    let clients: usize = env_or("E12_CLIENTS", 8);
    let per_client: usize = env_or("E12_STATEMENTS", 1_000);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The default bar only applies where the hardware can express it:
    // full-scale workload on a machine with real parallelism.
    let default_bar = (cores >= 4 && clients >= 8 && per_client >= 1_000).then_some(2.0);
    let min_speedup: Option<f64> = std::env::var("E12_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .or(default_bar);
    println!(
        "# E12 — per-table lock scheduling: {clients} clients x {per_client} statements, \
         1/2/4/8 disjoint tables, {cores} CPUs\n"
    );
    println!("| tables | serialized stmt/s | concurrent stmt/s | speedup | p50 | p99 | plan-cache hit rate |");
    println!("|---|---|---|---|---|---|---|");

    let mut speedup_at_8 = 0.0;
    for tables in [1usize, 2, 4, 8] {
        // Serialized baseline: the whole workload through one client.
        let (handle, addr) = start_server();
        let (mut c, _) = ServeClient::connect_as(addr, "db", "serial").unwrap();
        setup_schema(&mut c, tables);
        let t0 = Instant::now();
        for k in 0..clients {
            for i in 0..per_client {
                c.exec(&statement(k, i, tables)).unwrap();
            }
        }
        let serial_secs = t0.elapsed().as_secs_f64();
        let serial = counts(&mut c, tables);
        c.quit().unwrap();
        assert!(
            handle.shutdown().quiescent,
            "serialized run must drain clean"
        );

        // Concurrent run: the same workload fanned out over N sessions;
        // client k writes table k % tables, so with `tables == clients`
        // every footprint is disjoint.
        let (handle, addr) = start_server();
        let (mut admin, _) = ServeClient::connect_as(addr, "db", "admin").unwrap();
        setup_schema(&mut admin, tables);
        let t0 = Instant::now();
        let mut threads = Vec::new();
        for k in 0..clients {
            threads.push(std::thread::spawn(move || {
                let (mut c, _) = ServeClient::connect_as(addr, "db", &format!("u{k}")).unwrap();
                let mut latencies = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let t = Instant::now();
                    let r = c.exec(&statement(k, i, tables)).unwrap();
                    latencies.push(t.elapsed());
                    assert_eq!(r.failed, 0, "client {k} statement {i} failed an action");
                }
                c.quit().unwrap();
                latencies
            }));
        }
        let mut latencies: Vec<Duration> = Vec::with_capacity(clients * per_client);
        for t in threads {
            latencies.extend(t.join().unwrap());
        }
        let wall_secs = t0.elapsed().as_secs_f64();

        // Zero lost/doubled work: identical counts to the serialized run.
        let conc = counts(&mut admin, tables);
        assert_eq!(conc.rows, serial.rows, "{tables} tables: lost DML rows");
        assert_eq!(
            conc.firings, serial.firings,
            "{tables} tables: lost firings"
        );
        assert_eq!(
            conc.notifications, serial.notifications,
            "{tables} tables: lost notifications"
        );
        let hits = admin.stat_u64("plan_cache_hits").unwrap();
        let misses = admin.stat_u64("plan_cache_misses").unwrap();
        let parallel = admin.stat_u64("batches_parallel").unwrap();
        let lock_waits = admin.stat_u64("lock_waits").unwrap();
        let inflight_peak = admin.stat_u64("batches_inflight_peak").unwrap();
        admin.quit().unwrap();
        assert!(
            handle.shutdown().quiescent,
            "concurrent run must drain clean"
        );

        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        assert!(
            parallel > 0,
            "{tables} tables: no batch was admitted via the parallel path"
        );

        latencies.sort();
        let total = latencies.len();
        let p = |q: f64| latencies[((total as f64 * q) as usize).min(total - 1)];
        let speedup = serial_secs / wall_secs;
        if tables == 8 {
            speedup_at_8 = speedup;
        }
        println!(
            "| {tables} | {:.0} | {:.0} | {speedup:.2}x | {:.0} us | {:.0} us | {:.1}% |",
            total as f64 / serial_secs,
            total as f64 / wall_secs,
            p(0.50).as_secs_f64() * 1e6,
            p(0.99).as_secs_f64() * 1e6,
            hit_rate * 100.0,
        );
        println!(
            "  (firings {:?} = serialized, notifications {}, parallel batches {parallel}, \
             lock waits {lock_waits}, in-flight peak {inflight_peak})",
            conc.firings, conc.notifications
        );
    }

    if let Some(bar) = min_speedup {
        assert!(
            speedup_at_8 >= bar,
            "8-table speedup {speedup_at_8:.2}x below the required {bar:.2}x"
        );
    }
    println!("\n8-table speedup over serialized: {speedup_at_8:.2}x");
}

fn env_or(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn start_server() -> (ServeHandle, SocketAddr) {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    let service: Arc<dyn ActiveService> = Arc::new(agent);
    let handle = EcaServer::start(service, ServeConfig::default()).expect("bind");
    let addr = handle.addr();
    (handle, addr)
}

fn setup_schema(c: &mut ServeClient, tables: usize) {
    for j in 0..tables {
        c.exec(&format!("create table t{j} (k int, i int)"))
            .unwrap();
        c.exec(&format!("create table audit{j} (n int)")).unwrap();
        c.exec(&format!(
            "create trigger tr{j} on t{j} for insert event e{j} as insert audit{j} values (1)"
        ))
        .unwrap();
    }
}

/// Statement `i` for client `k`: inserts firing the table's rule, with a
/// read mixed in every 10th statement — E11's mix, targeted at one of the
/// `tables` disjoint tables.
fn statement(k: usize, i: usize, tables: usize) -> String {
    let j = k % tables;
    if i % 10 == 9 {
        format!("select i from t{j} where k = {k} and i = {}", i - 1)
    } else {
        format!("insert t{j} values ({k}, {i})")
    }
}

fn counts(c: &mut ServeClient, tables: usize) -> RunCounts {
    let mut rows = Vec::new();
    let mut firings = Vec::new();
    for j in 0..tables {
        rows.push(c.exec(&format!("select * from t{j}")).unwrap().rows);
        firings.push(c.exec(&format!("select * from audit{j}")).unwrap().rows);
    }
    RunCounts {
        rows,
        firings,
        notifications: c.stat_u64("notifications").unwrap(),
    }
}
