//! E2 — Rule-creation cost (Figure 3's seven-step control flow).
//!
//! Creating an ECA rule touches every module: filter, parser, name
//! expansion, codegen, four SQL installs, persistence and LED
//! registration. Compared against a native trigger definition, which is a
//! single server call.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eca_bench::agent_fixture;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_rule_creation");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    static N: AtomicUsize = AtomicUsize::new(0);

    // Baseline: native trigger definition (pass-through, one server call).
    g.bench_function("native_trigger", |b| {
        let (_agent, client) = agent_fixture();
        b.iter(|| {
            // Same name every time: Sybase silently overwrites — that is
            // the restriction, and it makes the bench self-cleaning.
            client
                .execute("create trigger nat on stock for insert as print 'x'")
                .unwrap();
        })
    });

    // Primitive ECA rule: event + shadow tables + proc + native trigger +
    // persistence + LED registration.
    g.bench_function("primitive_eca_rule", |b| {
        b.iter_batched(
            agent_fixture,
            |(_agent, client)| {
                let i = N.fetch_add(1, Ordering::Relaxed);
                client
                    .execute(&format!(
                        "create trigger tp{i} on stock for insert event ep{i} as print 'x'"
                    ))
                    .unwrap();
            },
            BatchSize::PerIteration,
        )
    });

    // Additional trigger on an existing event (Figure 10 path): no event
    // setup, but native-trigger regeneration.
    g.bench_function("trigger_on_existing_event", |b| {
        b.iter_batched(
            || {
                let f = agent_fixture();
                f.1.execute("create trigger t0 on stock for insert event ev as print 'x'")
                    .unwrap();
                f
            },
            |(_agent, client)| {
                let i = N.fetch_add(1, Ordering::Relaxed);
                client
                    .execute(&format!("create trigger tx{i} event ev as print 'x'"))
                    .unwrap();
            },
            BatchSize::PerIteration,
        )
    });

    // Composite ECA rule (Figure 12 path): Snoop parse + LED graph build +
    // context-processing proc.
    g.bench_function("composite_eca_rule", |b| {
        b.iter_batched(
            || {
                let f = agent_fixture();
                f.1.execute("create trigger t1 on stock for insert event addStk as print 'a'")
                    .unwrap();
                f.1.execute("create trigger t2 on stock for delete event delStk as print 'd'")
                    .unwrap();
                f
            },
            |(_agent, client)| {
                let i = N.fetch_add(1, Ordering::Relaxed);
                client
                    .execute(&format!(
                        "create trigger tc{i} event ec{i} = delStk ^ addStk RECENT \
                         as print 'composite'"
                    ))
                    .unwrap();
            },
            BatchSize::PerIteration,
        )
    });

    // Drop path.
    g.bench_function("drop_trigger", |b| {
        b.iter_batched(
            || {
                let f = agent_fixture();
                f.1.execute("create trigger td on stock for insert event ed as print 'x'")
                    .unwrap();
                f
            },
            |(_agent, client)| {
                client.execute("drop trigger td").unwrap();
            },
            BatchSize::PerIteration,
        )
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
