//! E10 — The §1 rejected alternatives as baselines: polling and embedded
//! situation checks vs the ECA agent, on an identical monitoring workload.
//!
//! Time is only half the story — the experiments binary reports the wasted
//! queries and the missed/collapsed detections; here we measure the cost
//! of achieving detection per approach.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use eca_bench::{agent_fixture, insert_workload, passive_server};
use eca_core::{EmbeddedCheckClient, PollingMonitor, Situation};

const EVENTS: usize = 50;

fn situation() -> Situation {
    Situation {
        name: "stock-activity".into(),
        probe_sql: "select count(*) from stock".into(),
        action_sql: "insert alerts values (1)".into(),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_baselines");
    g.sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(EVENTS as u64));

    let stmts = insert_workload(EVENTS, 23);

    // ECA agent: detection is push-based, action per event.
    g.bench_function("eca_agent", |b| {
        b.iter_batched(
            || {
                let (agent, client) = agent_fixture();
                client.execute("create table alerts (n int)").unwrap();
                client
                    .execute(
                        "create trigger tr on stock for insert event e \
                         as insert alerts values (1)",
                    )
                    .unwrap();
                (agent, client)
            },
            |(_agent, client)| {
                for s in &stmts {
                    client.execute(s).unwrap();
                }
            },
            BatchSize::PerIteration,
        )
    });

    // Polling at different duty cycles: poll every k application statements.
    for poll_every in [1usize, 10, 50] {
        g.bench_with_input(
            BenchmarkId::new("polling_every", poll_every),
            &poll_every,
            |b, &poll_every| {
                b.iter_batched(
                    || {
                        let (server, session) = passive_server();
                        session.execute("create table alerts (n int)").unwrap();
                        let monitor = PollingMonitor::new(
                            server.session("benchdb", "monitor"),
                            vec![situation()],
                        );
                        (server, session, monitor)
                    },
                    |(_server, session, mut monitor)| {
                        monitor.poll().unwrap(); // baseline observation
                        for (i, s) in stmts.iter().enumerate() {
                            session.execute(s).unwrap();
                            if (i + 1) % poll_every == 0 {
                                monitor.poll().unwrap();
                            }
                        }
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }

    // Embedded situation checks: the application probes after every statement.
    g.bench_function("embedded_checks", |b| {
        b.iter_batched(
            || {
                let (server, session) = passive_server();
                session.execute("create table alerts (n int)").unwrap();
                let _ = session;
                EmbeddedCheckClient::new(server.session("benchdb", "bench"), vec![situation()])
            },
            |mut client| {
                for s in &stmts {
                    client.execute(s).unwrap();
                }
            },
            BatchSize::PerIteration,
        )
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
