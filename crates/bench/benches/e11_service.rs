//! E11 — multi-client service throughput: 8 concurrent clients × 1,000
//! statements each over the `eca_serve` TCP layer, with a serialized
//! single-client run as the correctness baseline. Reports p50/p99
//! request latency and aggregate throughput, and verifies **zero lost
//! firings**: the concurrent run must produce exactly the same number of
//! rule firings (audit rows, notifications) as the serialized run.
//!
//! Plain `fn main` (harness = false): the experiment is a fixed workload
//! with correctness assertions, not a statistical micro-benchmark.
//!
//! ```text
//! cargo bench -p eca-bench --bench e11_service
//! E11_CLIENTS=4 E11_STATEMENTS=100 cargo bench -p eca-bench --bench e11_service
//! ```

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eca_core::{ActiveService, EcaAgent};
use eca_serve::{EcaServer, ServeClient, ServeConfig, ServeHandle};
use relsql::SqlServer;

fn main() {
    let clients: usize = env_or("E11_CLIENTS", 8);
    let per_client: usize = env_or("E11_STATEMENTS", 1_000);
    println!("# E11 — service layer: {clients} clients x {per_client} statements over TCP\n");

    // Serialized baseline: the same total workload through one client.
    let (handle, addr) = start_server();
    let t0 = Instant::now();
    let (mut c, _) = ServeClient::connect_as(addr, "db", "serial").unwrap();
    setup_schema(&mut c);
    for k in 0..clients {
        for i in 0..per_client {
            c.exec(&statement(k, i)).unwrap();
        }
    }
    let serial_secs = t0.elapsed().as_secs_f64();
    let serial_firings = c.exec("select * from audit").unwrap().rows;
    let serial_rows = c.exec("select * from t").unwrap().rows;
    let serial_notifications = c.stat_u64("notifications").unwrap();
    c.quit().unwrap();
    let report = handle.shutdown();
    assert!(report.quiescent, "serialized run must drain clean");
    println!("## serialized (1 client)");
    println!(
        "  {:>7} statements in {serial_secs:7.2} s  ({:8.0} stmt/s)",
        clients * per_client,
        (clients * per_client) as f64 / serial_secs
    );
    println!("  firings: {serial_firings}, notifications: {serial_notifications}\n");

    // Concurrent run: same workload fanned out over N sessions.
    let (handle, addr) = start_server();
    let (mut admin, _) = ServeClient::connect_as(addr, "db", "admin").unwrap();
    setup_schema(&mut admin);
    let t0 = Instant::now();
    let mut threads = Vec::new();
    for k in 0..clients {
        threads.push(std::thread::spawn(move || {
            let (mut c, _) = ServeClient::connect_as(addr, "db", &format!("u{k}")).unwrap();
            let mut latencies = Vec::with_capacity(per_client);
            for i in 0..per_client {
                let t = Instant::now();
                let r = c.exec(&statement(k, i)).unwrap();
                latencies.push(t.elapsed());
                assert_eq!(r.failed, 0, "client {k} statement {i} failed an action");
            }
            c.quit().unwrap();
            latencies
        }));
    }
    let mut latencies: Vec<Duration> = Vec::with_capacity(clients * per_client);
    for t in threads {
        latencies.extend(t.join().unwrap());
    }
    let wall_secs = t0.elapsed().as_secs_f64();

    // Zero lost firings: identical counts to the serialized run.
    let firings = admin.exec("select * from audit").unwrap().rows;
    let rows = admin.exec("select * from t").unwrap().rows;
    let notifications = admin.stat_u64("notifications").unwrap();
    assert_eq!(rows, serial_rows, "lost DML under concurrency");
    assert_eq!(firings, serial_firings, "lost firings under concurrency");
    assert_eq!(
        notifications, serial_notifications,
        "lost notifications under concurrency"
    );
    let stats = handle.serve_stats();
    admin.quit().unwrap();
    let report = handle.shutdown();
    assert!(report.quiescent, "concurrent run must drain clean");

    latencies.sort();
    let total = latencies.len();
    let p = |q: f64| latencies[((total as f64 * q) as usize).min(total - 1)];
    println!("## concurrent ({clients} clients)");
    println!(
        "  {total:>7} statements in {wall_secs:7.2} s  ({:8.0} stmt/s, {:.2}x serialized)",
        total as f64 / wall_secs,
        serial_secs / wall_secs
    );
    println!(
        "  latency p50 {:7.1} us   p99 {:7.1} us   max {:7.1} us",
        p(0.50).as_secs_f64() * 1e6,
        p(0.99).as_secs_f64() * 1e6,
        latencies[total - 1].as_secs_f64() * 1e6
    );
    println!("  firings: {firings} (= serialized: zero lost), notifications: {notifications}");
    println!(
        "  serve: {} sessions, {} requests, {} errors",
        stats.sessions_opened, stats.requests, stats.errors
    );
}

fn env_or(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn start_server() -> (ServeHandle, SocketAddr) {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    let service: Arc<dyn ActiveService> = Arc::new(agent);
    let handle = EcaServer::start(service, ServeConfig::default()).expect("bind");
    let addr = handle.addr();
    (handle, addr)
}

fn setup_schema(c: &mut ServeClient) {
    c.exec("create table t (k int, i int)").unwrap();
    c.exec("create table audit (n int)").unwrap();
    c.exec("create trigger tr on t for insert event e as insert audit values (1)")
        .unwrap();
}

/// Statement `i` for client `k`: inserts (which fire the rule) with a read
/// mixed in every 10th statement.
fn statement(k: usize, i: usize) -> String {
    if i % 10 == 9 {
        format!("select i from t where k = {k} and i = {}", i - 1)
    } else {
        format!("insert t values ({k}, {i})")
    }
}
