//! E4 — Persistent Manager recovery (Figures 5–8) and E14 — cold-start
//! recovery from disk.
//!
//! Part 1 (E14, plain timing with assertions): recovery time vs WAL
//! length, with and without a checkpoint. A cold open replays the whole
//! WAL when no checkpoint was taken; after a checkpoint it must replay
//! only the suffix written since — that bound is asserted, not just
//! measured, so the reduced-scale CI smoke enforces it.
//!
//! Part 2 (E4, criterion): on startup the agent restores every ECA rule
//! from the system tables: re-registers primitives, re-parses composite
//! expressions, rebuilds the LED graph and re-attaches rules. Measured
//! against the number of persisted rules.
//!
//! ```text
//! cargo bench -p eca-bench --bench e4_recovery
//! E14_RECORDS=1000 E14_ONLY=1 cargo bench -p eca-bench --bench e4_recovery   # CI smoke
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use eca_bench::server_with_rules;
use eca_core::EcaAgent;
use relsql::{
    DurabilityConfig, EngineConfig, FaultyStorage, FsyncPolicy, SqlServer, Storage, Value,
};

fn no_sync() -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::Off,
        checkpoint_bytes: 0,
    }
}

fn open(storage: &Arc<FaultyStorage>) -> Arc<SqlServer> {
    let storage: Arc<dyn Storage> = storage.clone();
    SqlServer::open_with_storage(storage, no_sync(), EngineConfig::default()).unwrap()
}

/// Build a durable server, write `n` mutating batches (1 WAL record each
/// after the schema batch), optionally checkpoint and append `suffix`
/// more — return the storage holding the surviving WAL/snapshot bytes.
fn seeded_storage(n: usize, checkpoint_then_suffix: Option<usize>) -> Arc<FaultyStorage> {
    let storage = FaultyStorage::new();
    let server = open(&storage);
    let session = server.session("db", "u");
    session.execute("create table t (k int, v int)").unwrap();
    for i in 0..n {
        session
            .execute(&format!("insert t values ({i}, {})", i * 7 % 50))
            .unwrap();
    }
    if let Some(suffix) = checkpoint_then_suffix {
        server.checkpoint().unwrap();
        for i in 0..suffix {
            session
                .execute(&format!("insert t values ({}, 1)", n + i))
                .unwrap();
        }
    }
    storage
}

/// Cold-open the surviving bytes; return (open time ms, records replayed,
/// recovered row count).
fn cold_open(storage: &Arc<FaultyStorage>) -> (f64, u64, i64) {
    let t0 = Instant::now();
    let server = open(storage);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let replayed = server.server_stats().wal_records_replayed;
    let r = server
        .session("db", "u")
        .execute("select count(*) from t")
        .unwrap();
    let rows = match r.scalar() {
        Some(Value::Int(n)) => *n,
        other => panic!("count(*) returned {other:?}"),
    };
    (ms, replayed, rows)
}

fn e14_cold_start() {
    let max_records = env_or("E14_RECORDS", 5_000);
    let suffix = env_or("E14_SUFFIX", 20);
    println!("# E14 — cold-start recovery: replay time vs WAL length, with/without checkpoint\n");
    println!(
        "| WAL records | full replay open (ms) | replayed | checkpointed open (ms) | replayed |"
    );
    println!("|---|---|---|---|---|");

    for n in [200usize, 1_000, 5_000] {
        if n > max_records {
            continue;
        }
        // No checkpoint: a cold open replays every record.
        let storage = seeded_storage(n, None);
        let (full_ms, full_replayed, rows) = cold_open(&storage);
        assert_eq!(full_replayed as usize, n + 1, "schema batch + n inserts");
        assert_eq!(rows as usize, n, "all committed rows recovered");

        // Checkpointed: the snapshot covers the first n inserts, so the
        // cold open replays exactly the `suffix` records written since.
        let storage = seeded_storage(n, Some(suffix));
        let (ckpt_ms, ckpt_replayed, rows) = cold_open(&storage);
        assert_eq!(
            ckpt_replayed as usize, suffix,
            "a checkpointed restart must replay only the bounded WAL suffix"
        );
        assert_eq!(rows as usize, n + suffix);

        println!("| {n} | {full_ms:.2} | {full_replayed} | {ckpt_ms:.2} | {ckpt_replayed} |");
    }
    println!("\ncheckpoint bound holds: replayed == suffix ({suffix}) at every scale\n");
}

fn env_or(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_recovery");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for n in [10usize, 50, 100, 250] {
        let server = server_with_rules(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("restore_rules", n), &n, |b, &n| {
            b.iter(|| {
                let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
                assert_eq!(agent.trigger_names().len(), n);
                agent
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    e14_cold_start();
    if std::env::var("E14_ONLY").is_err() {
        benches();
    }
}
