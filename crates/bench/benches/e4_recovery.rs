//! E4 — Persistent Manager recovery (Figures 5–8).
//!
//! On startup the agent restores every ECA rule from the system tables:
//! re-registers primitives, re-parses composite expressions, rebuilds the
//! LED graph and re-attaches rules. Measured against the number of
//! persisted rules.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eca_bench::server_with_rules;
use eca_core::EcaAgent;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_recovery");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for n in [10usize, 50, 100, 250] {
        let server = server_with_rules(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("restore_rules", n), &n, |b, &n| {
            b.iter(|| {
                let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
                assert_eq!(agent.trigger_names().len(), n);
                agent
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
