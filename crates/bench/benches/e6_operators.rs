//! E6 — Composite-event detection throughput per Snoop operator
//! (Figures 12–14): raw LED signalling rate for each operator on the same
//! event stream, plus scaling with stream length.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use eca_bench::{detector_with_expr, event_stream};
use led::ParameterContext;

const STREAM: usize = 1_000;

fn drive(d: &mut led::Detector, stream: &[(String, i64)]) -> usize {
    let mut fired = 0;
    let mut last_ts = 0;
    for (ev, ts) in stream {
        fired += d.signal(ev, vec![], *ts).unwrap().len();
        last_ts = *ts;
    }
    // Flush pending timers over a bounded horizon — a still-open periodic
    // window would otherwise fire forever.
    fired += d.advance_to(last_ts + 60_000_000).len();
    fired
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_operators");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(STREAM as u64));

    let stream3 = event_stream(3, STREAM, 11);

    let operators: &[(&str, &str)] = &[
        ("OR", "p0 | p1"),
        ("AND", "p0 ^ p1"),
        ("SEQ", "p0 ; p1"),
        ("NOT", "NOT(p0, p1, p2)"),
        ("A", "A(p0, p1, p2)"),
        ("A_star", "A*(p0, p1, p2)"),
        ("PLUS", "p0 PLUS [1 sec]"),
        ("P", "P(p0, [10 sec], p2)"),
        ("P_star", "P*(p0, [10 sec], p2)"),
    ];

    for (name, expr) in operators {
        g.bench_function(BenchmarkId::new("operator", name), |b| {
            b.iter_batched(
                || detector_with_expr(3, expr, ParameterContext::Recent),
                |mut d| drive(&mut d, &stream3),
                BatchSize::PerIteration,
            )
        });
    }

    // Scaling: AND in chronicle context over growing streams.
    for n in [100usize, 1_000, 10_000] {
        let stream = event_stream(2, n, 13);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("and_chronicle_scale", n), &n, |b, _| {
            b.iter_batched(
                || detector_with_expr(2, "p0 ^ p1", ParameterContext::Chronicle),
                |mut d| drive(&mut d, &stream),
                BatchSize::PerIteration,
            )
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
