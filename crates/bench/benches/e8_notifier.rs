//! E8 — Event Notifier throughput (Figure 15) and loss sensitivity (§6's
//! socket-reliability remark): datagram encode/decode rate, channel
//! transport rate, and end-to-end detections under simulated UDP loss.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use eca_core::notifier::decode;
use eca_core::{AgentConfig, EcaAgent};
use relsql::notify::{drain, ChannelSink, Datagram, NotificationSink};
use relsql::SqlServer;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_notifier");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    const N: usize = 1_000;
    g.throughput(Throughput::Elements(N as u64));

    // Decode rate for well-formed payloads.
    let datagrams: Vec<Datagram> = (0..N)
        .map(|i| Datagram {
            host: "127.0.0.1".into(),
            port: 10006,
            payload: format!("sharma stock insert begin sentineldb.sharma.addStk {i}"),
            seq: i as u64,
        })
        .collect();
    g.bench_function("decode_wellformed", |b| {
        b.iter(|| {
            let mut ok = 0;
            for d in &datagrams {
                if decode(d).is_some() {
                    ok += 1;
                }
            }
            assert_eq!(ok, N);
        })
    });

    // Channel transport: send + drain N datagrams.
    g.bench_function("channel_roundtrip", |b| {
        b.iter_batched(
            ChannelSink::new,
            |(sink, rx)| {
                for d in &datagrams {
                    sink.send(d.clone());
                }
                assert_eq!(drain(&rx).len(), N);
            },
            BatchSize::PerIteration,
        )
    });

    // End-to-end under loss: 100 inserts through the agent at varying drop
    // probability; throughput counts attempted events.
    for loss_pct in [0u32, 10, 50] {
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(
            BenchmarkId::new("e2e_under_loss_pct", loss_pct),
            &loss_pct,
            |b, &loss_pct| {
                b.iter_batched(
                    || {
                        let server = SqlServer::new();
                        let agent = EcaAgent::new(
                            Arc::clone(&server),
                            AgentConfig::builder()
                                .drop_probability(loss_pct as f64 / 100.0, 17)
                                .exactly_once(false)
                                .build(),
                        )
                        .unwrap();
                        let client = agent.client("db", "u");
                        client.execute("create table t (a int)").unwrap();
                        client
                            .execute("create trigger tr on t for insert event e as print 'x'")
                            .unwrap();
                        (agent, client)
                    },
                    |(_agent, client)| {
                        for i in 0..100 {
                            client.execute(&format!("insert t values ({i})")).unwrap();
                        }
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
