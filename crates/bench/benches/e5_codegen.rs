//! E5 — Code generation (Figures 9–11): the pure-CPU cost of the ECA
//! Parser and the SQL generators, separated from server installation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use eca_core::codegen::{led_action_proc, native_trigger_sql, rewrite_context_refs, ContextSource};
use eca_core::parse_eca;
use eca_core::registry::PrimitiveEventInfo;
use led::ParameterContext;
use relsql::ast::TriggerOp;

fn info() -> PrimitiveEventInfo {
    PrimitiveEventInfo {
        name: "sentineldb.sharma.addStk".into(),
        table: "sentineldb.sharma.stock".into(),
        operation: TriggerOp::Update,
        shadow_inserted: "sentineldb.sharma.addStk_inserted".into(),
        shadow_deleted: "sentineldb.sharma.addStk_deleted".into(),
        version_table: "sentineldb.sharma.addStk_ver".into(),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_codegen");
    g.sample_size(50)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    g.bench_function("parse_eca_primitive", |b| {
        b.iter(|| {
            parse_eca(
                "create trigger t_addStk on stock for insert event addStk \
                 as print 'x' select * from stock",
            )
            .unwrap()
        })
    });

    g.bench_function("parse_eca_composite", |b| {
        b.iter(|| {
            parse_eca(
                "create trigger t event e = NOT(a, b, c) ; (d ^ f) PLUS [5 sec] \
                 CHRONICLE 7 as print 'x'",
            )
            .unwrap()
        })
    });

    g.bench_function("snoop_parse_deep", |b| {
        b.iter(|| snoop::parse("a ; b ; c ^ d | A(e, f, g) ; P(h, [1 sec], i)").unwrap())
    });

    let i = info();
    let procs: Vec<String> = (0..4).map(|k| format!("db.u.p{k}__Proc")).collect();
    g.bench_function("native_trigger_sql", |b| {
        b.iter(|| native_trigger_sql(&i, "stock", "sharma", "128.227.205.215", 10006, &procs))
    });

    let action = "select symbol, price from stock.inserted \
                  insert audit select symbol from stock.deleted where price > 100";
    g.bench_function("rewrite_context_refs", |b| {
        b.iter(|| rewrite_context_refs(action, |t| format!("sentineldb.sharma.{t}")))
    });

    let sources: Vec<ContextSource> = (0..3)
        .map(|k| ContextSource {
            tmp: format!("db.u.t{k}_inserted_tmp"),
            shadow: format!("db.u.e{k}_inserted"),
        })
        .collect();
    g.bench_function("led_action_proc", |b| {
        b.iter(|| led_action_proc("db.u.t__Proc", ParameterContext::Recent, &sources, action))
    });

    // The generated SQL must itself be parseable — include parse cost for
    // the full Figure 11 body.
    g.bench_function("parse_generated_trigger", |b| {
        let sql = native_trigger_sql(&i, "stock", "sharma", "h", 1, &procs);
        b.iter(|| relsql::parser::parse_script(&sql).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
