//! E16 — lock-free MVCC snapshot reads under a concurrent writer: 32
//! reader clients hammer point selects against one table while a single
//! writer continuously inserts into the *same* table. Under the old
//! footprint scheduler every read serialized against the writer's table
//! lock; with epoch-pinned snapshots the readers never touch the lock
//! manager, so aggregate read throughput must stay close to a writer-free
//! baseline of the identical read workload.
//!
//! Plain `fn main` (harness = false): a fixed workload with correctness
//! assertions, not a statistical micro-benchmark.
//!
//! The ≥ 0.8x throughput-retention bar is enforced automatically at full
//! scale on hosts with at least 4 CPUs; on fewer cores the writer steals
//! the readers' only CPU and the ratio is informational — there the run
//! instead proves the mechanism directly: reader `lock_waits == 0` and
//! `snapshot_reads` accounts for every read batch (both asserted
//! unconditionally). Set `E16_MIN_RATIO` to override the bar either way.
//!
//! ```text
//! cargo bench -p eca-bench --bench e16_mvcc
//! E16_READERS=8 E16_STATEMENTS=100 cargo bench -p eca-bench --bench e16_mvcc
//! E16_MIN_RATIO=0.8 cargo bench -p eca-bench --bench e16_mvcc   # enforce the bar
//! ```

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eca_core::{ActiveService, EcaAgent};
use eca_serve::{EcaServer, ServeClient, ServeConfig, ServeHandle};
use relsql::SqlServer;

const SEED_ROWS: usize = 256;

fn main() {
    let readers: usize = env_or("E16_READERS", 32);
    let per_reader: usize = env_or("E16_STATEMENTS", 250);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The bar only applies where the hardware can express it: a writer
    // thread on a saturated single core halves everyone's throughput no
    // matter how the scheduler behaves.
    let default_bar = (cores >= 4 && readers >= 32 && per_reader >= 250).then_some(0.8);
    let min_ratio: Option<f64> = std::env::var("E16_MIN_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .or(default_bar);
    println!(
        "# E16 — MVCC snapshot reads: {readers} readers x {per_reader} selects, \
         1 writer on the same table, {cores} CPUs\n"
    );
    println!("| phase | read stmt/s | p50 | p99 | snapshot reads | lock waits |");
    println!("|---|---|---|---|---|---|");

    // Phase A — writer-free baseline of the identical read workload.
    let (base_rate, base_stats) = run_phase(readers, per_reader, false);
    // Phase B — same readers with a writer mutating the table they read.
    let (cont_rate, cont_stats) = run_phase(readers, per_reader, true);

    let ratio = cont_rate.rate / base_rate.rate;
    println!(
        "\nwriter batches during contended phase: {}",
        cont_stats.writer_batches
    );
    println!("read throughput retained under the writer: {ratio:.2}x of baseline");

    // The mechanism, asserted unconditionally: every read batch in both
    // phases was served from a snapshot, and no reader ever blocked on a
    // table lock (the writer is single-threaded, so any lock wait at all
    // would mean a reader touched the lock manager).
    for (name, s) in [("baseline", &base_stats), ("contended", &cont_stats)] {
        assert!(
            s.snapshot_reads >= (readers * per_reader) as u64,
            "{name}: only {} snapshot reads for {} read batches",
            s.snapshot_reads,
            readers * per_reader
        );
        assert_eq!(s.lock_waits, 0, "{name}: a read batch waited on a lock");
    }
    assert!(
        cont_stats.writer_batches > 0,
        "writer made no progress — readers starved it out"
    );

    if let Some(bar) = min_ratio {
        assert!(
            ratio >= bar,
            "contended read throughput {ratio:.2}x of baseline, below the required {bar:.2}x"
        );
    }
}

struct PhaseRate {
    rate: f64,
}

struct PhaseStats {
    snapshot_reads: u64,
    lock_waits: u64,
    writer_batches: u64,
}

fn run_phase(readers: usize, per_reader: usize, with_writer: bool) -> (PhaseRate, PhaseStats) {
    let (handle, addr) = start_server();
    let (mut admin, _) = ServeClient::connect_as(addr, "db", "admin").unwrap();
    admin.exec("create table items (k int, v int)").unwrap();
    for k in 0..SEED_ROWS {
        admin
            .exec(&format!("insert items values ({k}, {k})"))
            .unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let writer = with_writer.then(|| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let (mut c, _) = ServeClient::connect_as(addr, "db", "writer").unwrap();
            let mut batches = 0u64;
            let mut k = SEED_ROWS;
            while !stop.load(Ordering::Relaxed) {
                c.exec(&format!("insert items values ({k}, {k})")).unwrap();
                k += 1;
                batches += 1;
            }
            c.quit().unwrap();
            batches
        })
    });

    let t0 = Instant::now();
    let mut threads = Vec::new();
    for r in 0..readers {
        threads.push(std::thread::spawn(move || {
            let (mut c, _) = ServeClient::connect_as(addr, "db", &format!("r{r}")).unwrap();
            let mut latencies = Vec::with_capacity(per_reader);
            for i in 0..per_reader {
                let k = (r * per_reader + i) % SEED_ROWS;
                let t = Instant::now();
                let resp = c
                    .exec(&format!("select v from items where k = {k}"))
                    .unwrap();
                latencies.push(t.elapsed());
                assert!(resp.rows >= 1, "reader {r}: seeded row {k} missing");
            }
            c.quit().unwrap();
            latencies
        }));
    }
    let mut latencies: Vec<Duration> = Vec::with_capacity(readers * per_reader);
    for t in threads {
        latencies.extend(t.join().unwrap());
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let writer_batches = writer.map(|w| w.join().unwrap()).unwrap_or(0);

    let snapshot_reads = admin.stat_u64("snapshot_reads").unwrap();
    let lock_waits = admin.stat_u64("lock_waits").unwrap();
    admin.quit().unwrap();
    assert!(handle.shutdown().quiescent, "run must drain clean");

    latencies.sort();
    let total = latencies.len();
    let p = |q: f64| latencies[((total as f64 * q) as usize).min(total - 1)];
    let rate = total as f64 / wall_secs;
    println!(
        "| {} | {rate:.0} | {:.0} us | {:.0} us | {snapshot_reads} | {lock_waits} |",
        if with_writer {
            "contended (1 writer)"
        } else {
            "baseline (no writer)"
        },
        p(0.50).as_secs_f64() * 1e6,
        p(0.99).as_secs_f64() * 1e6,
    );
    (
        PhaseRate { rate },
        PhaseStats {
            snapshot_reads,
            lock_waits,
            writer_batches,
        },
    )
}

fn env_or(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn start_server() -> (ServeHandle, SocketAddr) {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    let service: Arc<dyn ActiveService> = Arc::new(agent);
    let handle = EcaServer::start(service, ServeConfig::default()).expect("bind");
    let addr = handle.addr();
    (handle, addr)
}
