//! E7 — Action Handler scalability and coupling-mode ablation
//! (Figure 16): k rules firing on one event, dispatched IMMEDIATE
//! (inline), DEFERRED (queued to commit) or DETACHED (thread per action,
//! as the paper's SybaseAction).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use eca_bench::agent_fixture;
use eca_core::{EcaAgent, EcaClient};

/// Fixture with `k` LED-dispatched rules (one composite each) on the same
/// primitive event, in the given coupling mode.
fn fixture(k: usize, coupling: &str) -> (EcaAgent, EcaClient) {
    let (agent, client) = agent_fixture();
    client
        .execute("create trigger t0 on stock for insert event e as print 'x'")
        .unwrap();
    client.execute("create table sink_rows (n int)").unwrap();
    for i in 0..k {
        client
            .execute(&format!(
                "create trigger tr{i} event c{i} = e {coupling} \
                 as insert sink_rows values ({i})"
            ))
            .unwrap();
    }
    (agent, client)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_actions");
    g.sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for k in [1usize, 4, 16] {
        g.throughput(Throughput::Elements(k as u64));

        g.bench_with_input(BenchmarkId::new("immediate", k), &k, |b, &k| {
            b.iter_batched(
                || fixture(k, "IMMEDIATE"),
                |(_agent, client)| {
                    let resp = client.execute("insert stock values ('A', 1.0)").unwrap();
                    assert_eq!(resp.actions.len(), k);
                },
                BatchSize::PerIteration,
            )
        });

        g.bench_with_input(BenchmarkId::new("detached", k), &k, |b, &k| {
            b.iter_batched(
                || fixture(k, "DETACHED"),
                |(agent, client)| {
                    client.execute("insert stock values ('A', 1.0)").unwrap();
                    let outcomes = agent.wait_detached();
                    assert_eq!(outcomes.len(), k);
                },
                BatchSize::PerIteration,
            )
        });

        g.bench_with_input(BenchmarkId::new("deferred_plus_flush", k), &k, |b, &k| {
            b.iter_batched(
                || fixture(k, "DEFERRED"),
                |(agent, client)| {
                    client.execute("insert stock values ('A', 1.0)").unwrap();
                    let resp = agent.flush_deferred().unwrap();
                    assert_eq!(resp.actions.len(), k);
                },
                BatchSize::PerIteration,
            )
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
