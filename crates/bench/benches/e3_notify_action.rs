//! E3 — Notification-to-action pipeline (Figure 4's six-step flow).
//!
//! End-to-end cost of one DML statement that raises an event, is notified
//! over the datagram channel, detected in the LED, and answered with a
//! stored-procedure action — broken down by how much of the pipeline is
//! engaged.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eca_bench::agent_fixture;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_notify_action");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Stage 0: insert with no event at all.
    g.bench_function("insert_no_event", |b| {
        b.iter_batched(
            agent_fixture,
            |(_agent, client)| {
                client.execute("insert stock values ('A', 1.0)").unwrap();
            },
            BatchSize::PerIteration,
        )
    });

    // Stage 1: event raised + notification decoded + LED signal, but no
    // LED rule (the action runs natively in-server).
    g.bench_function("insert_native_immediate_action", |b| {
        b.iter_batched(
            || {
                let f = agent_fixture();
                f.1.execute("create trigger t on stock for insert event e as print 'x'")
                    .unwrap();
                f
            },
            |(_agent, client)| {
                client.execute("insert stock values ('A', 1.0)").unwrap();
            },
            BatchSize::PerIteration,
        )
    });

    // Stage 2: full LED round trip — a composite OR fires on every insert,
    // the Action Handler refreshes sysContext and executes the proc.
    g.bench_function("insert_led_composite_action", |b| {
        b.iter_batched(
            || {
                let f = agent_fixture();
                f.1.execute("create trigger t on stock for insert event e as print 'x'")
                    .unwrap();
                f.1.execute(
                    "create trigger tc event anyE = e as \
                     select count(*) from stock.inserted",
                )
                .unwrap();
                f
            },
            |(_agent, client)| {
                let resp = client.execute("insert stock values ('A', 1.0)").unwrap();
                assert!(!resp.actions.is_empty());
            },
            BatchSize::PerIteration,
        )
    });

    // Stage 3: deep composite — a three-level event tree.
    g.bench_function("insert_nested_composite_action", |b| {
        b.iter_batched(
            || {
                let f = agent_fixture();
                f.1.execute("create trigger t1 on stock for insert event a as print 'a'")
                    .unwrap();
                f.1.execute("create trigger t2 on stock for delete event d as print 'd'")
                    .unwrap();
                f.1.execute("create trigger t3 event l1 = a | d as print 'l1'")
                    .unwrap();
                f.1.execute("create trigger t4 event l2 = l1 | a as print 'l2'")
                    .unwrap();
                f.1.execute("create trigger t5 event l3 = l2 | l1 as print 'l3'")
                    .unwrap();
                f
            },
            |(_agent, client)| {
                let resp = client.execute("insert stock values ('A', 1.0)").unwrap();
                assert!(!resp.actions.is_empty());
            },
            BatchSize::PerIteration,
        )
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
