//! E13 — secondary-index access paths: point lookups, selective UPDATEs
//! and agent-style gap-repair SELECTs at 1k/10k/100k rows, indexed vs
//! forced scan. The "scan" engine is an identical engine with no indexes —
//! the planner's fallback path — so the comparison isolates exactly what
//! the IndexSet/planner layer buys. Every operation's result is asserted
//! byte-identical between the two engines at every scale, and final table
//! state must match: the index layer may only change *how fast* answers
//! arrive, never the answers.
//!
//! The gap-repair shape mirrors the agent's generated action procedures
//! (`select ... from shadow, ver where shadow.vNo = ver.vNo`): a join
//! probe against a growing table keyed by a single-row version table.
//!
//! Plain `fn main` (harness = false): a fixed workload with correctness
//! assertions, not a statistical micro-benchmark.
//!
//! The ≥ 5x speedup bar for point lookups and selective UPDATEs is
//! enforced at the largest scale run when that scale is ≥ 10k rows
//! (below that, fixed per-statement costs dominate); `E13_MIN_SPEEDUP`
//! overrides the bar either way.
//!
//! ```text
//! cargo bench -p eca-bench --bench e13_index
//! E13_MAX_ROWS=10000 E13_OPS=50 cargo bench -p eca-bench --bench e13_index   # CI smoke
//! E13_MIN_SPEEDUP=5.0 cargo bench -p eca-bench --bench e13_index             # force the bar
//! ```

use std::time::Instant;

use relsql::{Engine, SessionCtx};

fn main() {
    let ops = env_or("E13_OPS", 200);
    let max_rows = env_or("E13_MAX_ROWS", 100_000);
    let bar_env: Option<f64> = std::env::var("E13_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok());
    println!("# E13 — indexed vs scan access paths: {ops} ops per shape per scale\n");
    println!(
        "| rows | point lookup (ix/scan us) | speedup | selective update (ix/scan us) | \
         speedup | gap-repair select (ix/scan us) | speedup | ix hits | ix rows/op | scan rows/op |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");

    let mut largest: Option<(usize, f64, f64)> = None;
    for n in [1_000usize, 10_000, 100_000] {
        if n > max_rows {
            continue;
        }
        let r = bench_scale(n, ops);
        largest = Some((n, r.point_speedup, r.update_speedup));
    }

    let (n, point, update) = largest.expect("at least one scale must run");
    let bar = bar_env.or_else(|| (n >= 10_000).then_some(5.0));
    println!("\nlargest scale {n}: point lookup {point:.1}x, selective update {update:.1}x");
    if let Some(bar) = bar {
        assert!(
            point >= bar,
            "point-lookup speedup {point:.2}x below the required {bar:.2}x at {n} rows"
        );
        assert!(
            update >= bar,
            "selective-update speedup {update:.2}x below the required {bar:.2}x at {n} rows"
        );
    }
}

struct ScaleResult {
    point_speedup: f64,
    update_speedup: f64,
}

fn bench_scale(n: usize, ops: usize) -> ScaleResult {
    let s = SessionCtx::new("db", "u");
    let mut indexed = Engine::new();
    let mut scan = Engine::new();
    for e in [&mut indexed, &mut scan] {
        e.execute("create table t (k int, v int)", &s).unwrap();
        e.execute("create table ver (vno int)", &s).unwrap();
        e.execute("insert ver values (0)", &s).unwrap();
    }
    indexed
        .execute("create unique hash index e13_k on t (k)", &s)
        .unwrap();
    indexed.execute("create index e13_v on t (v)", &s).unwrap();
    for i in 0..n {
        let sql = format!("insert t values ({i}, {})", i % 997);
        indexed.execute(&sql, &s).unwrap();
        scan.execute(&sql, &s).unwrap();
    }

    let key = |i: usize| (i.wrapping_mul(7919) + 13) % n;

    // Point lookup: unique-key equality, the paper-workload hot path.
    let (point_ix, point_sc) = both(&mut indexed, &mut scan, &s, ops, |i| {
        format!("select v from t where k = {}", key(i))
    });

    // Gap-repair SELECT: the agent's action-proc shape — probe the big
    // table through a value read out of a single-row version table.
    for e in [&mut indexed, &mut scan] {
        e.execute(&format!("update ver set vno = {}", key(7)), &s)
            .unwrap();
    }
    let (gap_ix, gap_sc) = both(&mut indexed, &mut scan, &s, ops, |_| {
        "select t.v from t, ver where t.k = ver.vno".to_string()
    });

    // Selective UPDATE: touches 1 row of n.
    let ix_stats_before = scan_rows(&indexed);
    let sc_stats_before = scan_rows(&scan);
    let (upd_ix, upd_sc) = both(&mut indexed, &mut scan, &s, ops, |i| {
        format!("update t set v = v + 1 where k = {}", key(i))
    });
    let ix_rows_per_op = (scan_rows(&indexed) - ix_stats_before) as f64 / ops as f64;
    let sc_rows_per_op = (scan_rows(&scan) - sc_stats_before) as f64 / ops as f64;

    // Final state identical: the updates landed on exactly the same rows.
    for probe in ["select sum(v) from t", "select count(*) from t"] {
        let a = indexed.execute(probe, &s).unwrap();
        let b = scan.execute(probe, &s).unwrap();
        assert_eq!(a.scalar(), b.scalar(), "{probe} diverged at n={n}");
    }
    let hits = indexed.scan_stats().hits();
    assert!(hits > 0, "indexed engine never used an index at n={n}");
    assert_eq!(
        scan.scan_stats().hits(),
        0,
        "scan engine has no indexes to hit"
    );

    let point_speedup = point_sc.as_secs_f64() / point_ix.as_secs_f64();
    let update_speedup = upd_sc.as_secs_f64() / upd_ix.as_secs_f64();
    let gap_speedup = gap_sc.as_secs_f64() / gap_ix.as_secs_f64();
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6 / ops as f64;
    println!(
        "| {n} | {:.0}/{:.0} | {point_speedup:.1}x | {:.0}/{:.0} | {update_speedup:.1}x | \
         {:.0}/{:.0} | {gap_speedup:.1}x | {hits} | {ix_rows_per_op:.1} | {sc_rows_per_op:.1} |",
        us(point_ix),
        us(point_sc),
        us(upd_ix),
        us(upd_sc),
        us(gap_ix),
        us(gap_sc),
    );
    ScaleResult {
        point_speedup,
        update_speedup,
    }
}

/// Run `ops` statements on both engines, assert identical results, and
/// return (indexed, scan) wall time.
fn both(
    indexed: &mut Engine,
    scan: &mut Engine,
    s: &SessionCtx,
    ops: usize,
    stmt: impl Fn(usize) -> String,
) -> (std::time::Duration, std::time::Duration) {
    let stmts: Vec<String> = (0..ops).map(&stmt).collect();
    let t0 = Instant::now();
    let mut ix_results = Vec::with_capacity(ops);
    for q in &stmts {
        ix_results.push(indexed.execute(q, s).unwrap());
    }
    let ix = t0.elapsed();
    let t1 = Instant::now();
    let mut sc_results = Vec::with_capacity(ops);
    for q in &stmts {
        sc_results.push(scan.execute(q, s).unwrap());
    }
    let sc = t1.elapsed();
    for (i, (a, b)) in ix_results.iter().zip(&sc_results).enumerate() {
        assert_eq!(a.results.len(), b.results.len(), "stmt {i}: {}", stmts[i]);
        for (ra, rb) in a.results.iter().zip(&b.results) {
            assert_eq!(ra.columns, rb.columns, "stmt {i}: {}", stmts[i]);
            assert_eq!(ra.rows, rb.rows, "stmt {i}: {}", stmts[i]);
        }
    }
    (ix, sc)
}

fn scan_rows(e: &Engine) -> u64 {
    e.scan_stats().scanned()
}

fn env_or(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
