//! E18 — sharded reactor scalability: a large idle-session fleet plus a
//! hot core, all served by a fixed thread pool. The experiment opens
//! `E18_IDLE` sessions that say HELLO and then go quiet, verifies the
//! server adds **zero threads** and stays under a per-idle-session
//! memory budget, then drives `E18_HOT` concurrent writers through a
//! trigger workload with the idle fleet still resident — asserting
//! **zero lost firings** (every insert fires its rule exactly once).
//! A final leg compares 8-client p99 latency against an in-bench
//! thread-per-connection baseline, the architecture the reactor
//! replaced.
//!
//! Plain `fn main` (harness = false): fixed workload with correctness
//! assertions, not a statistical micro-benchmark.
//!
//! ```text
//! cargo bench -p eca-bench --bench e18_reactor
//! E18_IDLE=256 E18_HOT=16 E18_OPS=50 cargo bench -p eca-bench --bench e18_reactor
//! ```
//!
//! The idle fleet needs one file descriptor per session on each side;
//! the bench reads the soft `RLIMIT_NOFILE` from `/proc/self/limits`
//! and scales the fleet down (with a note) if the limit is too low.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eca_core::{ActiveService, EcaAgent};
use eca_serve::{EcaServer, ServeClient, ServeConfig, ServeHandle};
use relsql::{SessionCtx, SqlServer};

/// Per-idle-session RSS budget (bytes). Generous: the measurement
/// charges the server *and* the in-process client side of each session
/// to the same budget.
const IDLE_SESSION_BUDGET: u64 = 20 * 1024;

fn main() {
    let mut idle: usize = env_or("E18_IDLE", 10_000);
    let hot: usize = env_or("E18_HOT", 64);
    let ops: usize = env_or("E18_OPS", 200);

    // Both sides of every session live in this process: ~2 fds each,
    // plus the listener, poller fds, and stdio.
    let fd_limit = max_open_files();
    let fd_needed = 2 * (idle + hot) + 64;
    if fd_needed > fd_limit {
        let fit = (fd_limit.saturating_sub(2 * hot + 64)) / 2;
        println!("(RLIMIT_NOFILE {fd_limit} < {fd_needed} needed; idle fleet {idle} -> {fit})");
        idle = fit;
    }
    assert!(idle >= 16, "fd limit too low to run E18 at all");

    println!("# E18 — reactor fleet: {idle} idle + {hot} hot sessions on a fixed thread pool\n");

    let (handle, addr) = start_server(idle + hot + 8);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "## topology: {} shard(s) + {} exec worker(s) = {} serve threads ({cores} cores)",
        handle.reactor_shards(),
        handle.exec_workers(),
        handle.serve_threads()
    );
    assert!(
        handle.serve_threads() <= cores + 2,
        "serve layer must fit in cores + 2 threads"
    );

    let (mut admin, _) = ServeClient::connect_as(addr, "db", "admin").unwrap();
    setup_schema(&mut admin);

    // --- idle fleet: memory and thread budget -------------------------
    let rss_before = vm_rss_bytes();
    let threads_before = proc_threads();
    let t0 = Instant::now();
    let mut fleet = Vec::with_capacity(idle);
    for k in 0..idle {
        let (c, _) = ServeClient::connect_as(addr, "db", &format!("idle{k}")).unwrap();
        fleet.push(c);
    }
    let connect_secs = t0.elapsed().as_secs_f64();
    let rss_after = vm_rss_bytes();
    let threads_after = proc_threads();
    let per_session = rss_after.saturating_sub(rss_before) / idle as u64;
    println!("\n## idle fleet ({idle} sessions, {connect_secs:.2} s to connect)");
    println!(
        "  rss {:.1} MiB -> {:.1} MiB  ({per_session} B/session, budget {IDLE_SESSION_BUDGET})",
        rss_before as f64 / (1024.0 * 1024.0),
        rss_after as f64 / (1024.0 * 1024.0)
    );
    println!("  process threads {threads_before} -> {threads_after}");
    assert_eq!(
        threads_before, threads_after,
        "idle sessions must not spawn threads"
    );
    assert!(
        per_session < IDLE_SESSION_BUDGET,
        "idle session overhead {per_session} B exceeds {IDLE_SESSION_BUDGET} B budget"
    );

    // --- hot core with the fleet resident -----------------------------
    let t0 = Instant::now();
    let mut workers = Vec::new();
    for k in 0..hot {
        workers.push(std::thread::spawn(move || {
            let (mut c, _) = ServeClient::connect_as(addr, "db", &format!("hot{k}")).unwrap();
            let mut lat = Vec::with_capacity(ops);
            for i in 0..ops {
                let t = Instant::now();
                let r = c.exec(&format!("insert t values ({k}, {i})")).unwrap();
                lat.push(t.elapsed());
                assert_eq!(r.failed, 0, "hot client {k} op {i} failed an action");
            }
            c.quit().unwrap();
            lat
        }));
    }
    let mut lat: Vec<Duration> = Vec::with_capacity(hot * ops);
    for w in workers {
        lat.extend(w.join().unwrap());
    }
    let hot_secs = t0.elapsed().as_secs_f64();

    // Zero lost firings: IMMEDIATE coupling means every insert fired the
    // audit rule exactly once before its EXEC was answered.
    let inserts = (hot * ops) as u64;
    let firings = admin.exec("select * from audit").unwrap().rows;
    let rows = admin.exec("select * from t").unwrap().rows;
    assert_eq!(rows, inserts, "lost DML under the idle fleet");
    assert_eq!(firings, inserts, "lost firings under the idle fleet");

    lat.sort();
    let hot_p99 = percentile(&lat, 0.99);
    println!("\n## hot core ({hot} clients x {ops} ops, {idle} idle sessions resident)");
    println!(
        "  {inserts:>7} inserts in {hot_secs:6.2} s  ({:8.0} stmt/s)",
        inserts as f64 / hot_secs
    );
    println!(
        "  latency p50 {:7.1} us   p99 {:7.1} us   max {:7.1} us",
        percentile(&lat, 0.50).as_secs_f64() * 1e6,
        hot_p99.as_secs_f64() * 1e6,
        lat[lat.len() - 1].as_secs_f64() * 1e6
    );
    println!("  firings: {firings} (= inserts: zero lost)");

    // Pings across the fleet still answer promptly while stats settle.
    for c in fleet.iter_mut().take(64) {
        c.ping().unwrap();
    }
    let stats = handle.serve_stats();
    println!(
        "  serve: {} sessions active, {} requests, {} wakeups, {} partial reads, {} write-blocked",
        stats.sessions_active,
        stats.requests,
        stats.wakeups,
        stats.partial_reads,
        stats.write_blocked
    );
    for c in fleet {
        c.quit().unwrap();
    }
    admin.quit().unwrap();
    let report = handle.shutdown();
    assert!(report.quiescent, "fleet run must drain clean");

    // --- p99 vs thread-per-connection baseline (8 clients) ------------
    let reactor_p99 = latency_leg_reactor(ops);
    let threaded_p99 = latency_leg_threaded(ops);
    println!("\n## p99 @ 8 clients: reactor vs thread-per-connection baseline");
    println!(
        "  reactor  {:7.1} us\n  threaded {:7.1} us  ({:.2}x)",
        reactor_p99.as_secs_f64() * 1e6,
        threaded_p99.as_secs_f64() * 1e6,
        reactor_p99.as_secs_f64() / threaded_p99.as_secs_f64()
    );
    // Within noise: the reactor must not regress tail latency by more
    // than 3x or 2 ms, whichever is larger (CI boxes are jittery).
    let bound = std::cmp::max(threaded_p99 * 3, threaded_p99 + Duration::from_millis(2));
    assert!(
        reactor_p99 <= bound,
        "reactor p99 {reactor_p99:?} exceeds noise bound {bound:?} vs threaded {threaded_p99:?}"
    );
    println!("\nE18 ok");
}

fn env_or(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn start_server(max_sessions: usize) -> (ServeHandle, SocketAddr) {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    let service: Arc<dyn ActiveService> = Arc::new(agent);
    let config = ServeConfig::default().with_max_sessions(max_sessions);
    let handle = EcaServer::start(service, config).expect("bind");
    let addr = handle.addr();
    (handle, addr)
}

fn setup_schema(c: &mut ServeClient) {
    c.exec("create table t (k int, i int)").unwrap();
    c.exec("create table audit (n int)").unwrap();
    c.exec("create trigger tr on t for insert event e as insert audit values (1)")
        .unwrap();
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    sorted[((sorted.len() as f64 * q) as usize).min(sorted.len() - 1)]
}

/// 8 clients x `ops` inserts against the reactor server; returns p99.
fn latency_leg_reactor(ops: usize) -> Duration {
    let (handle, addr) = start_server(32);
    let (mut admin, _) = ServeClient::connect_as(addr, "db", "admin").unwrap();
    setup_schema(&mut admin);
    let mut lat = run_clients(
        8,
        ops,
        move |k, i, buf: &mut ServeClient| {
            let t = Instant::now();
            buf.exec(&format!("insert t values ({k}, {i})")).unwrap();
            t.elapsed()
        },
        move || {
            let (c, _) = ServeClient::connect_as(addr, "db", "lat").unwrap();
            c
        },
    );
    admin.quit().unwrap();
    handle.shutdown();
    lat.sort();
    percentile(&lat, 0.99)
}

/// The architecture the reactor replaced, reconstructed in-bench: one
/// accept loop, one thread and one blocking `BufReader` per connection,
/// plain SQL lines in, `OK`/`ERR` lines out, same `ActiveService`
/// underneath. 8 clients x `ops` inserts; returns p99.
fn latency_leg_threaded(ops: usize) -> Duration {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    let service: Arc<dyn ActiveService> = Arc::new(agent);
    let ctx = SessionCtx::new("db", "bench");
    for sql in [
        "create table t (k int, i int)",
        "create table audit (n int)",
    ] {
        service.execute(sql, &ctx).unwrap();
    }
    service
        .define_trigger(
            "create trigger tr on t for insert event e as insert audit values (1)",
            &ctx,
        )
        .unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let svc = Arc::clone(&service);
    let accept = std::thread::spawn(move || {
        let mut conns = Vec::new();
        // 8 latency clients, one thread each — the old model.
        for _ in 0..8 {
            let (stream, _) = listener.accept().unwrap();
            let svc = Arc::clone(&svc);
            conns.push(std::thread::spawn(move || {
                let ctx = SessionCtx::new("db", "bench");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        return;
                    }
                    let reply = match svc.execute(line.trim_end(), &ctx) {
                        Ok(_) => "OK\n",
                        Err(_) => "ERR\n",
                    };
                    if stream.write_all(reply.as_bytes()).is_err() {
                        return;
                    }
                }
            }));
        }
        for c in conns {
            let _ = c.join();
        }
    });

    let mut lat = run_clients(
        8,
        ops,
        move |k, i, conn: &mut (BufReader<TcpStream>, TcpStream)| {
            let t = Instant::now();
            conn.1
                .write_all(format!("insert t values ({k}, {i})\n").as_bytes())
                .unwrap();
            let mut reply = String::new();
            conn.0.read_line(&mut reply).unwrap();
            assert_eq!(reply.trim_end(), "OK");
            t.elapsed()
        },
        move || {
            let stream = TcpStream::connect(addr).unwrap();
            (BufReader::new(stream.try_clone().unwrap()), stream)
        },
    );
    drop(accept); // per-conn threads exit on client EOF; don't block on join
    lat.sort();
    percentile(&lat, 0.99)
}

/// Fan `n` clients out on threads, each running `ops` timed operations
/// through its own connection; returns all latencies.
fn run_clients<C: Send + 'static>(
    n: usize,
    ops: usize,
    op: impl Fn(usize, usize, &mut C) -> Duration + Send + Sync + 'static,
    connect: impl Fn() -> C + Send + Sync + 'static,
) -> Vec<Duration> {
    let op = Arc::new(op);
    let connect = Arc::new(connect);
    let mut threads = Vec::new();
    for k in 0..n {
        let op = Arc::clone(&op);
        let connect = Arc::clone(&connect);
        threads.push(std::thread::spawn(move || {
            let mut conn = connect();
            (0..ops).map(|i| op(k, i, &mut conn)).collect::<Vec<_>>()
        }));
    }
    threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect()
}

/// Resident set size in bytes, from `/proc/self/status` (`VmRSS:` kB).
fn vm_rss_bytes() -> u64 {
    proc_status_field("VmRSS:") * 1024
}

/// Thread count of this process, from `/proc/self/status`.
fn proc_threads() -> u64 {
    proc_status_field("Threads:")
}

fn proc_status_field(key: &str) -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with(key))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Soft open-file limit, from `/proc/self/limits` (falls back to 1024).
fn max_open_files() -> usize {
    let limits = std::fs::read_to_string("/proc/self/limits").unwrap_or_default();
    limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}
