//! Workload builders used by every benchmark and by the experiments binary.

use std::sync::Arc;

use eca_core::{EcaAgent, EcaClient};
use led::{Detector, ParameterContext, RuleSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relsql::{Session, SqlServer};

/// A bare passive server with the standard `stock` table.
pub fn passive_server() -> (Arc<SqlServer>, Session) {
    let server = SqlServer::new();
    let session = server.session("benchdb", "bench");
    session
        .execute("create table stock (symbol varchar(10), price float)")
        .unwrap();
    (server, session)
}

/// Agent in front of a fresh server, with the `stock` table created.
pub fn agent_fixture() -> (EcaAgent, EcaClient) {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent");
    let client = agent.client("benchdb", "bench");
    client
        .execute("create table stock (symbol varchar(10), price float)")
        .unwrap();
    (agent, client)
}

/// Install the standard primitive rule (`addStk` on stock inserts).
pub fn with_primitive_rule(client: &EcaClient) {
    client
        .execute("create trigger t_add on stock for insert event addStk as print 'add'")
        .unwrap();
}

/// Install `addStk` + `delStk` primitives and a composite over them.
pub fn with_composite_rule(client: &EcaClient, expr: &str, context: &str) {
    with_primitive_rule(client);
    client
        .execute("create trigger t_del on stock for delete event delStk as print 'del'")
        .unwrap();
    client
        .execute(&format!(
            "create trigger t_comp event comp = {expr} {context} as print 'composite'"
        ))
        .unwrap();
}

/// Deterministic batch of INSERT statements for the stock table.
pub fn insert_workload(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let price: f64 = rng.gen_range(1.0..500.0);
            format!("insert stock values ('S{}', {:.2})", i % 100, price)
        })
        .collect()
}

/// Mixed insert/delete workload (for AND/SEQ composites).
pub fn mixed_workload(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if rng.gen_bool(0.5) {
                format!(
                    "insert stock values ('S{}', {:.2})",
                    i % 100,
                    rng.gen_range(1.0..500.0)
                )
            } else {
                format!("delete stock where symbol = 'S{}'", rng.gen_range(0..100))
            }
        })
        .collect()
}

/// Build a server pre-loaded with `n` ECA rules (half primitive events with
/// one trigger each, half composites over them), for recovery benchmarks.
/// Returns the server; a fresh `EcaAgent::new` over it measures recovery.
pub fn server_with_rules(n: usize) -> Arc<SqlServer> {
    let server = SqlServer::new();
    if n == 0 {
        return server;
    }
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent");
    let client = agent.client("benchdb", "bench");
    let n_tables = n.div_ceil(2).max(1);
    for i in 0..n_tables {
        client
            .execute(&format!("create table t{i} (a int)"))
            .unwrap();
        client
            .execute(&format!(
                "create trigger tr{i} on t{i} for insert event ev{i} as print 'p{i}'"
            ))
            .unwrap();
    }
    for i in 0..n.saturating_sub(n_tables) {
        let a = format!("ev{}", i % n_tables);
        let b = format!("ev{}", (i + 1) % n_tables);
        client
            .execute(&format!(
                "create trigger ctr{i} event cev{i} = {a} ^ {b} as print 'c{i}'"
            ))
            .unwrap();
    }
    server
}

/// A detector with `k` primitive events named `p0..pk`.
pub fn detector_with_primitives(k: usize) -> Detector {
    let mut d = Detector::new();
    for i in 0..k {
        d.define_primitive(&format!("p{i}")).unwrap();
    }
    d
}

/// Register `expr` as composite `c` with a rule, in the given context.
pub fn detector_with_expr(k: usize, expr: &str, ctx: ParameterContext) -> Detector {
    let mut d = detector_with_primitives(k);
    d.define_composite("c", &snoop::parse(expr).unwrap(), ctx)
        .unwrap();
    d.add_rule(RuleSpec::new("r", "c")).unwrap();
    d
}

/// A deterministic event stream over `k` primitive names: (event, ts).
pub fn event_stream(k: usize, n: usize, seed: u64) -> Vec<(String, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| (format!("p{}", rng.gen_range(0..k)), (i as i64 + 1) * 10))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (_server, session) = passive_server();
        session.execute("select count(*) from stock").unwrap();
        let (_agent, client) = agent_fixture();
        with_composite_rule(&client, "delStk ^ addStk", "RECENT");
        client.execute("insert stock values ('A', 1.0)").unwrap();
    }

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(insert_workload(5, 1), insert_workload(5, 1));
        assert_ne!(insert_workload(5, 1), insert_workload(5, 2));
        assert_eq!(mixed_workload(8, 3), mixed_workload(8, 3));
        assert_eq!(event_stream(4, 6, 9), event_stream(4, 6, 9));
    }

    #[test]
    fn server_with_rules_counts() {
        let server = server_with_rules(6);
        let agent = EcaAgent::with_defaults(server).unwrap();
        assert_eq!(agent.trigger_names().len(), 6);
    }

    #[test]
    fn server_with_zero_and_one_rule() {
        let server = server_with_rules(0);
        let agent = EcaAgent::with_defaults(server).unwrap();
        assert_eq!(agent.trigger_names().len(), 0);
        let server = server_with_rules(1);
        let agent = EcaAgent::with_defaults(server).unwrap();
        assert_eq!(agent.trigger_names().len(), 1);
    }

    #[test]
    fn mixed_workload_statements_are_valid_sql() {
        let (_server, session) = passive_server();
        for s in mixed_workload(50, 4) {
            session.execute(&s).unwrap();
        }
    }

    #[test]
    fn detector_fixture_detects() {
        let mut d = detector_with_expr(2, "p0 ^ p1", ParameterContext::Recent);
        d.signal("p0", vec![], 1).unwrap();
        let f = d.signal("p1", vec![], 2).unwrap();
        assert_eq!(f.len(), 1);
    }
}
