//! Deterministic experiment harness: regenerates the quantitative rows
//! recorded in EXPERIMENTS.md (counts, state sizes, waste metrics and
//! coarse wall-clock numbers). Criterion benches cover the fine-grained
//! timing; this binary covers everything countable.
//!
//! ```text
//! cargo run -p eca-bench --release --bin experiments
//! ```

use std::sync::Arc;
use std::time::Instant;

use eca_bench::{
    agent_fixture, detector_with_expr, event_stream, insert_workload, passive_server,
    server_with_rules,
};
use eca_core::{AgentConfig, EcaAgent, EmbeddedCheckClient, PollingMonitor, Situation};
use led::ParameterContext;
use relsql::{SqlServer, Value};

fn main() {
    println!("# ECA-Agent experiment harness\n");
    e1_transparency();
    e2_rule_creation();
    e3_pipeline();
    e4_recovery();
    e5_codegen();
    e6_operators();
    e7_actions();
    e8_loss();
    e9_contexts();
    e10_baselines();
    x1_ged();
    println!("\nAll experiments completed.");
}

/// Extension experiment: the §6 Global Event Detector — cross-site
/// composite throughput over two agent-fronted servers.
fn x1_ged() {
    use eca_core::GlobalEventDetector;
    use led::ParameterContext as Pc;

    println!("\n## X1 — GED cross-site composites (200 event pairs)");
    let mk_site = |db: &str| {
        let server = SqlServer::new();
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        let client = agent.client(db, "u");
        client.execute("create table t (a int)").unwrap();
        client
            .execute("create trigger tr on t for insert event ev as print 'x'")
            .unwrap();
        (agent, client)
    };
    let (a1, c1) = mk_site("db1");
    let (a2, c2) = mk_site("db2");
    let ged = GlobalEventDetector::new();
    ged.attach_site("s1", &a1).unwrap();
    ged.attach_site("s2", &a2).unwrap();
    ged.export_event("s1", "db1.u.ev").unwrap();
    ged.export_event("s2", "db2.u.ev").unwrap();
    ged.define_global_event("pair", "db1.u.ev::s1 ^ db2.u.ev::s2", Pc::Chronicle)
        .unwrap();
    c2.execute("create table global_log (n int)").unwrap();
    ged.add_global_rule("gr", "pair", "s2", "insert global_log values (1)")
        .unwrap();
    let ms = time(|| {
        for i in 0..200 {
            c1.execute(&format!("insert t values ({i})")).unwrap();
            c2.execute(&format!("insert t values ({i})")).unwrap();
        }
    });
    let st = ged.stats();
    println!(
        "  {:.2} ms for 400 site events; ged received {} occurrences, ran {} global actions",
        ms, st.occurrences, st.actions
    );
}

fn time<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

fn e1_transparency() {
    println!("## E1 — transparency (50-insert batches, ms)");
    let stmts = insert_workload(50, 7);
    let (_s, session) = passive_server();
    let direct = time(|| {
        for s in &stmts {
            session.execute(s).unwrap();
        }
    });
    let (_a, client) = agent_fixture();
    let via_agent = time(|| {
        for s in &stmts {
            client.execute(s).unwrap();
        }
    });
    let (_a2, client2) = agent_fixture();
    client2
        .execute("create trigger t on stock for insert event e as print 'x'")
        .unwrap();
    let with_rule = time(|| {
        for s in &stmts {
            client2.execute(s).unwrap();
        }
    });
    println!("  direct server      : {direct:8.2} ms");
    println!(
        "  agent, no rules    : {via_agent:8.2} ms  ({:.2}x)",
        via_agent / direct
    );
    println!(
        "  agent, active rule : {with_rule:8.2} ms  ({:.2}x)\n",
        with_rule / direct
    );
}

fn e2_rule_creation() {
    println!("## E2 — rule creation (ms per rule)");
    let (_a, client) = agent_fixture();
    let native = time(|| {
        client
            .execute("create trigger nat on stock for insert as print 'x'")
            .unwrap();
    });
    let primitive = time(|| {
        client
            .execute("create trigger tp on stock for insert event ep as print 'x'")
            .unwrap();
    });
    let on_existing = time(|| {
        client
            .execute("create trigger tq event ep as print 'x'")
            .unwrap();
    });
    client
        .execute("create trigger td on stock for delete event ed as print 'x'")
        .unwrap();
    let composite = time(|| {
        client
            .execute("create trigger tc event ec = ep ^ ed RECENT as print 'x'")
            .unwrap();
    });
    println!("  native trigger       : {native:6.3} ms");
    println!("  primitive ECA rule   : {primitive:6.3} ms");
    println!("  trigger on existing  : {on_existing:6.3} ms");
    println!("  composite ECA rule   : {composite:6.3} ms\n");
}

fn e3_pipeline() {
    println!("## E3 — notification→action pipeline (1000 inserts)");
    let (agent, client) = agent_fixture();
    client
        .execute("create trigger t on stock for insert event e as print 'x'")
        .unwrap();
    client
        .execute("create trigger tc event anyE = e as select count(*) from stock.inserted")
        .unwrap();
    let stmts = insert_workload(1000, 5);
    let ms = time(|| {
        for s in &stmts {
            client.execute(s).unwrap();
        }
    });
    let st = agent.stats();
    println!(
        "  {:.2} ms total, {:.1} µs/event; notifications={}, actions={}\n",
        ms,
        ms * 1000.0 / 1000.0,
        st.notifications,
        st.actions_executed
    );
}

fn e4_recovery() {
    println!("## E4 — recovery time vs persisted rules");
    for n in [10usize, 50, 100, 250, 500] {
        let server = server_with_rules(n);
        let ms = time(|| {
            let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
            assert_eq!(agent.trigger_names().len(), n);
        });
        println!("  {n:4} rules: {ms:8.2} ms ({:.3} ms/rule)", ms / n as f64);
    }
    println!();
}

fn e5_codegen() {
    println!("## E5 — codegen fidelity counts");
    let (agent, client) = agent_fixture();
    client
        .execute("create trigger t on stock for insert event e as select * from stock.inserted")
        .unwrap();
    let tables = agent.server().snapshot().database().table_names();
    let shadows = tables
        .iter()
        .filter(|t| t.contains("_inserted") || t.contains("_deleted"))
        .count();
    let vers = tables.iter().filter(|t| t.ends_with("_ver")).count();
    println!("  shadow tables per event: {shadows} (2 shadows + 1 tmp), version tables: {vers}");
    let gw = agent.gateway_stats();
    println!(
        "  gateway batches for one primitive rule: internal={} forwarded={}\n",
        gw.internal, gw.forwarded
    );
}

fn e6_operators() {
    println!("## E6 — detections per operator (1000-event stream, RECENT)");
    let stream = event_stream(3, 1000, 11);
    for (name, expr) in [
        ("OR", "p0 | p1"),
        ("AND", "p0 ^ p1"),
        ("SEQ", "p0 ; p1"),
        ("NOT", "NOT(p0, p1, p2)"),
        ("A", "A(p0, p1, p2)"),
        ("A*", "A*(p0, p1, p2)"),
        ("PLUS", "p0 PLUS [1 sec]"),
        ("P", "P(p0, [10 sec], p2)"),
    ] {
        let mut d = detector_with_expr(3, expr, ParameterContext::Recent);
        let mut fired = 0usize;
        let ms = time(|| {
            for (ev, ts) in &stream {
                fired += d.signal(ev, vec![], *ts).unwrap().len();
            }
            fired += d.advance_to(1_000_000_000).len();
        });
        println!(
            "  {name:5}: {fired:5} detections, {ms:7.2} ms, residual state {}",
            d.total_state_size()
        );
    }
    println!();
}

fn e7_actions() {
    println!("## E7 — coupling-mode ablation (16 rules on one event)");
    for coupling in ["IMMEDIATE", "DEFERRED", "DETACHED"] {
        let (agent, client) = agent_fixture();
        client
            .execute("create trigger t0 on stock for insert event e as print 'x'")
            .unwrap();
        client.execute("create table sink_rows (n int)").unwrap();
        for i in 0..16 {
            client
                .execute(&format!(
                    "create trigger tr{i} event c{i} = e {coupling} \
                     as insert sink_rows values ({i})"
                ))
                .unwrap();
        }
        let ms = time(|| {
            client.execute("insert stock values ('A', 1.0)").unwrap();
            match coupling {
                "DEFERRED" => {
                    agent.flush_deferred().unwrap();
                }
                "DETACHED" => {
                    agent.wait_detached();
                }
                _ => {}
            }
        });
        let n = client
            .execute("select count(*) from sink_rows")
            .unwrap()
            .server
            .scalar()
            .cloned();
        println!("  {coupling:9}: {ms:7.2} ms, actions completed: {n:?}");
    }
    println!();
}

fn e8_loss() {
    println!("## E8 — notification loss sensitivity (200 events)");
    for pct in [0u32, 10, 30, 50, 90] {
        let server = SqlServer::new();
        let agent = EcaAgent::new(
            Arc::clone(&server),
            AgentConfig::builder()
                .drop_probability(pct as f64 / 100.0, 17)
                .exactly_once(false)
                .build(),
        )
        .unwrap();
        let client = agent.client("db", "u");
        client.execute("create table t (a int)").unwrap();
        client
            .execute("create trigger tr on t for insert event e as print 'x'")
            .unwrap();
        for i in 0..200 {
            client.execute(&format!("insert t values ({i})")).unwrap();
        }
        let st = agent.stats();
        println!(
            "  drop {pct:3}%: delivered {:3}/200 notifications",
            st.notifications
        );
    }
    println!();
}

fn e9_contexts() {
    println!("## E9 — contexts on a burst stream (10 rounds × 200 initiators + 1 terminator)");
    for ctx in ParameterContext::ALL {
        let mut d = detector_with_expr(2, "p0 ; p1", ctx);
        let mut ts = 0i64;
        let mut fired = 0usize;
        let mut params = 0usize;
        let mut max_state = 0usize;
        let ms = time(|| {
            for _ in 0..10 {
                for _ in 0..200 {
                    ts += 1;
                    d.signal("p0", vec![], ts).unwrap();
                    max_state = max_state.max(d.total_state_size());
                }
                ts += 1;
                for f in d.signal("p1", vec![], ts).unwrap() {
                    fired += 1;
                    params += f.occurrence.params.len();
                }
            }
        });
        println!(
            "  {:10}: {fired:5} detections, {params:6} params total, peak state {max_state:4}, {ms:7.2} ms",
            ctx.as_str()
        );
    }
    println!();
}

fn e10_baselines() {
    println!("## E10 — agent vs polling vs embedded checks (50 events)");
    let stmts = insert_workload(50, 23);

    // Agent.
    let (agent, client) = agent_fixture();
    client.execute("create table alerts (n int)").unwrap();
    client
        .execute("create trigger tr on stock for insert event e as insert alerts values (1)")
        .unwrap();
    let ms = time(|| {
        for s in &stmts {
            client.execute(s).unwrap();
        }
    });
    let detections = match client
        .execute("select count(*) from alerts")
        .unwrap()
        .server
        .scalar()
    {
        Some(Value::Int(n)) => *n,
        _ => 0,
    };
    println!(
        "  agent          : {detections:3}/50 detections, 0 extra queries, {ms:7.2} ms (stats: {} actions)",
        agent.stats().actions_executed
    );

    // Polling at several intervals.
    for poll_every in [1usize, 5, 25] {
        let (server, session) = passive_server();
        session.execute("create table alerts (n int)").unwrap();
        let mut monitor = PollingMonitor::new(
            server.session("benchdb", "monitor"),
            vec![Situation {
                name: "activity".into(),
                probe_sql: "select count(*) from stock".into(),
                action_sql: "insert alerts values (1)".into(),
            }],
        );
        monitor.poll().unwrap();
        let ms = time(|| {
            for (i, s) in stmts.iter().enumerate() {
                session.execute(s).unwrap();
                if (i + 1) % poll_every == 0 {
                    monitor.poll().unwrap();
                }
            }
        });
        let (_, queries, detections) = monitor.stats();
        println!(
            "  poll every {poll_every:2}  : {detections:3}/50 detections, {queries:3} probe queries, {ms:7.2} ms"
        );
    }

    // Embedded checks.
    let (server, session) = passive_server();
    session.execute("create table alerts (n int)").unwrap();
    let mut embedded = EmbeddedCheckClient::new(
        server.session("benchdb", "bench"),
        vec![Situation {
            name: "activity".into(),
            probe_sql: "select count(*) from stock where price > 0".into(),
            action_sql: "insert alerts values (1)".into(),
        }],
    );
    let ms = time(|| {
        for s in &stmts {
            embedded.execute(s).unwrap();
        }
    });
    let (_, checks, detections) = embedded.stats();
    println!(
        "  embedded checks: {detections:3}/50 detections, {checks:3} check queries, {ms:7.2} ms"
    );
}
