//! Shared fixtures and workload generators for the experiment suite
//! (E1-E10, see DESIGN.md and EXPERIMENTS.md).

pub mod workload;

pub use workload::*;
