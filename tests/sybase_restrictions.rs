//! §2.2: the native trigger restrictions the agent is built around.
//! Each test demonstrates the restriction on the bare server, then shows
//! the agent lifting it.

use std::sync::Arc;

use eca_core::EcaAgent;
use relsql::{SqlServer, Value};

#[test]
fn native_trigger_overwrite_is_silent_but_agent_supports_many() {
    // Restriction: "Each new trigger on a table for the same operation
    // overwrites the previous one. No warning message is given."
    let server = SqlServer::new();
    let s = server.session("db", "u");
    s.execute("create table t (a int)").unwrap();
    s.execute("create trigger tr1 on t for insert as print 'first'")
        .unwrap();
    // Silently replaced — no error:
    s.execute("create trigger tr2 on t for insert as print 'second'")
        .unwrap();
    let r = s.execute("insert t values (1)").unwrap();
    assert_eq!(r.messages, vec!["second"], "first trigger silently gone");

    // The agent supports multiple triggers on the same event (contribution #4).
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    client.execute("create table t (a int)").unwrap();
    client
        .execute("create trigger tr1 on t for insert event e as print 'first'")
        .unwrap();
    client
        .execute("create trigger tr2 event e as print 'second'")
        .unwrap();
    let resp = client.execute("insert t values (1)").unwrap();
    assert!(resp.server.messages.contains(&"first".to_string()));
    assert!(resp.server.messages.contains(&"second".to_string()));
}

#[test]
fn native_events_cannot_be_named_but_agent_events_can() {
    // Restriction: "An event cannot be named and reused."
    // Native syntax has no EVENT clause at all; the agent's does, and the
    // name is reusable across triggers.
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    client.execute("create table t (a int)").unwrap();
    client
        .execute("create trigger tr1 on t for insert event namedEvent as print 'x'")
        .unwrap();
    // Reuse by name from a *different* trigger.
    client
        .execute("create trigger tr2 event namedEvent as print 'y'")
        .unwrap();
    // And from a composite definition.
    client
        .execute("create trigger tr3 event twice = namedEvent ; namedEvent as print 'z'")
        .unwrap();
    assert_eq!(agent.trigger_names().len(), 3);
}

#[test]
fn composite_events_impossible_natively_but_detected_by_agent() {
    // Restriction: "Composite events cannot be specified."
    // Native triggers see single statements only; the agent detects an
    // AND across two *different tables* — something no single native
    // trigger can watch ("a trigger cannot be applied to more than one
    // table").
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    client.execute("create table orders (id int)").unwrap();
    client.execute("create table payments (id int)").unwrap();
    client.execute("create table matched (id int)").unwrap();
    client
        .execute("create trigger t1 on orders for insert event newOrder as print 'o'")
        .unwrap();
    client
        .execute("create trigger t2 on payments for insert event newPayment as print 'p'")
        .unwrap();
    client
        .execute(
            "create trigger t3 event paidOrder = newOrder ^ newPayment \
             as insert matched values (1)",
        )
        .unwrap();
    client.execute("insert orders values (1)").unwrap();
    let r = client.execute("select count(*) from matched").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(0)));
    client.execute("insert payments values (1)").unwrap();
    let r = client.execute("select count(*) from matched").unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int(1)),
        "cross-table composite"
    );
}

#[test]
fn dropping_native_trigger_by_name_passes_through() {
    // Transparency in the other direction: drop of a non-agent trigger is
    // the server's business.
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    client.execute("create table t (a int)").unwrap();
    client
        .execute("create trigger plain on t for insert as print 'plain'")
        .unwrap();
    client.execute("drop trigger plain").unwrap();
    let resp = client.execute("insert t values (1)").unwrap();
    assert!(resp.server.messages.is_empty());
}

#[test]
fn agent_keeps_all_native_server_functionality() {
    // "None of the existing DBMS's functionality would be lost" — a
    // client doing plain SQL through the agent sees identical behaviour,
    // including native triggers, procedures and transactions.
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    client.execute("create table t (a int)").unwrap();
    client
        .execute("create procedure fill as insert t values (7)")
        .unwrap();
    client.execute("execute fill").unwrap();
    client
        .execute("begin tran insert t values (8) rollback")
        .unwrap();
    let r = client.execute("select count(*), sum(a) from t").unwrap();
    let row = &r.server.last_select().unwrap().rows[0];
    assert_eq!(row[0], Value::Int(1));
    assert_eq!(row[1], Value::Int(7));
}

#[test]
fn client_is_a_drop_in_sql_endpoint() {
    // Code written against `SqlEndpoint` cannot tell a bare server from an
    // agent-fronted one — the transparency claim as a type-level fact.
    use relsql::{SessionCtx, SqlEndpoint};

    fn app_workload(endpoint: &dyn SqlEndpoint) -> i64 {
        let ctx = SessionCtx::new("db", "u");
        endpoint.execute("create table w (a int)", &ctx).unwrap();
        endpoint.execute("insert w values (1), (2)", &ctx).unwrap();
        match endpoint
            .execute("select sum(a) from w", &ctx)
            .unwrap()
            .scalar()
        {
            Some(Value::Int(n)) => *n,
            other => panic!("{other:?}"),
        }
    }

    // Directly against the server...
    let server = SqlServer::new();
    let direct = app_workload(server.as_ref());

    // ...and through the agent: identical results.
    let server2 = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server2)).unwrap();
    let client = agent.client("db", "u");
    let via_agent = app_workload(&client);
    assert_eq!(direct, via_agent);
}

#[test]
fn trigger_depth_limit_still_enforced_through_agent() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    client.execute("create table t (a int)").unwrap();
    client
        .execute("create trigger looper on t for insert as insert t values (1)")
        .unwrap();
    let err = client.execute("insert t values (0)").unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
}
