//! Figure 4's "event notification and action" control flow, including
//! coupling modes (the paper's §6 future work, implemented here), action
//! cascades, and parameter passing into conditions/actions.

use std::sync::Arc;

use eca_core::EcaAgent;
use led::CouplingMode;
use relsql::{SqlServer, Value};

fn setup() -> (EcaAgent, eca_core::EcaClient) {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("sentineldb", "sharma");
    client
        .execute("create table stock (symbol varchar(10), price float)")
        .unwrap();
    client
        .execute("create table audit (note varchar(60))")
        .unwrap();
    (agent, client)
}

#[test]
fn notification_counted_per_primitive_firing() {
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'x'")
        .unwrap();
    for i in 0..5 {
        client
            .execute(&format!("insert stock values ('S{i}', 1.0)"))
            .unwrap();
    }
    let stats = agent.stats();
    assert_eq!(stats.notifications, 5);
    assert_eq!(stats.malformed_notifications, 0);
    let led = agent.led_stats();
    assert_eq!(led.signals, 5);
}

#[test]
fn composite_action_writes_back_into_the_server() {
    // The action is SQL invoked *within* the server (paper abstract).
    let (_agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'a'")
        .unwrap();
    client
        .execute("create trigger t2 on stock for delete event delStk as print 'd'")
        .unwrap();
    client
        .execute(
            "create trigger t_and event addDel = delStk ^ addStk \
             as insert audit values ('composite saw it')",
        )
        .unwrap();
    // RECENT-context AND: the insert buffers addStk; the delete pairs with
    // it (first detection); the retained delStk then pairs with the second
    // insert (second detection) — recent initiators keep initiating.
    client.execute("insert stock values ('A', 1.0)").unwrap();
    let resp = client.execute("delete stock").unwrap();
    assert_eq!(resp.actions.len(), 1);
    let resp = client.execute("insert stock values ('B', 1.0)").unwrap();
    assert_eq!(resp.actions.len(), 1);
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(2)));
}

#[test]
fn deferred_coupling_waits_for_commit() {
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk DEFERRED as insert audit values ('deferred ran')")
        .unwrap();
    // DML without commit: the rule is detected but its action is deferred.
    let resp = client.execute("insert stock values ('A', 1.0)").unwrap();
    assert!(resp.actions.is_empty());
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(0)));
    // COMMIT flushes the deferred queue.
    let resp = client
        .execute("begin tran insert stock values ('B', 1.0) commit")
        .unwrap();
    assert!(
        resp.actions
            .iter()
            .any(|a| a.coupling == CouplingMode::Deferred),
        "{:?}",
        resp.actions
    );
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int(2)),
        "both deferred actions ran"
    );
    let _ = agent;
}

#[test]
fn detached_coupling_runs_on_separate_thread() {
    let (agent, client) = setup();
    client
        .execute(
            "create trigger t1 on stock for insert event addStk DETACHED \
             as insert audit values ('detached ran')",
        )
        .unwrap();
    let resp = client.execute("insert stock values ('A', 1.0)").unwrap();
    // Not part of the synchronous response...
    assert!(resp.actions.is_empty());
    // ...but completes on its own thread.
    let outcomes = agent.wait_detached();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].result.is_ok());
    assert_eq!(outcomes[0].coupling, CouplingMode::Detached);
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(1)));
}

#[test]
fn action_cascade_triggers_further_rules() {
    // An action's DML can itself raise events (rule cascades).
    let (_agent, client) = setup();
    client.execute("create table tier2 (n int)").unwrap();
    client
        .execute(
            "create trigger t1 on stock for insert event addStk \
             as insert audit values ('first tier')",
        )
        .unwrap();
    // audit insert raises its own event, whose action writes tier2.
    client
        .execute(
            "create trigger t2 on audit for insert event addAudit \
             as insert tier2 values (1)",
        )
        .unwrap();
    client.execute("insert stock values ('A', 1.0)").unwrap();
    let r = client.execute("select count(*) from tier2").unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int(1)),
        "cascade reached tier 2"
    );
}

#[test]
fn seq_requires_order_through_full_stack() {
    let (_agent, client) = setup();
    client.execute("create table orders (id int)").unwrap();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'a'")
        .unwrap();
    client
        .execute("create trigger t2 on orders for insert event addOrd as print 'o'")
        .unwrap();
    client
        .execute(
            "create trigger t_seq event ordered = addStk ; addOrd \
             as insert audit values ('in order')",
        )
        .unwrap();
    // Wrong order first: no fire.
    client.execute("insert orders values (1)").unwrap();
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(0)));
    // Right order: fires.
    client.execute("insert stock values ('A', 1.0)").unwrap();
    client.execute("insert orders values (2)").unwrap();
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(1)));
}

#[test]
fn not_operator_through_full_stack() {
    let (_agent, client) = setup();
    client.execute("create table approvals (id int)").unwrap();
    client.execute("create table shipments (id int)").unwrap();
    client
        .execute("create trigger t1 on stock for insert event request as print 'r'")
        .unwrap();
    client
        .execute("create trigger t2 on approvals for insert event approval as print 'a'")
        .unwrap();
    client
        .execute("create trigger t3 on shipments for insert event shipment as print 's'")
        .unwrap();
    // Shipment without approval after a request = violation.
    client
        .execute(
            "create trigger t_viol event violation = NOT(request, approval, shipment) \
             as insert audit values ('unapproved shipment')",
        )
        .unwrap();
    // Request → approval → shipment: no violation.
    client.execute("insert stock values ('A', 1.0)").unwrap();
    client.execute("insert approvals values (1)").unwrap();
    client.execute("insert shipments values (1)").unwrap();
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(0)));
    // Request → shipment with no approval: violation fires.
    client.execute("insert stock values ('B', 1.0)").unwrap();
    client.execute("insert shipments values (2)").unwrap();
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(1)));
}

#[test]
fn temporal_plus_through_agent_clock() {
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'a'")
        .unwrap();
    client
        .execute(
            "create trigger t_late event late = addStk PLUS [10 sec] \
             as insert audit values ('ten seconds later')",
        )
        .unwrap();
    client.execute("insert stock values ('A', 1.0)").unwrap();
    // Nothing yet.
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(0)));
    // Advance virtual time past the PLUS offset.
    let resp = agent.advance_time(11_000_000).unwrap();
    assert_eq!(resp.actions.len(), 1);
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(1)));
}

#[test]
fn periodic_fires_repeatedly_until_closed() {
    let (agent, client) = setup();
    client.execute("create table stops (id int)").unwrap();
    client
        .execute("create trigger t1 on stock for insert event openev as print 'o'")
        .unwrap();
    client
        .execute("create trigger t2 on stops for insert event closeev as print 'c'")
        .unwrap();
    client
        .execute(
            "create trigger t_p event heartbeat = P(openev, [5 sec], closeev) \
             as insert audit values ('tick')",
        )
        .unwrap();
    client.execute("insert stock values ('A', 1.0)").unwrap();
    agent.advance_time(16_000_000).unwrap(); // 3 ticks: 5s, 10s, 15s
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(3)));
    client.execute("insert stops values (1)").unwrap(); // close window
    agent.advance_time(60_000_000).unwrap();
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int(3)),
        "no ticks after close"
    );
}

#[test]
fn update_event_passes_old_and_new_context() {
    let (_agent, client) = setup();
    client
        .execute(
            "create trigger t_upd on stock for update event priceChange \
             as insert audit select symbol from stock.deleted \
                insert audit select symbol from stock.inserted",
        )
        .unwrap();
    client
        .execute("insert stock values ('IBM', 100.0)")
        .unwrap();
    client
        .execute("update stock set price = 150.0 where symbol = 'IBM'")
        .unwrap();
    let r = client.execute("select count(*) from audit").unwrap();
    // One row from deleted (old) + one from inserted (new).
    assert_eq!(r.server.scalar(), Some(&Value::Int(2)));
}

#[test]
fn led_state_limit_surfaces_as_agent_error() {
    use eca_core::AgentConfig;
    let server = SqlServer::new();
    let agent = EcaAgent::new(
        Arc::clone(&server),
        AgentConfig::builder().led_state_limit(Some(3)).build(),
    )
    .unwrap();
    let client = agent.client("db", "u");
    client.execute("create table t (a int)").unwrap();
    client.execute("create table z (a int)").unwrap();
    client
        .execute("create trigger t1 on t for insert event e1 as print 'a'")
        .unwrap();
    client
        .execute("create trigger t2 on z for insert event e2 as print 'b'")
        .unwrap();
    // CHRONICLE SEQ buffers every unmatched initiator.
    client
        .execute("create trigger tc event seqev = e1 ; e2 CHRONICLE as print 'c'")
        .unwrap();
    for i in 0..3 {
        client.execute(&format!("insert t values ({i})")).unwrap();
    }
    // Fourth unmatched initiator trips the breaker.
    let err = client.execute("insert t values (99)").unwrap_err();
    assert!(
        err.to_string().contains("over the configured limit"),
        "{err}"
    );
}

#[test]
fn malformed_notifications_are_tolerated() {
    // Anything can arrive on a UDP port; the notifier must shrug it off.
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'x'")
        .unwrap();
    // Hand-craft garbage through the engine's own sendmsg.
    client
        .execute("select syb_sendmsg('127.0.0.1', 10006, 'complete nonsense')")
        .unwrap();
    let stats = agent.stats();
    assert_eq!(stats.malformed_notifications, 1);
    // Real traffic still works afterwards.
    client.execute("insert stock values ('A', 1.0)").unwrap();
    assert_eq!(agent.stats().notifications, 1);
}
