//! Smoke test for the `eca_shell` binary: drive a scripted session through
//! stdin and check the rendered output.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_shell(script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_eca_shell"))
        .arg("--demo")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn eca_shell");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("shell exits");
    assert!(out.status.success(), "shell exited with {:?}", out.status);
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn scripted_session_detects_composite() {
    let out = run_shell(
        "insert stock values ('IBM', 104.5)\n\
         delete stock\n\
         insert stock values ('HP', 52.5)\n\
         select * from stock\n\
         \\quit\n",
    );
    // Example 1's primitive action printed.
    assert!(
        out.contains("t_addStk on primitive event addStk occurs"),
        "{out}"
    );
    // Example 2's composite fired on the delete+insert pair.
    assert!(out.contains("composite addDel detected"), "{out}");
    assert!(out.contains("fired on sentineldb.sharma.addDel"), "{out}");
    // The final select renders a table with the surviving row.
    assert!(out.contains("symbol | price"), "{out}");
    assert!(out.contains("HP"), "{out}");
}

#[test]
fn meta_commands_render() {
    let out = run_shell(
        "\\events\n\
         \\triggers\n\
         \\describe addDel\n\
         \\stats\n\
         \\deadletters\n\
         \\requeue\n\
         \\help\n\
         \\nonsense\n\
         \\quit\n",
    );
    assert!(out.contains("sentineldb.sharma.addDel"), "{out}");
    assert!(out.contains("via Led"), "{out}");
    assert!(out.contains("AND PRIMITIVE PRIMITIVE"), "{out}");
    assert!(out.contains("gateway:"), "{out}");
    assert!(out.contains("reliability:"), "{out}");
    assert!(out.contains("dead-letter queue is empty"), "{out}");
    assert!(out.contains("requeued 0 dead letter(s)"), "{out}");
    assert!(out.contains("unknown meta command"), "{out}");
}

#[test]
fn sql_errors_do_not_kill_the_shell() {
    let out = run_shell(
        "select * from no_such_table\n\
         insert stock values ('OK', 1.0)\n\
         \\quit\n",
    );
    // Error reported (on stderr), then the next command still works.
    assert!(
        out.contains("t_addStk on primitive event addStk occurs"),
        "{out}"
    );
}

#[test]
fn advance_meta_fires_temporal_rules() {
    let out = run_shell(
        "create trigger t_late event late = addStk PLUS [5 sec] as print 'late action ran'\n\
         insert stock values ('IBM', 1.0)\n\
         \\advance 6\n\
         \\quit\n",
    );
    assert!(out.contains("advanced 6s; 1 rule action(s) fired"), "{out}");
    assert!(out.contains("late action ran"), "{out}");
}
