//! The asynchronous Event Notifier thread (Figure 15): the paper's actual
//! architecture, where notifications are decoded and dispatched on a
//! dedicated lightweight thread rather than inline with the client call.

use std::sync::Arc;
use std::time::Duration;

use eca_core::EcaAgent;
use relsql::{SqlServer, Value};

fn setup() -> (EcaAgent, eca_core::EcaClient) {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    client.execute("create table t (a int)").unwrap();
    client.execute("create table audit (n int)").unwrap();
    client
        .execute("create trigger tr on t for insert event e as print 'prim'")
        .unwrap();
    client
        .execute("create trigger tc event ec = e as insert audit values (1)")
        .unwrap();
    (agent, client)
}

#[test]
fn async_mode_processes_on_the_notifier_thread() {
    let (agent, client) = setup();
    let handle = agent.start_notifier_thread();

    // In async mode the client's own response carries no composite actions.
    let resp = client.execute("insert t values (1)").unwrap();
    assert!(resp.actions.is_empty(), "actions are asynchronous now");

    for i in 2..=20 {
        client.execute(&format!("insert t values ({i})")).unwrap();
    }
    assert!(
        agent.wait_quiescent(Duration::from_secs(5)),
        "notifier thread drains the channel"
    );
    // Give the in-flight action batch a moment to land in the mailbox.
    std::thread::sleep(Duration::from_millis(20));

    agent.stop_notifier_thread();
    handle.join().unwrap();

    // Every insert was detected and acted on, just asynchronously.
    let outcomes = agent.take_async_outcomes();
    assert_eq!(outcomes.len(), 20, "one composite action per insert");
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(20)));
    assert_eq!(agent.stats().notifications, 20);
}

#[test]
fn stopping_the_thread_returns_to_synchronous_mode() {
    let (agent, client) = setup();
    let handle = agent.start_notifier_thread();
    client.execute("insert t values (1)").unwrap();
    assert!(agent.wait_quiescent(Duration::from_secs(5)));
    agent.stop_notifier_thread();
    handle.join().unwrap();

    // Back in sync mode: the response carries the action again.
    let resp = client.execute("insert t values (2)").unwrap();
    assert_eq!(resp.actions.len(), 1);
}

#[test]
fn concurrent_writers_with_async_notifier() {
    let (agent, _client) = setup();
    let handle = agent.start_notifier_thread();
    let mut writers = Vec::new();
    for k in 0..4 {
        let c = agent.client("db", &format!("w{k}"));
        writers.push(std::thread::spawn(move || {
            for i in 0..25 {
                c.execute(&format!("insert t values ({i})")).unwrap();
            }
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    assert!(agent.wait_quiescent(Duration::from_secs(10)));
    std::thread::sleep(Duration::from_millis(30));
    agent.stop_notifier_thread();
    handle.join().unwrap();
    let reader = agent.client("db", "u");
    let r = reader.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(100)));
}
