//! End-to-end saga scenarios (DESIGN.md §12): multi-step actions with
//! compensation, declared directly in the extended trigger DDL.
//!
//! Three shapes from the ISSUE: order fulfillment (reserve → charge →
//! ship, compensations release/refund), fraud hold-then-release, and an
//! inventory reservation whose hung step fails over to retry under the
//! per-attempt timeout.

use std::sync::Arc;
use std::time::Duration;

use eca_core::{AgentConfig, EcaAgent, RetryPolicy, SagaDisposition};
use relsql::{SqlServer, Value};

fn count(agent: &EcaAgent, table: &str) -> i64 {
    let r = agent
        .client("db", "u")
        .execute(&format!("select count(*) from {table}"))
        .unwrap();
    match r.server.scalar() {
        Some(Value::Int(n)) => *n,
        other => panic!("count({table}): {other:?}"),
    }
}

/// The order-fulfillment schema: step and compensation procedures are
/// ordinary user procedures created under their internal (expanded) names.
fn setup_order_schema(agent: &EcaAgent) {
    let client = agent.client("db", "u");
    for sql in [
        "create table orders (id int, status varchar(10))",
        "create table inventory (item varchar(10), qty int)",
        "create table payments (oid int, amount int)",
        "create table shipments (oid int)",
        "insert inventory values ('widget', 10)",
        "create procedure db.u.p_reserve as update inventory set qty = qty - 1 where item = 'widget'",
        "create procedure db.u.c_release as update inventory set qty = qty + 1 where item = 'widget'",
        "create procedure db.u.p_charge as insert payments values (1, 100)",
        "create procedure db.u.c_refund as delete payments",
        "create procedure db.u.p_ship as insert shipments values (1)",
    ] {
        client.execute(sql).unwrap();
    }
    client
        .execute(
            "create trigger t_order on orders for insert event newOrder as saga \
             step p_reserve compensate c_release \
             step p_charge compensate c_refund \
             step p_ship",
        )
        .unwrap();
}

#[test]
fn order_fulfillment_commits_clean() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    setup_order_schema(&agent);

    let resp = agent
        .client("db", "u")
        .execute("insert orders values (1, 'new')")
        .unwrap();
    assert_eq!(resp.actions.len(), 1);
    let a = &resp.actions[0];
    assert!(a.result.is_ok(), "{:?}", a.result);
    assert_eq!(a.saga, Some(SagaDisposition::Committed { steps: 3 }));

    // All three steps applied exactly once.
    let r = agent
        .client("db", "u")
        .execute("select qty from inventory")
        .unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(9)));
    assert_eq!(count(&agent, "payments"), 1);
    assert_eq!(count(&agent, "shipments"), 1);

    // The journal tells the whole story: started, three done steps, committed.
    let journal = agent.saga_journal().unwrap();
    assert_eq!(journal.len(), 5, "{journal:?}");
    assert_eq!(journal[0].state, "started");
    assert_eq!(journal[4].state, "committed");
    assert!(journal[1].idem.ends_with("/forward0"), "{:?}", journal[1]);

    let s = agent.stats();
    assert_eq!(s.sagas_started, 1);
    assert_eq!(s.sagas_committed, 1);
    assert_eq!(s.saga_steps_executed, 3);
    assert_eq!(s.sagas_compensated, 0);
    assert_eq!(s.dead_lettered, 0);
}

#[test]
fn failed_ship_compensates_in_reverse_and_is_not_dead_lettered() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    setup_order_schema(&agent);

    // The shipping dependency is down: every attempt at p_ship fails.
    agent.set_action_fault_injector(Some(Arc::new(|req, _attempt| {
        if req.proc_name.ends_with("p_ship") {
            Some("shipping outage".into())
        } else {
            None
        }
    })));

    let resp = agent
        .client("db", "u")
        .execute("insert orders values (1, 'new')")
        .unwrap();
    assert_eq!(resp.actions.len(), 1);
    let a = &resp.actions[0];
    assert!(a.result.is_err());
    assert_eq!(
        a.saga,
        Some(SagaDisposition::Compensated {
            failed_step: 2,
            compensations: 2
        })
    );

    // Net effect is exactly zero: the charge was refunded and the
    // reservation released, in reverse order.
    let r = agent
        .client("db", "u")
        .execute("select qty from inventory")
        .unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(10)));
    assert_eq!(count(&agent, "payments"), 0);
    assert_eq!(count(&agent, "shipments"), 0);

    // Compensated is settled by design — not a dead letter.
    assert!(agent.dead_letters().is_empty());
    let s = agent.stats();
    assert_eq!(s.sagas_compensated, 1);
    assert_eq!(s.saga_compensations, 2);
    assert_eq!(s.dead_lettered, 0);

    // The journal records the failure marker and the terminal state.
    let journal = agent.saga_journal().unwrap();
    assert!(journal.iter().any(|r| r.state == "failed" && r.step == 2));
    assert_eq!(journal.last().unwrap().state, "compensated");
}

#[test]
fn fraud_hold_releases_when_review_fails_in_sql() {
    // The failing step fails *inside SQL* (its procedure references a
    // table that does not exist) — no injector, so the failure is durable
    // and deterministic across process lives.
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    for sql in [
        "create table txns (id int, amount int)",
        "create table holds (txn int)",
        "create procedure db.u.p_hold as insert holds values (1)",
        "create procedure db.u.c_unhold as delete holds",
        "create procedure db.u.p_review as insert fraud_review values (1)",
    ] {
        client.execute(sql).unwrap();
    }
    client
        .execute(
            "create trigger t_fraud on txns for insert event bigTxn as saga \
             step p_hold compensate c_unhold \
             step p_review",
        )
        .unwrap();

    let resp = client.execute("insert txns values (1, 9000)").unwrap();
    let a = &resp.actions[0];
    assert!(a.result.is_err());
    assert_eq!(
        a.saga,
        Some(SagaDisposition::Compensated {
            failed_step: 1,
            compensations: 1
        })
    );
    assert_eq!(count(&agent, "holds"), 0, "hold released");
}

#[test]
fn hung_reservation_times_out_and_retry_commits() {
    // Satellite: per-attempt wall-clock timeout. The first attempt at
    // p_reserve hangs (and would eventually fail); the deadline abandons
    // it and the retry succeeds, so the saga still commits.
    let server = SqlServer::new();
    let agent = EcaAgent::new(
        Arc::clone(&server),
        AgentConfig::builder()
            .retry(
                RetryPolicy::retries(2, Duration::ZERO, Duration::ZERO)
                    .with_attempt_timeout(Duration::from_millis(50)),
            )
            .build(),
    )
    .unwrap();
    setup_order_schema(&agent);

    agent.set_action_fault_injector(Some(Arc::new(|req, attempt| {
        if req.proc_name.ends_with("p_reserve") && attempt == 1 {
            // A hung dependency: sleeps past the deadline, then fails —
            // the abandoned attempt must never reach the server.
            std::thread::sleep(Duration::from_millis(300));
            Some("slow failure".into())
        } else {
            None
        }
    })));

    let resp = agent
        .client("db", "u")
        .execute("insert orders values (1, 'new')")
        .unwrap();
    let a = &resp.actions[0];
    assert!(a.result.is_ok(), "{:?}", a.result);
    assert_eq!(a.saga, Some(SagaDisposition::Committed { steps: 3 }));
    let r = agent
        .client("db", "u")
        .execute("select qty from inventory")
        .unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int(9)),
        "the timed-out attempt did not double-apply"
    );
    assert!(agent.stats().retries >= 1);
}

#[test]
fn saga_requires_existing_step_procedures() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    client.execute("create table t (a int)").unwrap();
    let err = client
        .execute("create trigger tr on t for insert event e as saga step nope")
        .unwrap_err();
    assert!(err.to_string().contains("does not exist"), "{err}");
}

#[test]
fn duplicate_firing_of_a_settled_saga_is_a_no_op() {
    // Requeue of a settled saga probes the journal and re-applies nothing.
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    setup_order_schema(&agent);
    let client = agent.client("db", "u");
    client.execute("insert orders values (1, 'new')").unwrap();
    assert_eq!(count(&agent, "payments"), 1);

    // Fire the same occurrence again through the dead-letter requeue path:
    // park a copy by making every step fail once, then requeue it.
    let journal_before = agent.saga_journal().unwrap();
    let s = agent.stats();
    assert_eq!(s.sagas_committed, 1);

    // A second insert is a *new* occurrence (fresh vNo) and a new saga.
    client.execute("insert orders values (2, 'new')").unwrap();
    assert_eq!(count(&agent, "payments"), 2);
    let journal_after = agent.saga_journal().unwrap();
    assert_eq!(journal_after.len(), journal_before.len() * 2);
    let keys: std::collections::BTreeSet<_> = journal_after.iter().map(|r| r.key.clone()).collect();
    assert_eq!(keys.len(), 2, "distinct saga keys per occurrence: {keys:?}");
}

#[test]
fn parked_saga_survives_cold_restart_and_requeue_settles_it() {
    // A compensation that itself fails parks the saga (journal
    // unterminated) and dead-letters it durably; after a hard crash the
    // new agent resumes compensation, and once the dependency is fixed a
    // requeue settles the saga exactly once.
    let storage = relsql::FaultyStorage::new();
    let durable = || {
        let s: Arc<dyn relsql::Storage> = storage.clone();
        SqlServer::open_with_storage(
            s,
            relsql::DurabilityConfig {
                fsync: relsql::FsyncPolicy::Always,
                checkpoint_bytes: 0,
            },
            relsql::EngineConfig::default(),
        )
        .expect("open durable server")
    };

    {
        let server = durable();
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        let client = agent.client("db", "u");
        for sql in [
            "create table txns (id int)",
            "create table holds (txn int)",
            // The compensation writes through a table that does not exist
            // yet — releasing the hold fails until ops creates it.
            "create procedure db.u.p_hold as insert holds values (1)",
            "create procedure db.u.c_unhold as insert unhold_log values (1)\ndelete holds",
            "create procedure db.u.p_review as insert fraud_review values (1)",
        ] {
            client.execute(sql).unwrap();
        }
        client
            .execute(
                "create trigger t_fraud on txns for insert event bigTxn as saga \
                 step p_hold compensate c_unhold \
                 step p_review",
            )
            .unwrap();
        let resp = client.execute("insert txns values (1)").unwrap();
        let a = &resp.actions[0];
        assert!(
            matches!(a.saga, Some(SagaDisposition::Parked { .. })),
            "{a:?}"
        );
        assert_eq!(
            agent.dead_letters().len(),
            1,
            "parked sagas are dead-lettered"
        );
        // The hold is still in place: compensation could not run.
        assert_eq!(count(&agent, "holds"), 1);
    }
    storage.crash_to_durable();

    let server = durable();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    agent.wait_detached();
    // Restart re-attempted the compensation (still failing) — the saga is
    // still parked, still dead-lettered, still holding.
    assert!(!agent.dead_letters().is_empty(), "DLQ survives the crash");
    assert_eq!(count(&agent, "holds"), 1);

    // Ops fixes the dependency; requeue resumes compensation to the end.
    let client = agent.client("db", "u");
    client.execute("create table unhold_log (n int)").unwrap();
    agent.requeue_dead_letters();
    assert_eq!(count(&agent, "holds"), 0, "hold finally released");
    let journal = agent.saga_journal().unwrap();
    assert_eq!(journal.last().unwrap().state, "compensated");
    assert!(agent.dead_letters().is_empty(), "queue drained");

    // And the settled saga stays settled across yet another restart.
    drop(agent);
    storage.crash_to_durable();
    let server = durable();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    agent.wait_detached();
    assert_eq!(count(&agent, "holds"), 0);
    assert_eq!(
        count(&agent, "unhold_log"),
        1,
        "compensation ran exactly once"
    );
}
