//! Every Snoop operator form, written in the agent's `CREATE TRIGGER ...
//! EVENT name = <expr>` syntax (Figure 12), created and exercised.

use std::sync::Arc;

use eca_core::EcaAgent;
use relsql::{SqlServer, Value};

fn setup() -> (EcaAgent, eca_core::EcaClient) {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    for t in ["ta", "tb", "tc_tab", "hits"] {
        client
            .execute(&format!("create table {t} (v int)"))
            .unwrap();
    }
    client
        .execute("create trigger t_a on ta for insert event ea as print 'a'")
        .unwrap();
    client
        .execute("create trigger t_b on tb for insert event eb as print 'b'")
        .unwrap();
    client
        .execute("create trigger t_c on tc_tab for insert event ec as print 'c'")
        .unwrap();
    (agent, client)
}

fn hits(client: &eca_core::EcaClient) -> i64 {
    match client
        .execute("select count(*) from hits")
        .unwrap()
        .server
        .scalar()
    {
        Some(Value::Int(n)) => *n,
        other => panic!("{other:?}"),
    }
}

#[test]
fn keyword_operators_parse_and_fire() {
    let (_agent, client) = setup();
    client
        .execute("create trigger tr1 event k_or = ea OR eb as insert hits values (1)")
        .unwrap();
    client
        .execute("create trigger tr2 event k_and = ea AND eb as insert hits values (2)")
        .unwrap();
    client
        .execute("create trigger tr3 event k_seq = ea SEQ eb as insert hits values (3)")
        .unwrap();
    client.execute("insert ta values (1)").unwrap(); // OR fires
    assert_eq!(hits(&client), 1);
    client.execute("insert tb values (1)").unwrap(); // OR + AND + SEQ fire
    assert_eq!(hits(&client), 4);
}

#[test]
fn ternary_operators_through_syntax() {
    let (agent, client) = setup();
    client
        .execute(
            "create trigger tr1 event w_not = NOT(ea, eb, ec) \
             as insert hits values (1)",
        )
        .unwrap();
    client
        .execute(
            "create trigger tr2 event w_a = A(ea, eb, ec) CONTINUOUS \
             as insert hits values (2)",
        )
        .unwrap();
    client
        .execute(
            "create trigger tr3 event w_astar = A*(ea, eb, ec) \
             as insert hits values (3)",
        )
        .unwrap();
    assert_eq!(
        agent
            .event_names()
            .iter()
            .filter(|e| e.contains("w_"))
            .count(),
        3
    );
    client.execute("insert ta values (1)").unwrap(); // opens all windows
    client.execute("insert tb values (1)").unwrap(); // A fires; NOT cancelled
    assert_eq!(hits(&client), 1, "A fired once");
    client.execute("insert tc_tab values (1)").unwrap(); // A* fires; NOT stays cancelled
    assert_eq!(hits(&client), 2, "A* fired at close, NOT suppressed");
    // A clean window with no mid: NOT fires at close, and A* fires too
    // (an empty A* window still detects — it is a windowed collector).
    client.execute("insert ta values (2)").unwrap();
    client.execute("insert tc_tab values (2)").unwrap();
    assert_eq!(hits(&client), 4);
}

#[test]
fn temporal_operators_through_syntax() {
    let (agent, client) = setup();
    client
        .execute(
            "create trigger tr1 event t_plus = ea PLUS [2 sec] \
             as insert hits values (1)",
        )
        .unwrap();
    client
        .execute(
            "create trigger tr2 event t_p = P(ea, [1 sec], ec) \
             as insert hits values (2)",
        )
        .unwrap();
    client
        .execute(
            "create trigger tr3 event t_pstar = P*(ea, [1 sec]:ts, ec) \
             as insert hits values (3)",
        )
        .unwrap();
    client.execute("insert ta values (1)").unwrap();
    assert_eq!(hits(&client), 0);
    // +2.5s: PLUS fires once; P fired at 1s and 2s.
    agent.advance_time(2_500_000).unwrap();
    assert_eq!(hits(&client), 3);
    // Closing the window fires P* once (accumulated).
    client.execute("insert tc_tab values (1)").unwrap();
    assert_eq!(hits(&client), 4);
}

#[test]
fn parenthesized_and_mixed_precedence_expressions() {
    let (agent, client) = setup();
    client
        .execute(
            "create trigger tr1 event mix = (ea | eb) ; ec CHRONICLE 3 \
             as insert hits values (1)",
        )
        .unwrap();
    assert_eq!(
        agent.describe_event("db.u.mix").as_deref(),
        Some("SEQ OR PRIMITIVE PRIMITIVE PRIMITIVE")
    );
    client.execute("insert tb values (1)").unwrap(); // OR side
    client.execute("insert tc_tab values (1)").unwrap(); // terminator
    assert_eq!(hits(&client), 1);
    let info = agent.trigger_info("db.u.tr1").unwrap();
    assert_eq!(info.priority, 3);
    assert_eq!(info.context, led::ParameterContext::Chronicle);
}

#[test]
fn symbolic_and_keyword_forms_equivalent_through_agent() {
    let (agent, client) = setup();
    client
        .execute("create trigger tr1 event s1 = ea ^ eb as print 'x'")
        .unwrap();
    client
        .execute("create trigger tr2 event s2 = ea AND eb as print 'x'")
        .unwrap();
    assert_eq!(
        agent.describe_event("db.u.s1"),
        agent.describe_event("db.u.s2")
    );
    // Persisted expressions normalize to the same canonical display form.
    let pm = eca_core::PersistentManager::new(agent.server());
    let comps = pm.load_composites().unwrap();
    assert_eq!(comps.len(), 2);
    assert_eq!(comps[0].expr_src, comps[1].expr_src);
    assert_eq!(comps[0].expr_src, "(db.u.ea ^ db.u.eb)");
}
