//! Cross-feature interaction edge cases: drops with pending work, recovery
//! after drops, update events feeding composites, temporal rules with
//! non-immediate couplings.

use std::sync::Arc;

use eca_core::{EcaAgent, PersistentManager};
use relsql::{SqlServer, Value};

fn setup() -> (EcaAgent, eca_core::EcaClient) {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    client.execute("create table t (a int)").unwrap();
    client.execute("create table audit (n int)").unwrap();
    (agent, client)
}

#[test]
fn dropping_trigger_discards_its_pending_deferred_actions() {
    let (agent, client) = setup();
    client
        .execute(
            "create trigger tr on t for insert event e DEFERRED \
             as insert audit values (1)",
        )
        .unwrap();
    client.execute("insert t values (1)").unwrap();
    // A deferred action is queued; dropping the trigger must purge it.
    client.execute("drop trigger tr").unwrap();
    let resp = agent.flush_deferred().unwrap();
    assert!(
        resp.actions.is_empty(),
        "dropped rule's deferred action purged"
    );
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(0)));
}

#[test]
fn recovery_after_drop_leaves_no_ghosts() {
    let server = SqlServer::new();
    {
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        let client = agent.client("db", "u");
        client.execute("create table t (a int)").unwrap();
        client
            .execute("create trigger tr on t for insert event e as print 'x'")
            .unwrap();
        client
            .execute("create trigger tc event c = e ; e as print 'c'")
            .unwrap();
        client.execute("drop trigger tc").unwrap();
        client.execute("drop event c").unwrap();
        client.execute("drop trigger tr").unwrap();
        client.execute("drop event e").unwrap();
    }
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    assert!(agent.event_names().is_empty(), "{:?}", agent.event_names());
    assert!(agent.trigger_names().is_empty());
    let pm = PersistentManager::new(&server);
    assert!(pm.load_primitives().unwrap().is_empty());
    assert!(pm.load_composites().unwrap().is_empty());
    assert!(pm.load_triggers().unwrap().is_empty());
}

#[test]
fn update_event_feeds_composite_with_both_shadows() {
    let (_agent, client) = setup();
    client.execute("create table confirms (c int)").unwrap();
    client.execute("create table seen_old (a int)").unwrap();
    client.execute("create table seen_new (a int)").unwrap();
    client
        .execute("create trigger t1 on t for update event changed as print 'u'")
        .unwrap();
    client
        .execute("create trigger t2 on confirms for insert event confirmed as print 'c'")
        .unwrap();
    client
        .execute(
            "create trigger tc event audited = changed ; confirmed \
             as insert seen_old select a from t.deleted \
                insert seen_new select a from t.inserted",
        )
        .unwrap();
    client.execute("insert t values (1)").unwrap();
    client.execute("update t set a = 2").unwrap();
    let resp = client.execute("insert confirms values (1)").unwrap();
    assert_eq!(resp.actions.len(), 1);
    let r = client.execute("select a from seen_old").unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int(1)),
        "old row via deleted shadow"
    );
    let r = client.execute("select a from seen_new").unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int(2)),
        "new row via inserted shadow"
    );
}

#[test]
fn temporal_rule_with_deferred_coupling() {
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on t for insert event e as print 'x'")
        .unwrap();
    client
        .execute(
            "create trigger tl event late = e PLUS [5 sec] DEFERRED \
             as insert audit values (1)",
        )
        .unwrap();
    client.execute("insert t values (1)").unwrap();
    // Timer fires on advance, but the action defers until flush.
    let resp = agent.advance_time(6_000_000).unwrap();
    assert!(resp.actions.is_empty());
    let resp = agent.flush_deferred().unwrap();
    assert_eq!(resp.actions.len(), 1);
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(1)));
}

#[test]
fn temporal_rule_with_detached_coupling() {
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on t for insert event e as print 'x'")
        .unwrap();
    client
        .execute(
            "create trigger tl event late = e PLUS [5 sec] DETACHED \
             as insert audit values (1)",
        )
        .unwrap();
    client.execute("insert t values (1)").unwrap();
    let resp = agent.advance_time(6_000_000).unwrap();
    assert!(resp.actions.is_empty());
    let outcomes = agent.wait_detached();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].result.is_ok());
}

#[test]
fn event_recreated_after_drop_starts_fresh_vno() {
    let (agent, client) = setup();
    client
        .execute("create trigger tr on t for insert event e as print 'x'")
        .unwrap();
    for i in 0..3 {
        client.execute(&format!("insert t values ({i})")).unwrap();
    }
    client.execute("drop trigger tr").unwrap();
    client.execute("drop event e").unwrap();
    // Recreate the same event name on the same slot.
    client
        .execute("create trigger tr on t for insert event e as print 'x'")
        .unwrap();
    client.execute("insert t values (9)").unwrap();
    let pm = PersistentManager::new(agent.server());
    let prims = pm.load_primitives().unwrap();
    assert_eq!(prims.len(), 1);
    assert_eq!(prims[0].vno, 1, "fresh occurrence numbering");
}

#[test]
fn composite_on_mixed_native_and_led_primitive_rules() {
    // A primitive event with one IMMEDIATE (native-embedded) and one
    // DETACHED (LED) trigger, plus a composite over the same event: all
    // three dispatch paths coexist per occurrence.
    let (agent, client) = setup();
    client.execute("create table log_n (n int)").unwrap();
    client.execute("create table log_d (n int)").unwrap();
    client.execute("create table log_c (n int)").unwrap();
    client
        .execute("create trigger tn on t for insert event e as insert log_n values (1)")
        .unwrap();
    client
        .execute("create trigger td event e DETACHED as insert log_d values (1)")
        .unwrap();
    client
        .execute("create trigger tc event c = e as insert log_c values (1)")
        .unwrap();
    client.execute("insert t values (1)").unwrap();
    agent.wait_detached();
    for (table, label) in [
        ("log_n", "native"),
        ("log_d", "detached"),
        ("log_c", "composite"),
    ] {
        let r = client
            .execute(&format!("select count(*) from {table}"))
            .unwrap();
        assert_eq!(r.server.scalar(), Some(&Value::Int(1)), "{label} path ran");
    }
}

#[test]
fn same_action_table_from_multiple_rules_is_consistent() {
    let (_agent, client) = setup();
    // Ten rules all appending to the same audit table from one event.
    client
        .execute("create trigger t0 on t for insert event e as print 'x'")
        .unwrap();
    for i in 0..10 {
        client
            .execute(&format!(
                "create trigger tr{i} event c{i} = e as insert audit values ({i})"
            ))
            .unwrap();
    }
    client.execute("insert t values (1)").unwrap();
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(10)));
}
