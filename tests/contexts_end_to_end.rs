//! §5.6 / Figure 17: all four parameter contexts exercised through the
//! whole stack — native triggers stamp vNos, the LED composes parameter
//! lists per context, the Action Handler fills `sysContext`, and the
//! generated procedure joins it against the shadow tables.

use std::sync::Arc;

use eca_core::EcaAgent;
use relsql::{SqlServer, Value};

/// Build the classic two-event scenario and return a client.
/// `a` rows are inserted into table `a`; composite = ea-then-eb (SEQ) so
/// the number of `a` initiators paired per `b` terminator depends on the
/// context.
fn setup(context: &str) -> (EcaAgent, eca_core::EcaClient) {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    client.execute("create table a (x int)").unwrap();
    client.execute("create table b (y int)").unwrap();
    // `seen` records which a.x values the action observed per firing.
    client.execute("create table seen (x int)").unwrap();
    client
        .execute("create trigger t1 on a for insert event ea as print 'ea'")
        .unwrap();
    client
        .execute("create trigger t2 on b for insert event eb as print 'eb'")
        .unwrap();
    client
        .execute(&format!(
            "create trigger t3 event pair = ea ; eb {context} \
             as insert seen select x from a.inserted"
        ))
        .unwrap();
    (agent, client)
}

fn seen_values(client: &eca_core::EcaClient) -> Vec<i64> {
    let r = client.execute("select x from seen order by x").unwrap();
    r.server
        .last_select()
        .unwrap()
        .rows
        .iter()
        .map(|row| match &row[0] {
            Value::Int(n) => *n,
            other => panic!("{other:?}"),
        })
        .collect()
}

/// Three a-inserts (x = 10, 20, 30) then one b-insert.
fn three_a_one_b(client: &eca_core::EcaClient) {
    for x in [10, 20, 30] {
        client.execute(&format!("insert a values ({x})")).unwrap();
    }
    client.execute("insert b values (1)").unwrap();
}

#[test]
fn recent_context_sees_only_latest_initiator() {
    let (_agent, client) = setup("RECENT");
    three_a_one_b(&client);
    assert_eq!(seen_values(&client), vec![30]);
}

#[test]
fn chronicle_context_sees_oldest_initiator() {
    let (_agent, client) = setup("CHRONICLE");
    three_a_one_b(&client);
    assert_eq!(seen_values(&client), vec![10]);
    // A second terminator consumes the next-oldest.
    client.execute("insert b values (2)").unwrap();
    assert_eq!(seen_values(&client), vec![10, 20]);
}

#[test]
fn continuous_context_fires_once_per_open_initiator() {
    let (_agent, client) = setup("CONTINUOUS");
    let resp = {
        for x in [10, 20, 30] {
            client.execute(&format!("insert a values ({x})")).unwrap();
        }
        client.execute("insert b values (1)").unwrap()
    };
    // Three detections from one terminator.
    assert_eq!(resp.actions.len(), 3);
    assert_eq!(seen_values(&client), vec![10, 20, 30]);
}

#[test]
fn cumulative_context_merges_everything_into_one_detection() {
    let (_agent, client) = setup("CUMULATIVE");
    let resp = {
        for x in [10, 20, 30] {
            client.execute(&format!("insert a values ({x})")).unwrap();
        }
        client.execute("insert b values (1)").unwrap()
    };
    assert_eq!(resp.actions.len(), 1, "single merged detection");
    // Its single action saw all three initiators' rows.
    assert_eq!(seen_values(&client), vec![10, 20, 30]);
}

#[test]
fn recent_initiator_keeps_initiating() {
    let (_agent, client) = setup("RECENT");
    client.execute("insert a values (5)").unwrap();
    client.execute("insert b values (1)").unwrap();
    client.execute("insert b values (2)").unwrap();
    // The same (most recent) initiator pairs with both terminators.
    assert_eq!(seen_values(&client), vec![5, 5]);
}

#[test]
fn syscontext_rows_reflect_last_firing() {
    let (agent, client) = setup("RECENT");
    three_a_one_b(&client);
    let snap = agent.server().snapshot();
    let r = snap.database().table("syscontext").unwrap().rows();
    // Two rows: one per constituent shadow table of the occurrence.
    assert_eq!(r.len(), 2);
    let ea = r
        .iter()
        .find(|row| row[0] == Value::Str("db.u.ea_inserted".into()))
        .expect("ea shadow row");
    assert_eq!(ea[1], Value::Str("RECENT".into()));
    // The ea param carries the vNo of the *third* (most recent) insert.
    assert_eq!(ea[2], Value::Int(3));
    let eb = r
        .iter()
        .find(|row| row[0] == Value::Str("db.u.eb_inserted".into()))
        .expect("eb shadow row");
    assert_eq!(eb[2], Value::Int(1));
}

#[test]
fn astar_accumulation_reaches_the_action() {
    // A*(open, tick, close): the action must see *every* tick row gathered
    // during the window — accumulated params drive the sysContext join.
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    client.execute("create table windows (w int)").unwrap();
    client.execute("create table ticks (v int)").unwrap();
    client.execute("create table closes (c int)").unwrap();
    client.execute("create table gathered (v int)").unwrap();
    client
        .execute("create trigger t1 on windows for insert event openw as print 'o'")
        .unwrap();
    client
        .execute("create trigger t2 on ticks for insert event tick as print 't'")
        .unwrap();
    client
        .execute("create trigger t3 on closes for insert event closew as print 'c'")
        .unwrap();
    client
        .execute(
            "create trigger t4 event gathered_ev = A*(openw, tick, closew) \
             as insert gathered select v from ticks.inserted",
        )
        .unwrap();
    client.execute("insert windows values (1)").unwrap();
    for v in [10, 20, 30] {
        client
            .execute(&format!("insert ticks values ({v})"))
            .unwrap();
    }
    let resp = client.execute("insert closes values (1)").unwrap();
    assert_eq!(resp.actions.len(), 1, "A* detects once at close");
    let r = client.execute("select v from gathered order by v").unwrap();
    let vals: Vec<i64> = r
        .server
        .last_select()
        .unwrap()
        .rows
        .iter()
        .map(|row| match row[0] {
            Value::Int(n) => n,
            _ => panic!(),
        })
        .collect();
    assert_eq!(
        vals,
        vec![10, 20, 30],
        "all accumulated ticks reached the action"
    );
    let _ = agent;
}

#[test]
fn different_contexts_on_same_constituents_coexist() {
    // Two composite events over the same primitives, different contexts;
    // their sysContext rows are keyed by (tableName, context) so they do
    // not clobber each other.
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    client.execute("create table a (x int)").unwrap();
    client.execute("create table b (y int)").unwrap();
    client.execute("create table seen_r (x int)").unwrap();
    client.execute("create table seen_c (x int)").unwrap();
    client
        .execute("create trigger t1 on a for insert event ea as print 'ea'")
        .unwrap();
    client
        .execute("create trigger t2 on b for insert event eb as print 'eb'")
        .unwrap();
    client
        .execute(
            "create trigger tr event pr = ea ; eb RECENT \
             as insert seen_r select x from a.inserted",
        )
        .unwrap();
    client
        .execute(
            "create trigger tc event pc = ea ; eb CUMULATIVE \
             as insert seen_c select x from a.inserted",
        )
        .unwrap();
    for x in [1, 2] {
        client.execute(&format!("insert a values ({x})")).unwrap();
    }
    client.execute("insert b values (9)").unwrap();
    let count = |t: &str| {
        let r = client
            .execute(&format!("select count(*) from {t}"))
            .unwrap();
        match r.server.scalar() {
            Some(Value::Int(n)) => *n,
            other => panic!("{other:?}"),
        }
    };
    assert_eq!(count("seen_r"), 1, "recent saw only x=2");
    assert_eq!(count("seen_c"), 2, "cumulative saw both");
}
