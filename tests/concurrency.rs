//! Concurrency: the agent is a multithread program (§3) — multiple clients,
//! detached actions, and the notification pump must compose without
//! deadlock or lost events. The multi-table stress tests additionally pin
//! down the per-table lock scheduler: disjoint-table DML runs in parallel,
//! same-table DML serializes, and the outcome is always equivalent to a
//! serialized replay of the same workload.

use std::sync::Arc;

use eca_core::EcaAgent;
use relsql::{SqlServer, Value};

fn scalar_i64(client: &eca_core::EcaClient, sql: &str) -> i64 {
    match client.execute(sql).unwrap().server.scalar() {
        Some(Value::Int(n)) => *n,
        other => panic!("{sql}: expected int scalar, got {other:?}"),
    }
}

#[test]
fn many_clients_insert_concurrently() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let setup = agent.client("db", "admin");
    setup.execute("create table t (a int)").unwrap();
    setup.execute("create table audit (n int)").unwrap();
    setup
        .execute("create trigger tr on t for insert event e as insert audit values (1)")
        .unwrap();

    let threads = 8;
    let per_thread = 25;
    let mut handles = Vec::new();
    for k in 0..threads {
        let client = agent.client("db", &format!("user{k}"));
        handles.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                client.execute(&format!("insert t values ({i})")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let r = setup.execute("select count(*) from t").unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int((threads * per_thread) as i64))
    );
    // Every insert's action ran exactly once — no notification lost or
    // double-processed under concurrency.
    let r = setup.execute("select count(*) from audit").unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int((threads * per_thread) as i64))
    );
    assert_eq!(agent.stats().notifications, (threads * per_thread) as u64);
}

#[test]
fn concurrent_rule_creation_on_distinct_tables() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let setup = agent.client("db", "admin");
    for i in 0..8 {
        setup
            .execute(&format!("create table t{i} (a int)"))
            .unwrap();
    }
    let mut handles = Vec::new();
    for i in 0..8 {
        let client = agent.client("db", "admin");
        handles.push(std::thread::spawn(move || {
            client
                .execute(&format!(
                    "create trigger tr{i} on t{i} for insert event ev{i} as print 'x'"
                ))
                .unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(agent.trigger_names().len(), 8);
    assert_eq!(agent.event_names().len(), 8);
}

#[test]
fn detached_actions_from_concurrent_clients() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let setup = agent.client("db", "admin");
    setup.execute("create table t (a int)").unwrap();
    setup.execute("create table audit (n int)").unwrap();
    setup
        .execute(
            "create trigger tr on t for insert event e DETACHED \
             as insert audit values (1)",
        )
        .unwrap();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let client = agent.client("db", "admin");
        handles.push(std::thread::spawn(move || {
            for i in 0..10 {
                client.execute(&format!("insert t values ({i})")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let outcomes = agent.wait_detached();
    assert_eq!(outcomes.len(), 40);
    assert!(outcomes.iter().all(|o| o.result.is_ok()));
    let r = setup.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(40)));
}

#[test]
fn readers_and_writers_interleave() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let setup = agent.client("db", "admin");
    setup.execute("create table t (a int)").unwrap();
    setup
        .execute("create trigger tr on t for insert event e as print 'x'")
        .unwrap();
    let writer = agent.client("db", "writer");
    let reader = agent.client("db", "reader");
    let w = std::thread::spawn(move || {
        for i in 0..100 {
            writer.execute(&format!("insert t values ({i})")).unwrap();
        }
    });
    let r = std::thread::spawn(move || {
        let mut last = 0i64;
        for _ in 0..100 {
            let resp = reader.execute("select count(*) from t").unwrap();
            if let Some(Value::Int(n)) = resp.server.scalar() {
                // Counts are monotonically non-decreasing.
                assert!(*n >= last);
                last = *n;
            }
        }
    });
    w.join().unwrap();
    r.join().unwrap();
}

#[test]
fn rule_creation_races_dml_on_the_same_table() {
    // One client defines a rule on `t` while another is mid-flight with
    // inserts on `t`. Requirements: no deadlock (trigger DDL regenerates
    // the native trigger while DML holds server sessions), and afterwards
    // the system behaves exactly like a serialized run — every post-create
    // insert fires the rule exactly once.
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let setup = agent.client("db", "admin");
    setup.execute("create table t (a int)").unwrap();
    setup.execute("create table audit (n int)").unwrap();

    let m = 50;
    let ddl = agent.client("db", "ddl");
    let dml = agent.client("db", "dml");
    let creator = std::thread::spawn(move || {
        ddl.execute("create trigger tr on t for insert event e as insert audit values (1)")
            .unwrap();
    });
    let writer = std::thread::spawn(move || {
        for i in 0..m {
            dml.execute(&format!("insert t values ({i})")).unwrap();
        }
    });
    creator.join().unwrap();
    writer.join().unwrap();

    // Inserts that ran before the trigger existed fired nothing; the rest
    // fired exactly once. The count is whatever the race produced, but it
    // must be consistent — and bounded by the insert count.
    let during = match setup
        .execute("select count(*) from audit")
        .unwrap()
        .server
        .scalar()
    {
        Some(Value::Int(n)) => *n,
        other => panic!("expected a count, got {other:?}"),
    };
    assert!(
        (0..=m).contains(&during),
        "audit count {during} out of range"
    );
    assert_eq!(agent.stats().notifications, during as u64);

    // From here on the run is equivalent to a serialized one: m more
    // inserts must fire exactly m more actions.
    for i in 0..m {
        setup.execute(&format!("insert t values ({i})")).unwrap();
    }
    let r = setup.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(during + m)));
    let r = setup.execute("select count(*) from t").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(2 * m)));
}

#[test]
fn index_ddl_races_disjoint_dml_without_deadlock() {
    // One client churns CREATE/DROP INDEX on `cold` while another hammers
    // DML on `hot`. Index DDL schedules exclusively (catalog mutation), so
    // the requirement is liveness — the exclusive writer must drain the
    // parallel readers and vice versa, never deadlock — plus a consistent
    // end state.
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let setup = agent.client("db", "admin");
    setup.execute("create table hot (k int, v int)").unwrap();
    setup.execute("create table cold (k int)").unwrap();

    let writer = {
        let client = agent.client("db", "writer");
        std::thread::spawn(move || {
            for i in 0..150 {
                client
                    .execute(&format!("insert hot values ({i}, {})", i % 7))
                    .unwrap();
                client
                    .execute(&format!("select v from hot where k = {i}"))
                    .unwrap();
            }
        })
    };
    let indexer = {
        let client = agent.client("db", "indexer");
        std::thread::spawn(move || {
            for _ in 0..25 {
                client.execute("create hash index cix on cold (k)").unwrap();
                client.execute("drop index cix").unwrap();
            }
        })
    };
    writer.join().unwrap();
    indexer.join().unwrap();
    assert_eq!(scalar_i64(&setup, "select count(*) from hot"), 150);

    // Index DDL is a catalog mutation: it must bump the plan-cache epoch,
    // so a statement shape that was hot before the CREATE INDEX re-parses
    // and re-plans — and the fresh plan routes through the new index.
    setup
        .execute("select count(*) from hot where k = 1")
        .unwrap();
    setup.execute("create index hix on hot (k)").unwrap();
    let warm = server.server_stats();
    setup
        .execute("select count(*) from hot where k = 3")
        .unwrap();
    let after = server.server_stats();
    assert_eq!(after.plan_cache_misses - warm.plan_cache_misses, 1);
    assert_eq!(after.plan_cache_hits, warm.plan_cache_hits);
    assert!(
        after.index_hits > warm.index_hits,
        "replan should probe hix"
    );
    assert_eq!(
        scalar_i64(&setup, "select count(*) from hot where k = 3"),
        1
    );
}

/// The scheduler's correctness contract under a mixed workload: four
/// disjoint evented tables written in parallel, one evented table written
/// by two racing clients, and one table whose rule is created mid-flight —
/// all at once. Afterwards every event's occurrence numbers form exactly
/// 1..=n (nothing lost, nothing duplicated) and the deterministic tables
/// match a serialized replay of the same logical workload.
#[test]
fn multi_table_stress_matches_serialized_replay() {
    use std::collections::HashMap;

    fn install(client: &eca_core::EcaClient) {
        for i in 0..4 {
            client
                .execute(&format!("create table d{i} (a int)"))
                .unwrap();
            client
                .execute(&format!("create table audit{i} (n int)"))
                .unwrap();
            client
                .execute(&format!(
                    "create trigger trd{i} on d{i} for insert event ed{i} \
                     as insert audit{i} values (1)"
                ))
                .unwrap();
        }
        client.execute("create table s (a int)").unwrap();
        client.execute("create table a_s (n int)").unwrap();
        client
            .execute("create trigger trs on s for insert event es as insert a_s values (1)")
            .unwrap();
        client.execute("create table r (a int)").unwrap();
        client.execute("create table ar (n int)").unwrap();
    }

    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let setup = agent.client("db", "admin");
    install(&setup);

    // Record every occurrence the LED raises, keyed by internal event name.
    let vnos: Arc<std::sync::Mutex<HashMap<String, Vec<i64>>>> = Arc::default();
    {
        let vnos = Arc::clone(&vnos);
        agent.add_occurrence_listener(Arc::new(
            move |event: &str, params: &[led::Param], _ts: i64| {
                if let Some(v) = params.first().and_then(|p| p.vno) {
                    vnos.lock()
                        .unwrap()
                        .entry(event.to_string())
                        .or_default()
                        .push(v);
                }
            },
        ));
    }

    let per_table: i64 = 50;
    let mut handles = Vec::new();
    // Disjoint-table writers: one thread per table, eligible for parallel
    // scheduling (their footprints never intersect).
    for i in 0..4 {
        let c = agent.client("db", &format!("w{i}"));
        handles.push(std::thread::spawn(move || {
            for v in 0..per_table {
                c.execute(&format!("insert d{i} values ({v})")).unwrap();
            }
        }));
    }
    // Same-table writers: two threads on `s`, serialized by its table lock.
    for k in 0..2 {
        let c = agent.client("db", &format!("s{k}"));
        handles.push(std::thread::spawn(move || {
            for v in 0..25 {
                c.execute(&format!("insert s values ({v})")).unwrap();
            }
        }));
    }
    // Rule creation (exclusive batch) racing DML on the same table.
    let ddl = agent.client("db", "rddl");
    handles.push(std::thread::spawn(move || {
        ddl.execute("create trigger trr on r for insert event er as insert ar values (1)")
            .unwrap();
    }));
    let dml = agent.client("db", "rdml");
    handles.push(std::thread::spawn(move || {
        for v in 0..25 {
            dml.execute(&format!("insert r values ({v})")).unwrap();
        }
    }));
    for h in handles {
        h.join().unwrap();
    }

    // Firing counts: one native action per insert, none lost or doubled.
    for i in 0..4 {
        assert_eq!(
            scalar_i64(&setup, &format!("select count(*) from d{i}")),
            per_table
        );
        assert_eq!(
            scalar_i64(&setup, &format!("select count(*) from audit{i}")),
            per_table,
            "audit{i}: native trigger fired exactly once per insert"
        );
    }
    assert_eq!(scalar_i64(&setup, "select count(*) from s"), 50);
    assert_eq!(scalar_i64(&setup, "select count(*) from a_s"), 50);
    assert_eq!(scalar_i64(&setup, "select count(*) from r"), 25);
    let during = scalar_i64(&setup, "select count(*) from ar");
    assert!((0..=25).contains(&during), "ar count {during} out of range");

    // Per-event vNo accounting: the multiset of raised occurrence numbers
    // is exactly 1..=n. (Raise *order* can interleave across pumping
    // threads, so order is asserted separately on a single-writer tail.)
    {
        let vnos = vnos.lock().unwrap();
        for i in 0..4 {
            let mut got = vnos
                .get(&format!("db.admin.ed{i}"))
                .cloned()
                .unwrap_or_default();
            got.sort_unstable();
            assert_eq!(
                got,
                (1..=per_table).collect::<Vec<i64>>(),
                "ed{i}: lost, duplicated, or out-of-range occurrence"
            );
        }
        let mut got = vnos.get("db.admin.es").cloned().unwrap_or_default();
        got.sort_unstable();
        assert_eq!(
            got,
            (1..=50).collect::<Vec<i64>>(),
            "es under same-table race"
        );
        // `er` races its own registration: native-trigger firings that land
        // between the server-side install and the agent-side registry seed
        // are history (they fill `ar` but seed the tracker's watermark), so
        // the raised occurrences form a contiguous *suffix* ending at the
        // firing count — still no gaps and no duplicates.
        let mut got = vnos.get("db.rddl.er").cloned().unwrap_or_default();
        got.sort_unstable();
        let first = during - got.len() as i64 + 1;
        assert_eq!(
            got,
            (first..=during).collect::<Vec<i64>>(),
            "er occurrences are a gap-free, duplicate-free suffix of 1..={during}"
        );
    }

    // Serialized replay: the same logical workload, single-threaded, must
    // leave identical contents in every deterministic table. (`ar` depends
    // on where the CREATE TRIGGER landed in the race, so it is excluded;
    // `r` itself is still compared.)
    let server2 = SqlServer::new();
    let agent2 = EcaAgent::with_defaults(Arc::clone(&server2)).unwrap();
    let replay = agent2.client("db", "admin");
    install(&replay);
    replay
        .execute("create trigger trr on r for insert event er as insert ar values (1)")
        .unwrap();
    for i in 0..4 {
        for v in 0..per_table {
            replay
                .execute(&format!("insert d{i} values ({v})"))
                .unwrap();
        }
    }
    for _k in 0..2 {
        for v in 0..25 {
            replay.execute(&format!("insert s values ({v})")).unwrap();
        }
    }
    for v in 0..25 {
        replay.execute(&format!("insert r values ({v})")).unwrap();
    }
    for t in ["d0", "d1", "d2", "d3", "s", "r"] {
        assert_eq!(
            scalar_i64(&setup, &format!("select count(*) from {t}")),
            scalar_i64(&replay, &format!("select count(*) from {t}")),
            "{t}: count differs from serialized replay"
        );
        assert_eq!(
            scalar_i64(&setup, &format!("select sum(a) from {t}")),
            scalar_i64(&replay, &format!("select sum(a) from {t}")),
            "{t}: contents differ from serialized replay"
        );
    }
    for t in ["audit0", "audit1", "audit2", "audit3", "a_s"] {
        assert_eq!(
            scalar_i64(&setup, &format!("select count(*) from {t}")),
            scalar_i64(&replay, &format!("select count(*) from {t}")),
            "{t}: firing count differs from serialized replay"
        );
    }

    // Single-writer tail: with only this thread executing, occurrences must
    // reach the listener in strict vNo order (the emission-ordering
    // guarantee the pipelined detector relies on).
    let already = vnos
        .lock()
        .unwrap()
        .get("db.admin.ed0")
        .map(|v| v.len())
        .unwrap_or(0);
    for v in 0..10 {
        setup.execute(&format!("insert d0 values ({v})")).unwrap();
    }
    let all = vnos.lock().unwrap();
    let tail = &all.get("db.admin.ed0").unwrap()[already..];
    assert_eq!(
        tail,
        (per_table + 1..=per_table + 10).collect::<Vec<i64>>(),
        "single-writer occurrences arrive in vNo order"
    );
}

/// Regression test for the Figure 11 read-back race (EXPERIMENTS.md
/// deviation 3): by the time `syb_sendmsg` emits a notification carrying
/// vNo *n*, the shadow row stamped with *n* must already be visible to a
/// concurrent reader. A probing sink checks the shadow table from inside
/// every `send()` — before the pipelined detector stage could possibly get
/// the datagram — so any emit-before-stamp reordering is caught exactly.
#[test]
fn notification_never_precedes_its_shadow_row() {
    use std::sync::atomic::{AtomicU64, Ordering};

    use relsql::notify::{Datagram, NotificationSink};

    struct ProbeSink {
        server: Arc<SqlServer>,
        sent: AtomicU64,
        violations: AtomicU64,
    }
    impl NotificationSink for ProbeSink {
        fn send(&self, d: Datagram) {
            self.sent.fetch_add(1, Ordering::SeqCst);
            let vno: i64 = d
                .payload
                .rsplit(' ')
                .next()
                .and_then(|w| w.trim().parse().ok())
                .expect("payload ends with the vNo");
            // Read-only inspection: `send` runs on the emitting session's
            // thread while it holds table locks, so going back through
            // `execute` would self-deadlock; `with_table_rows` uses the
            // recursive read lock instead (a `snapshot()` would clone every
            // table and could block on the emitting batch's own row guards).
            let visible = self
                .server
                .with_table_rows("t_shadow", |rows| {
                    rows.iter().any(|row| row.last() == Some(&Value::Int(vno)))
                })
                .unwrap_or(false);
            if !visible {
                self.violations.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    let server = SqlServer::new();
    let probe = Arc::new(ProbeSink {
        server: Arc::clone(&server),
        sent: AtomicU64::new(0),
        violations: AtomicU64::new(0),
    });
    server.set_sink(Arc::clone(&probe) as Arc<dyn NotificationSink>);

    // A hand-written trigger in the exact shape codegen emits (Figure 11):
    // bump the version counter, stamp the shadow rows, then notify.
    let admin = server.session("db", "u");
    admin.execute("create table t (a int)").unwrap();
    admin.execute("create table t_ver (vNo int)").unwrap();
    admin.execute("insert t_ver values (0)").unwrap();
    admin
        .execute("create table t_shadow (a int, vNo int)")
        .unwrap();
    admin
        .execute(
            "create trigger nt on t for insert as\n\
             update t_ver set vNo = vNo + 1\n\
             insert t_shadow select * from inserted, t_ver\n\
             select syb_sendmsg('10.0.0.1', 10006, 'u t insert begin e ' + str(vNo)) from t_ver",
        )
        .unwrap();

    let mut handles = Vec::new();
    for k in 0..4 {
        let session = server.session("db", &format!("w{k}"));
        handles.push(std::thread::spawn(move || {
            for i in 0..25 {
                session.execute(&format!("insert t values ({i})")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(probe.sent.load(Ordering::SeqCst), 100);
    assert_eq!(
        probe.violations.load(Ordering::SeqCst),
        0,
        "a notification was emitted before its shadow row became visible"
    );
    let snap = server.snapshot();
    let shadow_rows = snap.database().table("t_shadow").unwrap().rows().len();
    assert_eq!(shadow_rows, 100);
}

/// The pipelined detector stage behind a deliberately tiny admission
/// queue: datagrams that overflow are dropped (UDP semantics) and must be
/// repaired by the exactly-once anti-entropy sweep from the durable vNo
/// counters — every occurrence is still raised exactly once.
#[test]
fn bounded_detector_queue_stays_exactly_once() {
    use std::time::{Duration, Instant};

    use eca_core::AgentConfig;

    let server = SqlServer::new();
    let agent = EcaAgent::new(
        Arc::clone(&server),
        AgentConfig::builder().notify_queue_depth(Some(8)).build(),
    )
    .unwrap();
    let client = agent.client("db", "u");
    client.execute("create table t (a int)").unwrap();
    client.execute("create table audit (n int)").unwrap();
    client
        .execute("create trigger tr on t for insert event e as print 'p'")
        .unwrap();
    client
        .execute("create trigger tc event ec = e as insert audit values (1)")
        .unwrap();

    let handle = agent.start_notifier_thread();
    let mut writers = Vec::new();
    for k in 0..4 {
        let c = agent.client("db", &format!("w{k}"));
        writers.push(std::thread::spawn(move || {
            for i in 0..50 {
                c.execute(&format!("insert t values ({i})")).unwrap();
            }
        }));
    }
    for w in writers {
        w.join().unwrap();
    }

    // Overflowed datagrams are only recovered by the detector thread's
    // anti-entropy pass, so poll for convergence rather than for an empty
    // channel.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut audit = 0;
    while Instant::now() < deadline {
        audit = scalar_i64(&client, "select count(*) from audit");
        if audit == 200 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    agent.stop_notifier_thread();
    handle.join().unwrap();

    assert_eq!(scalar_i64(&client, "select count(*) from t"), 200);
    assert_eq!(
        audit, 200,
        "every occurrence raised exactly once despite queue overflow"
    );
    let stats = agent.stats();
    assert_eq!(stats.notifications, 200, "raised exactly once each");
    // The bounded sink accounts for what it dropped; with a fast detector
    // this can legitimately be zero, so only check it is recorded sanely.
    assert!(stats.notify_overflows <= 200);
}
