//! Concurrency: the agent is a multithread program (§3) — multiple clients,
//! detached actions, and the notification pump must compose without
//! deadlock or lost events.

use std::sync::Arc;

use eca_core::EcaAgent;
use relsql::{SqlServer, Value};

#[test]
fn many_clients_insert_concurrently() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let setup = agent.client("db", "admin");
    setup.execute("create table t (a int)").unwrap();
    setup.execute("create table audit (n int)").unwrap();
    setup
        .execute("create trigger tr on t for insert event e as insert audit values (1)")
        .unwrap();

    let threads = 8;
    let per_thread = 25;
    let mut handles = Vec::new();
    for k in 0..threads {
        let client = agent.client("db", &format!("user{k}"));
        handles.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                client.execute(&format!("insert t values ({i})")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let r = setup.execute("select count(*) from t").unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int((threads * per_thread) as i64))
    );
    // Every insert's action ran exactly once — no notification lost or
    // double-processed under concurrency.
    let r = setup.execute("select count(*) from audit").unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int((threads * per_thread) as i64))
    );
    assert_eq!(agent.stats().notifications, (threads * per_thread) as u64);
}

#[test]
fn concurrent_rule_creation_on_distinct_tables() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let setup = agent.client("db", "admin");
    for i in 0..8 {
        setup
            .execute(&format!("create table t{i} (a int)"))
            .unwrap();
    }
    let mut handles = Vec::new();
    for i in 0..8 {
        let client = agent.client("db", "admin");
        handles.push(std::thread::spawn(move || {
            client
                .execute(&format!(
                    "create trigger tr{i} on t{i} for insert event ev{i} as print 'x'"
                ))
                .unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(agent.trigger_names().len(), 8);
    assert_eq!(agent.event_names().len(), 8);
}

#[test]
fn detached_actions_from_concurrent_clients() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let setup = agent.client("db", "admin");
    setup.execute("create table t (a int)").unwrap();
    setup.execute("create table audit (n int)").unwrap();
    setup
        .execute(
            "create trigger tr on t for insert event e DETACHED \
             as insert audit values (1)",
        )
        .unwrap();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let client = agent.client("db", "admin");
        handles.push(std::thread::spawn(move || {
            for i in 0..10 {
                client.execute(&format!("insert t values ({i})")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let outcomes = agent.wait_detached();
    assert_eq!(outcomes.len(), 40);
    assert!(outcomes.iter().all(|o| o.result.is_ok()));
    let r = setup.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(40)));
}

#[test]
fn readers_and_writers_interleave() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let setup = agent.client("db", "admin");
    setup.execute("create table t (a int)").unwrap();
    setup
        .execute("create trigger tr on t for insert event e as print 'x'")
        .unwrap();
    let writer = agent.client("db", "writer");
    let reader = agent.client("db", "reader");
    let w = std::thread::spawn(move || {
        for i in 0..100 {
            writer.execute(&format!("insert t values ({i})")).unwrap();
        }
    });
    let r = std::thread::spawn(move || {
        let mut last = 0i64;
        for _ in 0..100 {
            let resp = reader.execute("select count(*) from t").unwrap();
            if let Some(Value::Int(n)) = resp.server.scalar() {
                // Counts are monotonically non-decreasing.
                assert!(*n >= last);
                last = *n;
            }
        }
    });
    w.join().unwrap();
    r.join().unwrap();
}

#[test]
fn rule_creation_races_dml_on_the_same_table() {
    // One client defines a rule on `t` while another is mid-flight with
    // inserts on `t`. Requirements: no deadlock (trigger DDL regenerates
    // the native trigger while DML holds server sessions), and afterwards
    // the system behaves exactly like a serialized run — every post-create
    // insert fires the rule exactly once.
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let setup = agent.client("db", "admin");
    setup.execute("create table t (a int)").unwrap();
    setup.execute("create table audit (n int)").unwrap();

    let m = 50;
    let ddl = agent.client("db", "ddl");
    let dml = agent.client("db", "dml");
    let creator = std::thread::spawn(move || {
        ddl.execute("create trigger tr on t for insert event e as insert audit values (1)")
            .unwrap();
    });
    let writer = std::thread::spawn(move || {
        for i in 0..m {
            dml.execute(&format!("insert t values ({i})")).unwrap();
        }
    });
    creator.join().unwrap();
    writer.join().unwrap();

    // Inserts that ran before the trigger existed fired nothing; the rest
    // fired exactly once. The count is whatever the race produced, but it
    // must be consistent — and bounded by the insert count.
    let during = match setup
        .execute("select count(*) from audit")
        .unwrap()
        .server
        .scalar()
    {
        Some(Value::Int(n)) => *n,
        other => panic!("expected a count, got {other:?}"),
    };
    assert!(
        (0..=m).contains(&during),
        "audit count {during} out of range"
    );
    assert_eq!(agent.stats().notifications, during as u64);

    // From here on the run is equivalent to a serialized one: m more
    // inserts must fire exactly m more actions.
    for i in 0..m {
        setup.execute(&format!("insert t values ({i})")).unwrap();
    }
    let r = setup.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(during + m)));
    let r = setup.execute("select count(*) from t").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(2 * m)));
}
