//! Figure 3's "create ECA rules" control flow: filtering, parsing, name
//! checking, code generation, persistence — including the error paths the
//! figure routes back to the client.

use std::sync::Arc;

use eca_core::{AgentError, EcaAgent, PersistentManager};
use relsql::SqlServer;

fn setup() -> (EcaAgent, eca_core::EcaClient) {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("sentineldb", "sharma");
    client
        .execute("create table stock (symbol varchar(10), price float)")
        .unwrap();
    (agent, client)
}

#[test]
fn plain_sql_is_untouched_by_the_filter() {
    let (agent, client) = setup();
    // Step 3-4: non-ECA commands go straight through and come straight back.
    let resp = client
        .execute("insert stock values ('A', 1.0) select count(*) from stock")
        .unwrap();
    assert_eq!(resp.server.scalar(), Some(&relsql::Value::Int(1)));
    assert!(resp.messages.is_empty());
    assert_eq!(agent.stats().eca_commands, 0);
    assert_eq!(agent.gateway_stats().forwarded, 2); // create table + this
}

#[test]
fn native_trigger_syntax_still_reaches_the_server() {
    // Transparency: a native (non-EVENT) trigger definition is the server's
    // business, not the agent's.
    let (agent, client) = setup();
    client
        .execute("create trigger plain_tr on stock for insert as print 'native'")
        .unwrap();
    assert_eq!(agent.stats().eca_commands, 0);
    assert!(agent.trigger_names().is_empty());
    let resp = client.execute("insert stock values ('A', 1.0)").unwrap();
    assert_eq!(resp.server.messages, vec!["native"]);
}

#[test]
fn syntax_error_reported_without_side_effects() {
    let (agent, client) = setup();
    let err = client
        .execute("create trigger t event e = ^ bogus as print 'x'")
        .unwrap_err();
    assert!(matches!(
        err,
        AgentError::Snoop(_) | AgentError::EcaSyntax(_)
    ));
    assert!(agent.event_names().is_empty());
    assert!(agent.trigger_names().is_empty());
    let pm = PersistentManager::new(agent.server());
    assert!(pm.load_triggers().unwrap().is_empty());
}

#[test]
fn unknown_constituent_event_is_a_name_check_error() {
    let (agent, client) = setup();
    let err = client
        .execute("create trigger t event e = ghost ^ phantom as print 'x'")
        .unwrap_err();
    assert!(err.to_string().contains("not defined"), "{err}");
    // The failed definition left no half-built composite in the LED.
    assert!(agent.event_names().is_empty());
}

#[test]
fn missing_table_rejected() {
    let (_agent, client) = setup();
    let err = client
        .execute("create trigger t on nosuch for insert event e as print 'x'")
        .unwrap_err();
    assert!(err.to_string().contains("does not exist"), "{err}");
}

#[test]
fn duplicate_event_and_trigger_names_rejected() {
    let (_agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'x'")
        .unwrap();
    // Same event name again.
    let err = client
        .execute("create trigger t2 on stock for update event addStk as print 'x'")
        .unwrap_err();
    assert!(err.to_string().contains("already exists"), "{err}");
    // Same trigger name again (on the existing event).
    let err = client
        .execute("create trigger t1 event addStk as print 'x'")
        .unwrap_err();
    assert!(err.to_string().contains("already exists"), "{err}");
}

#[test]
fn one_event_per_table_operation_slot() {
    let (_agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event e1 as print 'x'")
        .unwrap();
    let err = client
        .execute("create trigger t2 on stock for insert event e2 as print 'x'")
        .unwrap_err();
    assert!(err.to_string().contains("reuse"), "{err}");
}

#[test]
fn event_reuse_via_on_event_form() {
    // Contribution #2/#4: reuse a defined event; multiple triggers on it.
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'one'")
        .unwrap();
    client
        .execute("create trigger t2 event addStk as print 'two'")
        .unwrap();
    client
        .execute("create trigger t3 event addStk 5 as print 'three'")
        .unwrap();
    assert_eq!(agent.trigger_names().len(), 3);
    let resp = client.execute("insert stock values ('A', 1.0)").unwrap();
    // All three actions ran inside the server (IMMEDIATE native path).
    let msgs = &resp.server.messages;
    assert!(msgs.contains(&"one".to_string()), "{msgs:?}");
    assert!(msgs.contains(&"two".to_string()));
    assert!(msgs.contains(&"three".to_string()));
    // Priority 5 runs before the priority-0 ones.
    let pos3 = msgs.iter().position(|m| m == "three").unwrap();
    let pos1 = msgs.iter().position(|m| m == "one").unwrap();
    assert!(pos3 < pos1, "higher priority action first: {msgs:?}");
}

#[test]
fn composite_over_composite_event_reuse() {
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'a'")
        .unwrap();
    client
        .execute("create trigger t2 on stock for delete event delStk as print 'd'")
        .unwrap();
    client
        .execute("create trigger t3 event both = addStk ^ delStk as print 'both'")
        .unwrap();
    // A composite built from another composite.
    client
        .execute("create trigger t4 event seq2 = both ; addStk as print 'seq2'")
        .unwrap();
    assert!(agent
        .event_names()
        .contains(&"sentineldb.sharma.seq2".to_string()));
    client.execute("insert stock values ('A', 1.0)").unwrap();
    client.execute("delete stock").unwrap(); // `both` occurs here
    let resp = client.execute("insert stock values ('B', 2.0)").unwrap();
    assert!(
        resp.actions.iter().any(|a| a.rule.ends_with("t4")),
        "seq2 = both ; addStk should fire: {:?}",
        resp.actions.iter().map(|a| &a.rule).collect::<Vec<_>>()
    );
}

#[test]
fn persistence_rows_written_for_every_form() {
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'a'")
        .unwrap();
    client
        .execute("create trigger t2 event addStk DEFERRED as print 'b'")
        .unwrap();
    client
        .execute("create trigger t3 event dbl = addStk ; addStk as print 'c'")
        .unwrap();
    let pm = PersistentManager::new(agent.server());
    assert_eq!(pm.load_primitives().unwrap().len(), 1);
    assert_eq!(pm.load_composites().unwrap().len(), 1);
    let trigs = pm.load_triggers().unwrap();
    assert_eq!(trigs.len(), 3);
    let t1 = trigs.iter().find(|t| t.name.ends_with("t1")).unwrap();
    assert_eq!(t1.kind, "native");
    let t2 = trigs.iter().find(|t| t.name.ends_with("t2")).unwrap();
    assert_eq!(t2.kind, "led");
    assert_eq!(t2.coupling, "DEFERRED");
}

#[test]
fn drop_trigger_full_cycle() {
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'one'")
        .unwrap();
    client
        .execute("create trigger t2 event addStk as print 'two'")
        .unwrap();
    // Drop the second trigger; the first keeps firing.
    client.execute("drop trigger t2").unwrap();
    assert_eq!(agent.trigger_names().len(), 1);
    let resp = client.execute("insert stock values ('A', 1.0)").unwrap();
    assert!(resp.server.messages.contains(&"one".to_string()));
    assert!(!resp.server.messages.contains(&"two".to_string()));
    // Dropping the last trigger leaves the event defined and persistent.
    client
        .execute("drop trigger t_1_does_not_exist_so_forwarded_fails")
        .unwrap_err();
    client.execute("drop trigger t1").unwrap();
    assert!(agent.trigger_names().is_empty());
    assert!(agent
        .event_names()
        .contains(&"sentineldb.sharma.addStk".to_string()));
    // The event can be picked up again by a new trigger.
    client
        .execute("create trigger t3 event addStk as print 'three'")
        .unwrap();
    let resp = client.execute("insert stock values ('B', 1.0)").unwrap();
    assert!(resp.server.messages.contains(&"three".to_string()));
}

#[test]
fn drop_event_extension() {
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'a'")
        .unwrap();
    client
        .execute("create trigger tc event c = addStk ; addStk as print 'c'")
        .unwrap();
    // Guarded: triggers exist.
    assert!(client.execute("drop event addStk").is_err());
    client.execute("drop trigger t1").unwrap();
    // Guarded: composite c references addStk.
    let err = client.execute("drop event addStk").unwrap_err();
    assert!(err.to_string().contains("referenced"), "{err}");
    client.execute("drop trigger tc").unwrap();
    client.execute("drop event c").unwrap();
    client.execute("drop event addStk").unwrap();
    assert!(agent.event_names().is_empty());
    // Shadow tables are gone from the server.
    assert!(!agent
        .server()
        .snapshot()
        .database()
        .has_table("sentineldb.sharma.addStk_inserted"));
    // The slot is free: a new event on (stock, insert) works.
    client
        .execute("create trigger t9 on stock for insert event fresh as print 'f'")
        .unwrap();
}

#[test]
fn trigger_info_exposes_structured_metadata() {
    use eca_core::TriggerKind;
    use led::{CouplingMode, ParameterContext};
    let (agent, client) = setup();
    client
        .execute(
            "create trigger t1 on stock for insert event addStk DETACHED CHRONICLE 7 \
             as print 'x'",
        )
        .unwrap();
    let info = agent.trigger_info("sentineldb.sharma.t1").unwrap();
    assert_eq!(info.event, "sentineldb.sharma.addStk");
    assert_eq!(info.coupling, CouplingMode::Detached);
    assert_eq!(info.context, ParameterContext::Chronicle);
    assert_eq!(info.priority, 7);
    assert_eq!(
        info.kind,
        TriggerKind::Led,
        "non-immediate goes via the LED"
    );
    assert_eq!(info.proc_name, "sentineldb.sharma.t1__Proc");
    assert_eq!(agent.triggers().len(), 1);
    assert!(agent.trigger_info("ghost").is_none());
}

#[test]
fn describe_event_shows_operator_tree() {
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'a'")
        .unwrap();
    client
        .execute("create trigger t2 on stock for delete event delStk as print 'd'")
        .unwrap();
    client
        .execute("create trigger t3 event x = (addStk ^ delStk) ; addStk as print 'x'")
        .unwrap();
    // addStk appears twice in the expression but is one shared node in the
    // event graph, so it prints once — sharing, not a tree.
    assert_eq!(
        agent.describe_event("sentineldb.sharma.x").as_deref(),
        Some("SEQ AND PRIMITIVE PRIMITIVE")
    );
    assert_eq!(
        agent.describe_event("sentineldb.sharma.addStk").as_deref(),
        Some("PRIMITIVE")
    );
    assert!(agent.describe_event("nope").is_none());
}

#[test]
fn failed_primitive_creation_rolls_back_server_artifacts() {
    let (agent, client) = setup();
    // The action body fails to parse when the generated procedure is
    // installed, *after* the shadow tables were created.
    let err = client
        .execute("create trigger t1 on stock for insert event addStk as frobnicate nonsense")
        .unwrap_err();
    assert!(matches!(err, AgentError::Sql(_)), "{err}");
    // Nothing half-installed survives...
    assert!(agent.event_names().is_empty());
    assert!(!agent
        .server()
        .snapshot()
        .database()
        .has_table("sentineldb.sharma.addStk_inserted"));
    // ...so the same (corrected) command can be retried successfully.
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'ok now'")
        .unwrap();
    let resp = client.execute("insert stock values ('A', 1.0)").unwrap();
    assert!(resp.server.messages.contains(&"ok now".to_string()));
}

#[test]
fn failed_composite_creation_rolls_back_led_registration() {
    let (agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'a'")
        .unwrap();
    let err = client
        .execute("create trigger tc event cc = addStk ; addStk as utter garbage here")
        .unwrap_err();
    assert!(matches!(err, AgentError::Sql(_)), "{err}");
    assert!(
        !agent
            .event_names()
            .contains(&"sentineldb.sharma.cc".to_string()),
        "half-defined composite must not linger in the LED"
    );
    // Retry with a valid action.
    client
        .execute("create trigger tc event cc = addStk ; addStk as print 'cc'")
        .unwrap();
    client.execute("insert stock values ('A', 1.0)").unwrap();
    let resp = client.execute("insert stock values ('B', 1.0)").unwrap();
    assert!(resp.actions.iter().any(|a| a.rule.ends_with("tc")));
}

#[test]
fn owner_qualified_names_expand_per_section_5_1() {
    let (agent, client) = setup();
    client
        .execute("create trigger bob.t1 on stock for insert event bob.addStk as print 'x'")
        .unwrap();
    assert!(agent
        .event_names()
        .contains(&"sentineldb.bob.addStk".to_string()));
    assert!(agent
        .trigger_names()
        .contains(&"sentineldb.bob.t1".to_string()));
}
