//! Persistence and recovery (Figures 5–8): events and rules survive an
//! agent restart because they live in the server's native tables; a fresh
//! agent over the same server restores everything and keeps detecting.

use std::sync::Arc;

use eca_core::{AgentConfig, EcaAgent, PersistentManager};
use relsql::{SqlServer, Value};

fn build_rules(server: &Arc<SqlServer>) -> EcaAgent {
    let agent = EcaAgent::with_defaults(Arc::clone(server)).unwrap();
    let client = agent.client("sentineldb", "sharma");
    client
        .execute("create table stock (symbol varchar(10), price float)")
        .unwrap();
    client
        .execute("create table audit (note varchar(60))")
        .unwrap();
    client
        .execute("create trigger t_add on stock for insert event addStk as print 'add'")
        .unwrap();
    client
        .execute("create trigger t_del on stock for delete event delStk as print 'del'")
        .unwrap();
    client
        .execute(
            "create trigger t_and event addDel = delStk ^ addStk CHRONICLE \
             as insert audit values ('pair seen')",
        )
        .unwrap();
    agent
}

#[test]
fn fresh_agent_restores_events_rules_and_keeps_detecting() {
    let server = SqlServer::new();
    let agent1 = build_rules(&server);
    // Produce one occurrence pre-restart so vNo > 0.
    agent1
        .client("sentineldb", "sharma")
        .execute("insert stock values ('A', 1.0)")
        .unwrap();
    let events_before = agent1.event_names();
    let triggers_before = agent1.trigger_names();
    drop(agent1);

    // "Restart": a brand-new agent over the same server.
    let agent2 = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    assert_eq!(agent2.event_names(), events_before);
    assert_eq!(agent2.trigger_names(), triggers_before);

    // Detection still works end to end after recovery.
    let client = agent2.client("sentineldb", "sharma");
    client.execute("delete stock").unwrap(); // delStk
    let resp = client.execute("insert stock values ('B', 2.0)").unwrap(); // addStk
    assert!(
        resp.actions.iter().any(|a| a.rule.ends_with("t_and")),
        "composite rule fires after recovery"
    );
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(1)));
}

#[test]
fn vno_counters_continue_across_restart() {
    let server = SqlServer::new();
    let agent1 = build_rules(&server);
    let client = agent1.client("sentineldb", "sharma");
    for i in 0..3 {
        client
            .execute(&format!("insert stock values ('S{i}', 1.0)"))
            .unwrap();
    }
    drop(client);
    drop(agent1);
    let agent2 = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    agent2
        .client("sentineldb", "sharma")
        .execute("insert stock values ('S3', 1.0)")
        .unwrap();
    let pm = PersistentManager::new(&server);
    let prims = pm.load_primitives().unwrap();
    let add = prims.iter().find(|p| p.event.ends_with("addStk")).unwrap();
    assert_eq!(add.vno, 4, "occurrence numbering is continuous");
}

#[test]
fn deferred_rules_recover_with_their_coupling() {
    let server = SqlServer::new();
    {
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        let client = agent.client("db", "u");
        client.execute("create table t (a int)").unwrap();
        client.execute("create table audit (n int)").unwrap();
        client
            .execute(
                "create trigger tr on t for insert event e1 DEFERRED \
                 as insert audit values (1)",
            )
            .unwrap();
    }
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("db", "u");
    let resp = client.execute("insert t values (1)").unwrap();
    assert!(resp.actions.is_empty(), "still deferred after recovery");
    let resp = client.execute("begin tran commit").unwrap();
    assert_eq!(resp.actions.len(), 1);
}

#[test]
fn recovery_is_idempotent_across_many_restarts() {
    let server = SqlServer::new();
    build_rules(&server);
    for _ in 0..3 {
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        assert_eq!(agent.event_names().len(), 3);
        assert_eq!(agent.trigger_names().len(), 3);
    }
    // No duplicate persistence rows accumulated.
    let pm = PersistentManager::new(&server);
    assert_eq!(pm.load_primitives().unwrap().len(), 2);
    assert_eq!(pm.load_composites().unwrap().len(), 1);
    assert_eq!(pm.load_triggers().unwrap().len(), 3);
}

#[test]
fn composite_of_composite_recovers_in_dependency_order() {
    let server = SqlServer::new();
    {
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        let client = agent.client("db", "u");
        client.execute("create table t (a int)").unwrap();
        client
            .execute("create trigger t1 on t for insert event base as print 'b'")
            .unwrap();
        client
            .execute("create trigger t2 event mid = base ; base as print 'm'")
            .unwrap();
        client
            .execute("create trigger t3 event top = mid ; base as print 't'")
            .unwrap();
    }
    // `top` depends on `mid` which depends on `base`; SysCompositeEvent
    // ordering is by timestamp, but recovery must tolerate any order.
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    assert_eq!(agent.event_names().len(), 3);
    let client = agent.client("db", "u");
    // base, base → mid; then base → top.
    client.execute("insert t values (1)").unwrap();
    client.execute("insert t values (2)").unwrap();
    let resp = client.execute("insert t values (3)").unwrap();
    assert!(
        resp.actions.iter().any(|a| a.rule.ends_with("t3")),
        "nested composite fires after recovery: {:?}",
        resp.actions.iter().map(|a| &a.rule).collect::<Vec<_>>()
    );
}

#[test]
fn system_tables_schema_matches_paper_figures() {
    // Figures 5, 6, 7, 17 — column names and order (types are widened per
    // DESIGN.md but the shape is the paper's).
    let server = SqlServer::new();
    let _agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let names = |t: &str| {
        server
            .snapshot()
            .database()
            .table(&t.to_ascii_lowercase())
            .unwrap()
            .schema
            .names()
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        names("SysPrimitiveEvent"),
        vec![
            "dbName",
            "userName",
            "eventName",
            "tableName",
            "operation",
            "timeStamp",
            "vNo"
        ]
    );
    assert_eq!(
        names("SysCompositeEvent"),
        vec![
            "dbName",
            "userName",
            "eventName",
            "eventDescribe",
            "timeStamp",
            "coupling",
            "context",
            "priority"
        ]
    );
    // SysEcaTrigger: the paper's six columns plus the four recovery
    // extensions documented in DESIGN.md.
    assert_eq!(
        names("SysEcaTrigger")[..6],
        [
            "dbName",
            "userName",
            "triggerName",
            "triggerProc",
            "timeStamp",
            "eventName"
        ]
    );
    assert_eq!(names("sysContext"), vec!["tableName", "context", "vNo"]);
    // Agent extension (not in the paper): per-event delivery high-water
    // marks backing the exactly-once pump.
    assert_eq!(names("SysAgentWatermark"), vec!["eventName", "hwm"]);
}

#[test]
fn system_tables_are_queryable_by_clients() {
    // The rules ARE data: clients can introspect the agent's state with
    // ordinary SQL through the very same connection — the payoff of
    // persisting rules "using the native database functionality".
    let server = SqlServer::new();
    let agent = build_rules(&server);
    let client = agent.client("sentineldb", "sharma");
    let r = client
        .execute(
            "select triggerName from SysEcaTrigger \
             where eventName = 'sentineldb.sharma.addDel'",
        )
        .unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Str("sentineldb.sharma.t_and".into()))
    );
    let r = client
        .execute("select count(*) from SysPrimitiveEvent where operation = 'insert'")
        .unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(1)));
    let r = client
        .execute("select eventDescribe from SysCompositeEvent")
        .unwrap();
    match r.server.scalar() {
        Some(Value::Str(expr)) => assert!(expr.contains('^'), "{expr}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn corrupted_trigger_row_fails_recovery_loudly() {
    // Recovery must not silently default a mangled coupling or context to
    // IMMEDIATE/RECENT — a trigger firing with the wrong semantics is far
    // worse than an agent that refuses to start.
    let server = SqlServer::new();
    build_rules(&server);
    {
        // Vandalise the persisted coupling through the front door: the
        // system tables are ordinary tables, so ordinary SQL can break them.
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        agent
            .client("sentineldb", "sharma")
            .execute("update SysEcaTrigger set coupling = 'BOGUS' where triggerName = 'sentineldb.sharma.t_add'")
            .unwrap();
    }
    let msg = match EcaAgent::with_defaults(Arc::clone(&server)) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("recovery should refuse the corrupted row"),
    };
    assert!(msg.contains("corrupted"), "{msg}");
    assert!(msg.contains("t_add"), "names the bad trigger: {msg}");
}

#[test]
fn corrupted_composite_context_fails_recovery_loudly() {
    let server = SqlServer::new();
    build_rules(&server);
    {
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        agent
            .client("sentineldb", "sharma")
            .execute("update SysCompositeEvent set context = 'garbage'")
            .unwrap();
    }
    let msg = match EcaAgent::with_defaults(Arc::clone(&server)) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("recovery should refuse the corrupted row"),
    };
    assert!(msg.contains("corrupted"), "{msg}");
    assert!(msg.contains("SysCompositeEvent"), "{msg}");
}

#[test]
fn occurrences_missed_during_downtime_replay_on_restart() {
    // Simulate "the agent was down while the server kept committing": run
    // the first agent fire-and-forget over a total-loss channel so the
    // durable vNo counters advance without the agent ever hearing about it,
    // then restart with the default exactly-once config.
    let server = SqlServer::new();
    {
        let agent = EcaAgent::new(
            Arc::clone(&server),
            AgentConfig::builder()
                .drop_probability(1.0, 1)
                .exactly_once(false)
                .build(),
        )
        .unwrap();
        let client = agent.client("db", "u");
        client.execute("create table t (a int)").unwrap();
        client.execute("create table audit (n int)").unwrap();
        // DETACHED so the action goes through the agent's notification
        // path (a single IMMEDIATE trigger would run natively inside the
        // server and mask the loss).
        client
            .execute(
                "create trigger tr on t for insert event e DETACHED \
                 as insert audit values (1)",
            )
            .unwrap();
        for i in 0..3 {
            client.execute(&format!("insert t values ({i})")).unwrap();
        }
        agent.wait_detached();
        let r = client.execute("select count(*) from audit").unwrap();
        assert_eq!(
            r.server.scalar(),
            Some(&Value::Int(0)),
            "nothing detected yet"
        );
    }
    let agent2 = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    agent2.wait_detached();
    let client = agent2.client("db", "u");
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int(3)),
        "anti-entropy replay fired the three missed occurrences"
    );
    let stats = agent2.stats();
    assert_eq!(stats.gaps_repaired, 3);
    assert_eq!(stats.drops_detected, 3);
}

#[test]
fn agent_with_config_recovers_too() {
    let server = SqlServer::new();
    build_rules(&server);
    let agent = EcaAgent::new(
        Arc::clone(&server),
        AgentConfig::builder().notify_port(20000).build(),
    )
    .unwrap();
    assert_eq!(agent.trigger_names().len(), 3);
}

fn durable_server(storage: &Arc<relsql::FaultyStorage>) -> Arc<SqlServer> {
    let storage: Arc<dyn relsql::Storage> = storage.clone();
    SqlServer::open_with_storage(
        storage,
        relsql::DurabilityConfig {
            fsync: relsql::FsyncPolicy::Always,
            checkpoint_bytes: 0,
        },
        relsql::EngineConfig::default(),
    )
    .expect("open durable server")
}

#[test]
fn hard_crash_recovers_rules_and_fires_exactly_once() {
    // A real crash, not a polite restart: the whole server process dies
    // (no drain, no shutdown hook), the machine keeps only what was
    // fsynced, and a cold start must rebuild everything from the data dir.
    let storage = relsql::FaultyStorage::new();

    // Life 1: a healthy agent defines the rules and processes two
    // occurrences — the durable watermark advances past them.
    {
        let server = durable_server(&storage);
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        let client = agent.client("db", "u");
        client.execute("create table t (a int)").unwrap();
        client.execute("create table audit (n int)").unwrap();
        // DETACHED so the action rides the agent's notification path (an
        // IMMEDIATE trigger would run natively and mask the crash).
        client
            .execute(
                "create trigger tr on t for insert event e DETACHED \
                 as insert audit values (1)",
            )
            .unwrap();
        client.execute("insert t values (0)").unwrap();
        client.execute("insert t values (1)").unwrap();
        agent.wait_detached();
        let r = client.execute("select count(*) from audit").unwrap();
        assert_eq!(r.server.scalar(), Some(&Value::Int(2)));
    }

    // Life 2: the notification channel goes total-loss, so three more
    // committed occurrences never reach the agent — then the process dies
    // hard mid-flight.
    {
        let server = durable_server(&storage);
        assert!(server.server_stats().wal_records_replayed > 0);
        let agent = EcaAgent::new(
            Arc::clone(&server),
            AgentConfig::builder()
                .drop_probability(1.0, 1)
                .exactly_once(false)
                .build(),
        )
        .unwrap();
        let client = agent.client("db", "u");
        for i in 2..5 {
            client.execute(&format!("insert t values ({i})")).unwrap();
        }
        agent.wait_detached();
        let r = client.execute("select count(*) from audit").unwrap();
        assert_eq!(
            r.server.scalar(),
            Some(&Value::Int(2)),
            "the losses are silent before the crash"
        );
    }
    storage.crash_to_durable();

    // Life 3: cold start. WAL replay restores the tables, the Sys* rows
    // and the watermark; the anti-entropy sweep then fires the three
    // missed occurrences — and only those.
    {
        let server = durable_server(&storage);
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        agent.wait_detached();
        let client = agent.client("db", "u");
        let r = client.execute("select count(*) from audit").unwrap();
        assert_eq!(
            r.server.scalar(),
            Some(&Value::Int(5)),
            "2 already-watermarked firings not repeated, 3 missed ones repaired"
        );
        assert_eq!(agent.stats().gaps_repaired, 3);

        // Detection still works end to end after the crash.
        client.execute("insert t values (5)").unwrap();
        agent.wait_detached();
        let r = client.execute("select count(*) from audit").unwrap();
        assert_eq!(r.server.scalar(), Some(&Value::Int(6)));
    }
    storage.crash_to_durable();

    // Life 4: a second cold start re-fires nothing.
    let server = durable_server(&storage);
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    agent.wait_detached();
    let client = agent.client("db", "u");
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(
        r.server.scalar(),
        Some(&Value::Int(6)),
        "no double-fire across repeated cold restarts"
    );
    assert_eq!(agent.stats().gaps_repaired, 0);
}

#[test]
fn eca_agent_open_recovers_from_a_real_data_dir() {
    let dir = std::env::temp_dir().join(format!("eca_persist_open_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let agent = EcaAgent::open(
            &dir,
            relsql::DurabilityConfig::default(),
            AgentConfig::default(),
        )
        .unwrap();
        let client = agent.client("db", "u");
        client.execute("create table t (a int)").unwrap();
        client
            .execute("create trigger tr on t for insert event e as print 'x'")
            .unwrap();
        client.execute("insert t values (1)").unwrap();
    }
    let agent = EcaAgent::open(
        &dir,
        relsql::DurabilityConfig::default(),
        AgentConfig::default(),
    )
    .unwrap();
    assert!(
        agent.trigger_names().iter().any(|t| t.ends_with("tr")),
        "rules recover from disk"
    );
    let client = agent.client("db", "u");
    let r = client.execute("select count(*) from t").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(1)));
    let _ = std::fs::remove_dir_all(&dir);
}
