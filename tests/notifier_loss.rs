//! Failure injection on the notification channel (§6's reliability remark):
//! the `syb_sendmsg` path has UDP semantics, so a lossy channel loses
//! detections silently — quantified here and benchmarked in E8.
//!
//! These tests run with `exactly_once: false` — the paper's honest
//! fire-and-forget behaviour. With the default exactly-once mode the agent
//! repairs every drop from the durable tables (see `crates/core/tests/
//! chaos.rs` and the counterpart test at the bottom of this file).

use std::sync::Arc;

use eca_core::{AgentConfig, EcaAgent};
use relsql::{SqlServer, Value};

fn agent_with_loss(p: f64, seed: u64) -> (EcaAgent, eca_core::EcaClient) {
    let server = SqlServer::new();
    let agent = EcaAgent::new(
        Arc::clone(&server),
        AgentConfig::builder()
            .drop_probability(p, seed)
            .exactly_once(false)
            .build(),
    )
    .unwrap();
    let client = agent.client("db", "u");
    client.execute("create table t (a int)").unwrap();
    client.execute("create table audit (n int)").unwrap();
    client
        .execute(
            "create trigger tr on t for insert event e DETACHED \
             as insert audit values (1)",
        )
        .unwrap();
    (agent, client)
}

fn run_inserts(client: &eca_core::EcaClient, n: usize) {
    for i in 0..n {
        client.execute(&format!("insert t values ({i})")).unwrap();
    }
}

#[test]
fn lossless_channel_delivers_every_notification() {
    let (agent, client) = agent_with_loss(0.0, 1);
    run_inserts(&client, 50);
    agent.wait_detached();
    assert_eq!(agent.stats().notifications, 50);
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(50)));
}

#[test]
fn full_loss_detects_nothing_silently() {
    let (agent, client) = agent_with_loss(1.0, 1);
    run_inserts(&client, 50);
    agent.wait_detached();
    // Server-side effects still happened (rows inserted, vNo bumped), but
    // the agent never heard about them — the UDP failure mode.
    assert_eq!(agent.stats().notifications, 0);
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(0)));
    let r = client.execute("select count(*) from t").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(50)));
}

#[test]
fn partial_loss_loses_proportional_detections() {
    let (agent, client) = agent_with_loss(0.3, 42);
    run_inserts(&client, 200);
    agent.wait_detached();
    let delivered = agent.stats().notifications;
    assert!(
        (100..190).contains(&(delivered as usize)),
        "≈70% of 200 should survive, got {delivered}"
    );
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(delivered as i64)));
}

#[test]
fn loss_is_deterministic_per_seed() {
    let run = |seed| {
        let (agent, client) = agent_with_loss(0.5, seed);
        run_inserts(&client, 100);
        agent.wait_detached();
        agent.stats().notifications
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn composite_detection_degrades_with_loss() {
    // An AND needs *both* notifications; with loss p each, pairs survive at
    // roughly (1-p)² — loss hurts composites superlinearly.
    let server = SqlServer::new();
    let agent = EcaAgent::new(
        Arc::clone(&server),
        AgentConfig::builder()
            .drop_probability(0.5, 3)
            .exactly_once(false)
            .build(),
    )
    .unwrap();
    let client = agent.client("db", "u");
    client.execute("create table a (x int)").unwrap();
    client.execute("create table b (x int)").unwrap();
    client.execute("create table audit (n int)").unwrap();
    client
        .execute("create trigger t1 on a for insert event ea as print 'a'")
        .unwrap();
    client
        .execute("create trigger t2 on b for insert event eb as print 'b'")
        .unwrap();
    client
        .execute(
            "create trigger t3 event pair = ea ^ eb CHRONICLE \
             as insert audit values (1)",
        )
        .unwrap();
    for i in 0..100 {
        client.execute(&format!("insert a values ({i})")).unwrap();
        client.execute(&format!("insert b values ({i})")).unwrap();
    }
    let r = client.execute("select count(*) from audit").unwrap();
    let pairs = match r.server.scalar() {
        Some(Value::Int(n)) => *n,
        other => panic!("{other:?}"),
    };
    // 100 potential pairs; with 50% loss per side, far fewer survive, but
    // chronicle pairing still matches some stragglers.
    assert!(
        pairs < 80,
        "loss must reduce composite detections, got {pairs}"
    );
    assert!(pairs > 0, "some pairs should survive seed 3");
}

#[test]
fn exactly_once_mode_repairs_total_loss() {
    // The same total-loss channel as `full_loss_detects_nothing_silently`,
    // but with the default exactly-once mode: every occurrence is repaired
    // from the durable vNo counters even though no datagram ever arrives.
    let server = SqlServer::new();
    let agent = EcaAgent::new(
        Arc::clone(&server),
        AgentConfig::builder().drop_probability(1.0, 1).build(),
    )
    .unwrap();
    let client = agent.client("db", "u");
    client.execute("create table t (a int)").unwrap();
    client.execute("create table audit (n int)").unwrap();
    client
        .execute(
            "create trigger tr on t for insert event e DETACHED \
             as insert audit values (1)",
        )
        .unwrap();
    for i in 0..50 {
        client.execute(&format!("insert t values ({i})")).unwrap();
    }
    agent.wait_detached();
    let stats = agent.stats();
    assert_eq!(stats.notifications, 50, "all 50 occurrences raised");
    assert_eq!(stats.gaps_repaired, 50);
    assert_eq!(stats.drops_detected, 50);
    assert_eq!(stats.duplicates_suppressed, 0);
    let r = client.execute("select count(*) from audit").unwrap();
    assert_eq!(r.server.scalar(), Some(&Value::Int(50)));
}
