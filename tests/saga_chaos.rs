//! Crash-point chaos for sagas (EXPERIMENTS.md E15): kill the process at
//! **every** journal boundary a saga run crosses and prove the recovered
//! state is byte-identical to an uninterrupted run — exactly-one net
//! application of every step and compensation.
//!
//! Harness shape:
//!   1. A reference run (no crashes) executes the workload on a durable
//!      server and counts the saga boundaries crossed via the crash hook.
//!   2. For each boundary `k`: a fresh durable server runs the same
//!      workload with a hook that panics at the k-th boundary (simulated
//!      process death, caught with `catch_unwind`), the storage is cut to
//!      its fsynced prefix, and a cold-started agent recovers — settling
//!      in-flight sagas from the journal before watermark replay re-raises
//!      their occurrences. The remaining workload then runs and the full
//!      table dump must equal the reference byte for byte.
//!
//! The workload crosses both saga fates: one saga commits, one fails a
//! step *inside SQL* (its procedure references a missing table, so the
//! failure is deterministic in every life) and compensates.
//!
//! `SAGA_CHAOS_STRIDE=n` tests every n-th boundary (CI smoke); default 1.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use eca_core::EcaAgent;
use relsql::{FaultyStorage, SqlServer};

/// The injected crashes panic on purpose, dozens of times per run; keep
/// their backtrace spam out of the test output while letting every other
/// panic (a real assertion failure) print as usual.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("saga chaos:") {
                prev(info);
            }
        }));
    });
}

fn durable_server(storage: &Arc<FaultyStorage>) -> Arc<SqlServer> {
    let storage: Arc<dyn relsql::Storage> = storage.clone();
    SqlServer::open_with_storage(
        storage,
        relsql::DurabilityConfig {
            fsync: relsql::FsyncPolicy::Always,
            checkpoint_bytes: 0,
        },
        relsql::EngineConfig::default(),
    )
    .expect("open durable server")
}

fn setup_schema(agent: &EcaAgent) {
    let client = agent.client("db", "u");
    for sql in [
        "create table orders (id int)",
        "create table txns (id int)",
        "create table holds (txn int)",
        "create table inventory (item varchar(10), qty int)",
        "create table payments (oid int, amount int)",
        "create table shipments (oid int)",
        "insert inventory values ('widget', 10)",
        "create procedure db.u.p_reserve as \
         update inventory set qty = qty - 1 where item = 'widget'",
        "create procedure db.u.c_release as \
         update inventory set qty = qty + 1 where item = 'widget'",
        "create procedure db.u.p_charge as insert payments values (1, 100)",
        "create procedure db.u.c_refund as delete payments",
        "create procedure db.u.p_ship as insert shipments values (1)",
        "create procedure db.u.p_hold as insert holds values (1)",
        "create procedure db.u.c_unhold as delete holds",
        // Deterministic failure: fraud_review never exists, and the error
        // fires before any mutation, so the step fails identically live,
        // on WAL replay, and on post-recovery resume.
        "create procedure db.u.p_review as insert fraud_review values (1)",
    ] {
        client.execute(sql).unwrap();
    }
    client
        .execute(
            "create trigger t_order on orders for insert event newOrder as saga \
             step p_reserve compensate c_release \
             step p_charge compensate c_refund \
             step p_ship",
        )
        .unwrap();
    client
        .execute(
            "create trigger t_fraud on txns for insert event bigTxn as saga \
             step p_hold compensate c_unhold \
             step p_review",
        )
        .unwrap();
}

/// The workload statements that fire sagas, in order. Each is issued in
/// its own `catch_unwind` so an injected crash identifies the statement
/// in flight; statements after the crash run in the recovered life.
const WORKLOAD: [&str; 2] = [
    "insert orders values (1)", // saga commits (3 steps)
    "insert txns values (99)",  // saga fails step 1 in SQL and compensates
];

/// Canonical dump of every table: names sorted, rows in stored order.
/// This is the byte-identity witness — it covers the user tables, the
/// saga journal, the dead-letter table and the agent watermarks alike.
fn dump(server: &Arc<SqlServer>) -> String {
    {
        let snap = server.snapshot();
        let db = snap.database();
        let mut out = String::new();
        for name in db.table_names() {
            let t = db.table(&name.to_ascii_lowercase()).expect("listed table");
            out.push_str(&format!("== {name} ==\n"));
            for row in t.rows().iter() {
                out.push_str(&format!("{row:?}\n"));
            }
        }
        out
    }
}

/// Run the full workload uninterrupted, returning (dump, boundary count).
fn reference_run() -> (String, usize) {
    let storage = FaultyStorage::new();
    let server = durable_server(&storage);
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    setup_schema(&agent);
    let crossings = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&crossings);
    agent.set_saga_crash_hook(Some(Arc::new(move |_| {
        counter.fetch_add(1, Ordering::SeqCst);
        false
    })));
    let client = agent.client("db", "u");
    for sql in WORKLOAD {
        client.execute(sql).unwrap();
    }
    agent.wait_detached();
    (dump(&server), crossings.load(Ordering::SeqCst))
}

#[test]
fn every_crash_point_recovers_to_exactly_one_net_application() {
    quiet_injected_panics();
    let (reference, boundaries) = reference_run();
    assert!(
        boundaries >= 15,
        "the workload should cross many saga boundaries, saw {boundaries}"
    );
    let stride: usize = std::env::var("SAGA_CHAOS_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);

    for k in (0..boundaries).step_by(stride) {
        let storage = FaultyStorage::new();

        // Life 1: run until the k-th boundary kills the "process".
        let mut completed = 0usize;
        {
            let server = durable_server(&storage);
            let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
            setup_schema(&agent);
            let crossings = Arc::new(AtomicUsize::new(0));
            let counter = Arc::clone(&crossings);
            agent.set_saga_crash_hook(Some(Arc::new(move |_| {
                counter.fetch_add(1, Ordering::SeqCst) == k
            })));
            let client = agent.client("db", "u");
            let mut crashed = false;
            for sql in WORKLOAD {
                match catch_unwind(AssertUnwindSafe(|| client.execute(sql).unwrap())) {
                    Ok(_) => completed += 1,
                    Err(_) => {
                        crashed = true;
                        break;
                    }
                }
            }
            assert!(
                crashed,
                "boundary {k} of {boundaries} was counted in the reference \
                 run but never crossed under chaos"
            );
            // The process is dead: no drain, no shutdown — the agent is
            // simply discarded and only fsynced bytes survive.
        }
        storage.crash_to_durable();

        // Life 2: cold start. Opening the agent replays the WAL, settles
        // the in-flight saga from its journal, and replays the watermark
        // gap; the statement that was in flight is already durable, so it
        // is NOT re-issued — only the never-issued remainder runs.
        let server = durable_server(&storage);
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        agent.wait_detached();
        let client = agent.client("db", "u");
        for sql in WORKLOAD.iter().skip(completed + 1) {
            client.execute(sql).unwrap();
        }
        agent.wait_detached();

        let recovered = dump(&server);
        assert_eq!(
            recovered, reference,
            "state diverged after crash at boundary {k}/{boundaries}"
        );
    }
}

#[test]
fn double_cold_restart_after_crash_changes_nothing() {
    // Crash mid-saga, recover, then cold-restart again: the second
    // recovery must be a pure no-op (idempotent journal settlement).
    quiet_injected_panics();
    let (reference, boundaries) = reference_run();
    let k = boundaries / 2;
    let storage = FaultyStorage::new();
    {
        let server = durable_server(&storage);
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        setup_schema(&agent);
        let crossings = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&crossings);
        agent.set_saga_crash_hook(Some(Arc::new(move |_| {
            counter.fetch_add(1, Ordering::SeqCst) == k
        })));
        let client = agent.client("db", "u");
        let mut completed = 0usize;
        for sql in WORKLOAD {
            match catch_unwind(AssertUnwindSafe(|| client.execute(sql).unwrap())) {
                Ok(_) => completed += 1,
                Err(_) => break,
            }
        }
        storage.crash_to_durable();
        let server = durable_server(&storage);
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        agent.wait_detached();
        let client = agent.client("db", "u");
        for sql in WORKLOAD.iter().skip(completed + 1) {
            client.execute(sql).unwrap();
        }
        agent.wait_detached();
    }
    storage.crash_to_durable();
    let server = durable_server(&storage);
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    agent.wait_detached();
    assert_eq!(
        dump(&server),
        reference,
        "second cold restart re-applied work"
    );
    assert_eq!(agent.stats().sagas_resumed, 0, "nothing left in flight");
}
