//! The paper's two worked examples (§5.2 Example 1, §5.3 Example 2),
//! end to end through the agent, as literally as the reproduction allows.

use std::sync::Arc;

use eca_core::EcaAgent;
use relsql::{SqlServer, Value};

fn setup() -> (EcaAgent, eca_core::EcaClient) {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
    let client = agent.client("sentineldb", "sharma");
    client
        .execute("create table stock (symbol varchar(10), price float)")
        .unwrap();
    (agent, client)
}

#[test]
fn example_1_primitive_trigger() {
    let (agent, client) = setup();
    // §5.2, verbatim command (double quotes are string literals in T-SQL).
    client
        .execute(
            "create trigger t_addStk on stock for insert\n\
             event addStk\n\
             as print \" trigger t_addStk on primitive event addStk occurs\"\n\
             select * from stock",
        )
        .unwrap();

    // Internal names are created per §5.1.
    assert!(agent
        .event_names()
        .contains(&"sentineldb.sharma.addStk".to_string()));
    assert!(agent
        .trigger_names()
        .contains(&"sentineldb.sharma.t_addStk".to_string()));

    // The Figure 11 artifacts exist in the server.
    for table in [
        "sentineldb.sharma.addStk_inserted",
        "sentineldb.sharma.addStk_deleted",
        "sentineldb.sharma.addStk_ver",
    ] {
        assert!(
            agent.server().snapshot().database().has_table(table),
            "{table} missing"
        );
    }
    assert!(agent
        .server()
        .snapshot()
        .database()
        .procedure("sentineldb.sharma.t_addStk__Proc", None)
        .is_some());

    // Inserting fires the native trigger: action runs inside the server and
    // its output comes back with the client's own result.
    let resp = client
        .execute("insert stock values ('IBM', 104.5)")
        .unwrap();
    assert!(
        resp.server
            .messages
            .iter()
            .any(|m| m.contains("t_addStk on primitive event addStk occurs")),
        "messages: {:?}",
        resp.server.messages
    );
    // The action's `select * from stock` produced a result set with the row.
    let select = resp
        .server
        .results
        .iter()
        .rev()
        .find(|r| r.columns.iter().any(|c| &**c == "symbol"))
        .expect("action select results returned to client");
    assert_eq!(select.rows.len(), 1);
    assert_eq!(select.rows[0][0], Value::Str("IBM".into()));

    // SysPrimitiveEvent and SysEcaTrigger rows exist (Figure 11's inserts)
    // and the occurrence counter advanced.
    let pm = eca_core::PersistentManager::new(agent.server());
    let prims = pm.load_primitives().unwrap();
    assert_eq!(prims.len(), 1);
    assert_eq!(prims[0].event, "sentineldb.sharma.addStk");
    assert_eq!(prims[0].vno, 1, "one occurrence so far");
    let trigs = pm.load_triggers().unwrap();
    assert_eq!(trigs.len(), 1);
    assert_eq!(trigs[0].proc_name, "sentineldb.sharma.t_addStk__Proc");
}

#[test]
fn example_2_composite_trigger() {
    let (agent, client) = setup();
    // Both constituent events of Example 2 must exist first (the paper's
    // name checking step requires delStk and addStk to be defined).
    client
        .execute(
            "create trigger t_addStk on stock for insert event addStk \
             as print 'addStk occurred'",
        )
        .unwrap();
    client
        .execute(
            "create trigger t_delStk on stock for delete event delStk \
             as print 'delStk occurred'",
        )
        .unwrap();

    // §5.3 Example 2, verbatim shape.
    client
        .execute(
            "create trigger t_and\n\
             event addDel = delStk ^ addStk\n\
             RECENT\n\
             as\n\
             print \"trigger t_and on composite event addDel = delStk ^ addStk\"\n\
             select symbol, price from stock.inserted",
        )
        .unwrap();

    assert!(agent
        .event_names()
        .contains(&"sentineldb.sharma.addDel".to_string()));

    // Seed a row, then the delete + insert pair that forms the AND.
    client.execute("insert stock values ('HP', 50.0)").unwrap();
    client.execute("delete stock where symbol = 'HP'").unwrap();
    let resp = client
        .execute("insert stock values ('IBM', 104.5)")
        .unwrap();

    // The composite fired exactly once, through the LED → Action Handler.
    assert_eq!(resp.actions.len(), 1, "actions: {:?}", resp.actions);
    let outcome = &resp.actions[0];
    assert!(outcome.rule.ends_with("t_and"));
    let result = outcome.result.as_ref().unwrap();
    assert!(result
        .messages
        .iter()
        .any(|m| m.contains("t_and on composite event")));
    // The context select saw exactly the inserted IBM row (RECENT context).
    let select = result.last_select().unwrap();
    let cols: Vec<&str> = select.columns.iter().map(|c| &**c).collect();
    assert_eq!(cols, ["symbol", "price"]);
    assert_eq!(select.rows.len(), 1);
    assert_eq!(select.rows[0][0], Value::Str("IBM".into()));
    assert_eq!(select.rows[0][1], Value::Float(104.5));

    // SysCompositeEvent row persisted with the internal-name expression.
    let pm = eca_core::PersistentManager::new(agent.server());
    let comps = pm.load_composites().unwrap();
    assert_eq!(comps.len(), 1);
    assert!(comps[0].expr_src.contains("sentineldb.sharma.delStk"));
    assert!(comps[0].expr_src.contains('^'));
    assert_eq!(comps[0].context, "RECENT");
}

#[test]
fn example_2_does_not_fire_on_insert_alone() {
    let (_agent, client) = setup();
    client
        .execute("create trigger t_addStk on stock for insert event addStk as print 'a'")
        .unwrap();
    client
        .execute("create trigger t_delStk on stock for delete event delStk as print 'd'")
        .unwrap();
    client
        .execute(
            "create trigger t_and event addDel = delStk ^ addStk RECENT \
             as print 'and fired'",
        )
        .unwrap();
    // Insert without any delete: AND incomplete, no composite action.
    let resp = client.execute("insert stock values ('IBM', 1.0)").unwrap();
    assert!(resp.actions.is_empty());
}

#[test]
fn snoop_or_keyword_form_works_like_example_2() {
    let (_agent, client) = setup();
    client
        .execute("create trigger t1 on stock for insert event addStk as print 'a'")
        .unwrap();
    client
        .execute("create trigger t2 on stock for delete event delStk as print 'd'")
        .unwrap();
    client
        .execute(
            "create trigger t_or event anyChange = delStk OR addStk \
             as print 'or fired'",
        )
        .unwrap();
    let resp = client.execute("insert stock values ('X', 1.0)").unwrap();
    assert_eq!(resp.actions.len(), 1, "OR fires on either constituent");
    let resp = client.execute("delete stock").unwrap();
    assert_eq!(resp.actions.len(), 1);
}
