//! Computer-integrated-manufacturing / inventory control (paper §1):
//! reorder workflows with cascading rules, plus a side-by-side run of the
//! §1 baselines (polling and embedded situation checks) against the agent
//! on the same workload — the E10 story in miniature.
//!
//! ```text
//! cargo run --example inventory_cim
//! ```

use std::sync::Arc;

use eca_core::{EcaAgent, EmbeddedCheckClient, PollingMonitor, Situation};
use relsql::{SqlServer, Value};

fn scalar(client: &eca_core::EcaClient, sql: &str) -> i64 {
    match client.execute(sql).unwrap().server.scalar() {
        Some(Value::Int(n)) => *n,
        other => panic!("unexpected {other:?}"),
    }
}

fn main() {
    // ------------------------------------------------- active (the agent)
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    let plant = agent.client("cimdb", "plant");

    plant
        .execute(
            "create table consumption (part varchar(12), qty int)\n\
             go\n\
             create table stock_level (part varchar(12), qty int)\n\
             go\n\
             create table reorders (part varchar(12))\n\
             go\n\
             create table expedited (part varchar(12))",
        )
        .unwrap();
    plant
        .execute("insert stock_level values ('bolt', 100), ('gear', 40)")
        .unwrap();

    // Consumption decrements stock (ordinary application logic).
    // The *rule* watches consumption and reorders when stock dips.
    plant
        .execute(
            "create trigger t_consume on consumption for insert event consumed \
             as print 'consumption recorded'",
        )
        .unwrap();
    plant
        .execute(
            "create trigger t_reorder event consumed \
             as insert reorders select part from consumption.inserted",
        )
        .unwrap();

    // A cascade: a reorder for the same part twice in a row (SEQ) means the
    // reorder didn't arrive in time — expedite it.
    plant
        .execute(
            "create trigger t_rord on reorders for insert event reordered \
             as print 'reorder placed'",
        )
        .unwrap();
    plant
        .execute(
            "create trigger t_expedite \
             event repeatOrder = reordered ; reordered \
             CHRONICLE \
             as insert expedited select part from reorders.inserted",
        )
        .unwrap();

    println!("== CIM workflow through the agent ==");
    plant
        .execute("insert consumption values ('gear', 5)")
        .unwrap();
    plant
        .execute("update stock_level set qty = qty - 5 where part = 'gear'")
        .unwrap();
    plant
        .execute("insert consumption values ('gear', 10)")
        .unwrap();
    println!(
        "  reorders: {}",
        scalar(&plant, "select count(*) from reorders")
    );
    println!(
        "  expedited (cascaded rule): {}",
        scalar(&plant, "select count(*) from expedited")
    );

    // ------------------------------------------- baselines on a twin setup
    println!("\n== baselines (§1 rejected alternatives) on the same workload ==");
    let raw = SqlServer::new();
    let session = raw.session("cimdb", "plant");
    session
        .execute("create table consumption (part varchar(12), qty int)")
        .unwrap();
    session.execute("create table alerts (n int)").unwrap();

    // Polling: checks every "tick", pays a probe query even when idle.
    let mut poller = PollingMonitor::new(
        raw.session("cimdb", "monitor"),
        vec![Situation {
            name: "consumption-changed".into(),
            probe_sql: "select count(*) from consumption".into(),
            action_sql: "insert alerts values (1)".into(),
        }],
    );
    poller.poll().unwrap(); // baseline observation
    for tick in 0..10 {
        if tick == 3 {
            session
                .execute("insert consumption values ('gear', 5)")
                .unwrap();
        }
        if tick == 4 {
            // Two changes inside one interval: polling sees them as one.
            session
                .execute("insert consumption values ('gear', 1)")
                .unwrap();
            session
                .execute("insert consumption values ('bolt', 2)")
                .unwrap();
        }
        poller.poll().unwrap();
    }
    let (polls, queries, detections) = poller.stats();
    println!(
        "  polling:  {polls} polls, {queries} queries, {detections} detections (3 real events)"
    );

    // Embedded checks: every application statement pays the probe.
    let mut embedded = EmbeddedCheckClient::new(
        raw.session("cimdb", "app"),
        vec![Situation {
            name: "bolt-consumed".into(),
            probe_sql: "select count(*) from consumption where part = 'bolt'".into(),
            action_sql: "insert alerts values (2)".into(),
        }],
    );
    for part in ["gear", "gear", "bolt", "gear"] {
        embedded
            .execute(&format!("insert consumption values ('{part}', 1)"))
            .unwrap();
    }
    let (stmts, checks, hits) = embedded.stats();
    println!("  embedded: {stmts} statements paid {checks} check queries for {hits} detection(s)");

    let stats = agent.stats();
    println!(
        "\n  agent:    {} notifications, {} actions — zero polls, zero app-side checks",
        stats.notifications, stats.actions_executed
    );

    assert_eq!(scalar(&plant, "select count(*) from reorders"), 2);
    // One repeatOrder detection, but its occurrence carries *both*
    // constituent reorder rows (initiator and terminator), so the context
    // select inserts two expedite lines — parameter passing at work.
    assert_eq!(scalar(&plant, "select count(*) from expedited"), 2);
    println!("\ninventory_cim example OK");
}
