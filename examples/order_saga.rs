//! Transactional action sagas (DESIGN.md §12): an order-fulfillment rule
//! whose action is a journaled step/compensation pipeline.
//!
//! ```text
//! cargo run --example order_saga
//! ```
//!
//! The trigger's action declares three steps — reserve inventory, charge
//! the card, ship — with compensations for the first two. Every step runs
//! as one server batch together with its `SysSagaJournal` row, so a replay
//! or retry never double-applies; when a step fails, the applied steps are
//! compensated in reverse order and the saga settles as `compensated`.

use std::sync::Arc;

use eca_core::{EcaAgent, SagaDisposition};
use relsql::SqlServer;

fn main() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    let client = agent.client("shopdb", "ops");

    for sql in [
        "create table orders (id int, status varchar(10))",
        "create table inventory (item varchar(10), qty int)",
        "create table payments (oid int, amount int)",
        "create table shipments (oid int)",
        "insert inventory values ('widget', 5)",
        // Step and compensation procedures are ordinary user procedures,
        // created under their internal (db.user.name) names.
        "create procedure shopdb.ops.p_reserve as \
         update inventory set qty = qty - 1 where item = 'widget'",
        "create procedure shopdb.ops.c_release as \
         update inventory set qty = qty + 1 where item = 'widget'",
        "create procedure shopdb.ops.p_charge as insert payments values (1, 100)",
        "create procedure shopdb.ops.c_refund as delete payments",
        "create procedure shopdb.ops.p_ship as insert shipments values (1)",
    ] {
        client.execute(sql).unwrap();
    }

    client
        .execute(
            "create trigger t_order on orders for insert event newOrder as saga \
             step p_reserve compensate c_release \
             step p_charge compensate c_refund \
             step p_ship",
        )
        .unwrap();

    println!("== A clean order: all three steps commit ==");
    let resp = client.execute("insert orders values (1, 'new')").unwrap();
    for a in &resp.actions {
        println!("  rule {} on {}: {:?}", a.rule, a.event, a.saga);
    }

    println!("\n== Shipping goes down: the saga compensates ==");
    agent.set_action_fault_injector(Some(Arc::new(|req, _| {
        if req.proc_name.ends_with("p_ship") {
            Some("shipping service unreachable".into())
        } else {
            None
        }
    })));
    let resp = client.execute("insert orders values (2, 'new')").unwrap();
    for a in &resp.actions {
        match a.saga {
            Some(SagaDisposition::Compensated {
                failed_step,
                compensations,
            }) => println!(
                "  rule {}: step {failed_step} failed, {compensations} compensation(s) \
                 rolled the order back",
                a.rule
            ),
            other => println!("  rule {}: {other:?}", a.rule),
        }
    }

    let qty = client.execute("select qty from inventory").unwrap();
    println!("\n== Net state ==");
    println!(
        "  inventory qty: {:?} (one reserved, one released)",
        qty.server.scalar()
    );
    let pay = client.execute("select count(*) from payments").unwrap();
    println!(
        "  payments:      {:?} (second charge refunded)",
        pay.server.scalar()
    );

    println!("\n== The journal is just a table ==");
    for row in agent.saga_journal().unwrap() {
        println!(
            "  {} [{}] step {} -> {} ({})",
            row.key, row.phase, row.step, row.state, row.idem
        );
    }

    let s = agent.stats();
    println!(
        "\n  sagas: {} started, {} committed, {} compensated; {} step(s), {} compensation(s)",
        s.sagas_started,
        s.sagas_committed,
        s.sagas_compensated,
        s.saga_steps_executed,
        s.saga_compensations
    );
}
