//! Distributed active capability (paper §6 future work): two independent
//! SQL servers, each fronted by its own ECA Agent, coordinated by a Global
//! Event Detector. A composite event spanning *both sites* triggers a
//! reconciliation action on one of them.
//!
//! ```text
//! cargo run --example global_detector
//! ```

use std::sync::Arc;

use eca_core::{EcaAgent, GlobalEventDetector};
use led::ParameterContext;
use relsql::{SqlServer, Value};

fn main() {
    // ---- Site 1: the branch office takes orders -------------------------
    let branch_server = SqlServer::new();
    let branch_agent = EcaAgent::with_defaults(Arc::clone(&branch_server)).unwrap();
    let branch = branch_agent.client("branchdb", "clerk");
    branch
        .execute("create table orders (part varchar(12), qty int)")
        .unwrap();
    branch
        .execute("create trigger t_ord on orders for insert event orderPlaced as print 'order'")
        .unwrap();

    // ---- Site 2: headquarters ships inventory ---------------------------
    let hq_server = SqlServer::new();
    let hq_agent = EcaAgent::with_defaults(Arc::clone(&hq_server)).unwrap();
    let hq = hq_agent.client("hqdb", "warehouse");
    hq.execute("create table shipments (part varchar(12), qty int)")
        .unwrap();
    hq.execute("create table reconciliations (note varchar(60))")
        .unwrap();
    hq.execute("create trigger t_ship on shipments for insert event shipped as print 'shipped'")
        .unwrap();

    // ---- The GED ties the sites together --------------------------------
    let ged = GlobalEventDetector::new();
    ged.attach_site("branch", &branch_agent).unwrap();
    ged.attach_site("hq", &hq_agent).unwrap();
    ged.export_event("branch", "branchdb.clerk.orderPlaced")
        .unwrap();
    ged.export_event("hq", "hqdb.warehouse.shipped").unwrap();

    // Global composite: an order at the branch followed by a shipment from
    // HQ — written in Snoop's `event::site` notation.
    ged.define_global_event(
        "fulfilled",
        "branchdb.clerk.orderPlaced::branch ; hqdb.warehouse.shipped::hq",
        ParameterContext::Chronicle,
    )
    .unwrap();
    ged.add_global_rule(
        "g_reconcile",
        "fulfilled",
        "hq",
        "insert reconciliations values ('order fulfilled across sites')",
    )
    .unwrap();

    println!("== distributed scenario ==");
    println!("  branch: order placed");
    branch.execute("insert orders values ('gear', 10)").unwrap();
    println!("  ged actions so far: {}", ged.stats().actions);

    println!("  hq: shipment goes out");
    hq.execute("insert shipments values ('gear', 10)").unwrap();
    println!("  ged actions now: {}", ged.stats().actions);

    let r = hq.execute("select count(*) from reconciliations").unwrap();
    let n = match r.server.scalar() {
        Some(Value::Int(n)) => *n,
        other => panic!("{other:?}"),
    };
    println!("  reconciliation rows on HQ: {n}");

    for o in ged.take_outcomes() {
        println!(
            "  global rule {} fired on event {} → site {} (ok: {})",
            o.rule,
            o.event,
            o.site,
            o.result.is_ok()
        );
    }

    let stats = ged.stats();
    println!(
        "\nged: {} occurrences received, {} global actions",
        stats.occurrences, stats.actions
    );
    assert_eq!(n, 1);
    println!("\nglobal_detector example OK");
}
