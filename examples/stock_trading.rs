//! Commodity/stock trading scenario (one of the paper's §1 motivating
//! applications): portfolio risk rules over trades and quotes, showing
//! composite events across tables, parameter contexts, and all three
//! coupling modes.
//!
//! ```text
//! cargo run --example stock_trading
//! ```

use std::sync::Arc;

use eca_core::EcaAgent;
use relsql::{SqlServer, Value};

fn count(client: &eca_core::EcaClient, table: &str) -> i64 {
    let r = client
        .execute(&format!("select count(*) from {table}"))
        .unwrap();
    match r.server.scalar() {
        Some(Value::Int(n)) => *n,
        other => panic!("unexpected {other:?}"),
    }
}

fn main() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    let trader = agent.client("tradedb", "desk1");

    trader
        .execute(
            "create table quotes (symbol varchar(8), price float)\n\
             go\n\
             create table trades (symbol varchar(8), qty int, side varchar(4))\n\
             go\n\
             create table risk_log (note varchar(80))\n\
             go\n\
             create table margin_calls (symbol varchar(8))",
        )
        .unwrap();

    // -- Primitive events: quote updates and trade executions -------------
    trader
        .execute(
            "create trigger t_quote on quotes for update event quoteMove \
             as print 'quote moved'",
        )
        .unwrap();
    trader
        .execute(
            "create trigger t_trade on trades for insert event tradeDone \
             as print 'trade executed'",
        )
        .unwrap();

    // -- Composite: a quote move followed by a trade (SEQ, CHRONICLE) -----
    // CHRONICLE pairs each trade with the oldest unconsumed quote move:
    // classic audit-trail semantics.
    trader
        .execute(
            "create trigger t_reactive \
             event reactiveTrade = quoteMove ; tradeDone \
             CHRONICLE \
             as insert risk_log select symbol + ' traded after move' from trades.inserted",
        )
        .unwrap();

    // -- Detached margin-call check: runs on its own thread ---------------
    trader
        .execute(
            "create trigger t_margin event tradeDone DETACHED \
             as insert margin_calls \
                select symbol from trades.inserted where qty > 1000",
        )
        .unwrap();

    // -- Deferred end-of-batch summary -------------------------------------
    trader
        .execute(
            "create trigger t_eod event quoteMove DEFERRED \
             as insert risk_log values ('deferred: end-of-tran quote review')",
        )
        .unwrap();

    // ---------------- trading session ------------------------------------
    trader
        .execute("insert quotes values ('IBM', 100.0), ('HP', 50.0)")
        .unwrap();

    println!("== session: quote moves and trades ==");
    trader
        .execute("update quotes set price = 101.5 where symbol = 'IBM'")
        .unwrap();
    let resp = trader
        .execute("insert trades values ('IBM', 200, 'BUY')")
        .unwrap();
    println!("  reactive-trade rule fired {} time(s)", resp.actions.len());

    trader
        .execute("update quotes set price = 49.0 where symbol = 'HP'")
        .unwrap();
    trader
        .execute("insert trades values ('HP', 5000, 'SELL')")
        .unwrap();

    // Detached actions finish asynchronously; join them.
    let detached = agent.wait_detached();
    println!("  detached margin checks completed: {}", detached.len());
    println!(
        "  margin calls recorded: {}",
        count(&trader, "margin_calls")
    );

    // Deferred actions run at commit.
    let resp = trader
        .execute("begin tran update quotes set price = 102.0 where symbol = 'IBM' commit")
        .unwrap();
    let deferred = resp
        .actions
        .iter()
        .filter(|a| a.coupling == led::CouplingMode::Deferred)
        .count();
    println!("  deferred actions flushed at commit: {deferred}");

    println!("\n== risk log ==");
    let r = trader.execute("select note from risk_log").unwrap();
    for row in &r.server.last_select().unwrap().rows {
        println!("  {}", row[0]);
    }

    let stats = agent.stats();
    println!(
        "\nagent: {} notifications, {} actions, led signals {}",
        stats.notifications,
        stats.actions_executed,
        agent.led_stats().signals
    );

    assert!(count(&trader, "risk_log") >= 2);
    assert_eq!(count(&trader, "margin_calls"), 1);
    println!("\nstock_trading example OK");
}
