//! Quickstart: the paper's Example 1 and Example 2, start to finish.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! A passive SQL server becomes a full active database by standing the ECA
//! Agent in front of it — no server or client changes, just the extended
//! `CREATE TRIGGER ... EVENT ...` syntax.

use std::sync::Arc;

use eca_core::EcaAgent;
use relsql::SqlServer;

fn main() {
    // 1. A plain (passive) SQL server.
    let server = SqlServer::new();

    // 2. The mediator: creates its system tables, restores persisted rules.
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");

    // 3. Clients connect through the agent — to them it is just a server.
    let client = agent.client("sentineldb", "sharma");
    client
        .execute("create table stock (symbol varchar(10), price float)")
        .unwrap();

    // ---- Example 1 (paper §5.2): primitive event + trigger -------------
    client
        .execute(
            "create trigger t_addStk on stock for insert \
             event addStk \
             as print ' trigger t_addStk on primitive event addStk occurs' \
             select * from stock",
        )
        .unwrap();
    println!("== Example 1: insert fires the named primitive event ==");
    let resp = client
        .execute("insert stock values ('IBM', 104.5)")
        .unwrap();
    for m in &resp.server.messages {
        println!("  server message: {m}");
    }

    // ---- Example 2 (paper §5.3): composite event ------------------------
    client
        .execute(
            "create trigger t_delStk on stock for delete event delStk \
             as print 'delStk occurs'",
        )
        .unwrap();
    client
        .execute(
            "create trigger t_and \
             event addDel = delStk ^ addStk \
             RECENT \
             as print 'trigger t_and on composite event addDel = delStk ^ addStk' \
             select symbol, price from stock.inserted",
        )
        .unwrap();

    println!("\n== Example 2: delete + insert completes the AND ==");
    client.execute("delete stock where symbol = 'IBM'").unwrap();
    let resp = client.execute("insert stock values ('HP', 52.5)").unwrap();
    for action in &resp.actions {
        println!("  rule {} fired on {}", action.rule, action.event);
        if let Ok(result) = &action.result {
            for m in &result.messages {
                println!("    action message: {m}");
            }
            if let Some(sel) = result.last_select() {
                println!("    action result {:?}: {:?}", sel.columns, sel.rows);
            }
        }
    }

    // ---- What the agent built under the hood ----------------------------
    println!("\n== Agent state ==");
    println!("  events:   {:?}", agent.event_names());
    println!("  triggers: {:?}", agent.trigger_names());
    let stats = agent.stats();
    println!(
        "  notifications: {}, actions executed: {}",
        stats.notifications, stats.actions_executed
    );
    println!(
        "  server tables: {:?}",
        server.snapshot().database().table_names()
    );
}
