//! Network management scenario (paper §1): link failures, recoveries and
//! maintenance windows, exercising the window operators NOT / A / A* and
//! the temporal operators P and PLUS on the agent's virtual clock.
//!
//! ```text
//! cargo run --example network_monitor
//! ```

use std::sync::Arc;

use eca_core::EcaAgent;
use relsql::{SqlServer, Value};

fn count(client: &eca_core::EcaClient, table: &str) -> i64 {
    let r = client
        .execute(&format!("select count(*) from {table}"))
        .unwrap();
    match r.server.scalar() {
        Some(Value::Int(n)) => *n,
        other => panic!("unexpected {other:?}"),
    }
}

fn main() {
    let server = SqlServer::new();
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    let noc = agent.client("netdb", "noc");

    noc.execute(
        "create table link_down (link varchar(16))\n\
         go\n\
         create table link_up (link varchar(16))\n\
         go\n\
         create table maintenance (phase varchar(8))\n\
         go\n\
         create table pages (note varchar(80))\n\
         go\n\
         create table reports (note varchar(80))",
    )
    .unwrap();

    // Primitive events.
    for (trigger, table, event) in [
        ("t_down", "link_down", "down"),
        ("t_up", "link_up", "up"),
        ("t_maint", "maintenance", "maintWindow"),
    ] {
        noc.execute(&format!(
            "create trigger {trigger} on {table} for insert event {event} as print '{event}'"
        ))
        .unwrap();
    }

    // NOT: a link goes down and is NOT back up before the next down —
    // i.e. two consecutive failures with no recovery in between: page someone.
    noc.execute(
        "create trigger t_page \
         event doubleFailure = NOT(down, up, down) \
         as insert pages values ('double failure without recovery')",
    )
    .unwrap();

    // A: every down *during* a maintenance window is expected; count them
    // into a report instead of paging.
    noc.execute(
        "create trigger t_expected \
         event downInMaint = A(maintWindow, down, up) \
         CONTINUOUS \
         as insert reports values ('down during maintenance (expected)')",
    )
    .unwrap();

    // PLUS: 30 virtual seconds after any down, write a follow-up check.
    noc.execute(
        "create trigger t_followup \
         event lateCheck = down PLUS [30 sec] \
         as insert reports values ('30s follow-up check ran')",
    )
    .unwrap();

    println!("== scenario 1: down, recovery, down → no page ==");
    noc.execute("insert link_down values ('wan0')").unwrap();
    noc.execute("insert link_up values ('wan0')").unwrap();
    noc.execute("insert link_down values ('wan0')").unwrap();
    println!("  pages so far: {}", count(&noc, "pages"));

    println!("== scenario 2: two downs, no recovery → page ==");
    noc.execute("insert link_down values ('wan1')").unwrap();
    println!("  pages now: {}", count(&noc, "pages"));

    println!("== scenario 3: downs inside a maintenance window ==");
    noc.execute("insert maintenance values ('start')").unwrap();
    noc.execute("insert link_down values ('lan3')").unwrap();
    noc.execute("insert link_down values ('lan4')").unwrap();
    noc.execute("insert link_up values ('lan3')").unwrap(); // closes window
    println!("  expected-down reports: {}", count(&noc, "reports"));

    println!("== scenario 4: virtual time drives the PLUS follow-ups ==");
    let before = count(&noc, "reports");
    let resp = agent.advance_time(31_000_000).unwrap();
    println!(
        "  follow-ups fired after +31s: {} (reports {} → {})",
        resp.actions.len(),
        before,
        count(&noc, "reports")
    );

    let stats = agent.stats();
    println!(
        "\nagent: {} notifications, {} actions, LED state size {}",
        stats.notifications,
        stats.actions_executed,
        agent.led_state_size()
    );

    assert!(count(&noc, "pages") >= 1);
    assert!(count(&noc, "reports") > before);
    println!("\nnetwork_monitor example OK");
}
